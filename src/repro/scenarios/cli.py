"""``python -m repro scenarios`` — the adversarial scenario library.

Three verbs:

- ``list``            — registered scenarios with threat + invariants
- ``run <name>``      — one scenario against the chaos workload
- ``sweep``           — every scenario twice (the chaos matrix),
  writing ``BENCH_chaos_matrix.json`` and optionally guarding against
  the committed baseline
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.experiments.report import format_table

__all__ = ["main"]


def _cmd_list() -> int:
    from .base import get, names

    rows = []
    for name in names():
        spec = get(name)
        rows.append(
            [
                name,
                "yes" if spec.needs_regions else "-",
                spec.summary,
                str(len(spec.invariants)),
            ]
        )
    print(
        format_table(
            ["scenario", "regional", "summary", "invariants"],
            rows,
            title="registered adversarial scenarios (see THREATS.md)",
        )
    )
    return 0


def _cmd_run(args) -> int:
    from .runner import run_named

    result = run_named(
        args.name, seed=args.seed, intensity=args.intensity, fast=args.fast
    )
    print(f"scenario      : {', '.join(result.scenarios)}")
    print(f"seed          : {result.seed}   intensity: {args.intensity}")
    print(f"complete      : {'yes' if result.complete else 'NO'}"
          + (f"  (missing steps {result.missing_steps})"
             if result.missing_steps else ""))
    print(f"wall          : {result.wall_seconds:.3f} s")
    print(f"faults fired  : {result.faults_fired} "
          f"({', '.join(result.fault_kinds) or 'none'})")
    print(f"fetch retries : {result.fetch_retries}   "
          f"restarts: {result.restarts}")
    print(f"invariants    : {', '.join(result.invariants)}")
    if result.violations:
        for v in result.violations:
            print(f"VIOLATION     : {v}")
    else:
        print("violations    : none (all ledgers balance)")
    print(f"schedule hash : {result.schedule_hash}")
    print(f"fingerprint   : {result.fingerprint}")
    return 0 if result.surviving else 1


def _cmd_sweep(args) -> int:
    from repro.perf.bench import compare, default_baseline_dir, write_record

    from .runner import sweep

    record = sweep(
        args.names or None,
        seed=args.seed,
        intensity=args.intensity,
        fast=args.fast,
        repeats=args.repeats,
    )
    rows = [
        [
            r["scenario"],
            "yes" if r["complete"] else "NO",
            r["faults_fired"],
            r["fetch_retries"],
            r["restarts"],
            "yes" if r["deterministic"] else "NO",
            "none" if not r["violations"] else f"{len(r['violations'])}!",
            f"{r['wall_seconds']:.3f}",
        ]
        for r in record["rows"]
    ]
    print(
        format_table(
            ["scenario", "complete", "faults", "retries", "restarts",
             "deterministic", "violations", "wall s"],
            rows,
            title=f"chaos matrix (seed {args.seed}, "
            f"intensity {args.intensity}, x{args.repeats})",
        )
    )
    g = record["guards"]
    print(
        f"[scenarios] registered={g['scenarios_registered']} "
        f"complete={g['complete_fraction']:.2f} "
        f"clean={g['invariant_clean_fraction']:.2f} "
        f"deterministic={g['determinism_fraction']:.2f}"
    )
    path = write_record("chaos_matrix", record, args.out)
    print(f"[scenarios] wrote {path}")
    bad = (
        g["complete_fraction"] < 1.0
        or g["invariant_clean_fraction"] < 1.0
        or g["determinism_fraction"] < 1.0
    )
    if args.baseline is not None:
        base_dir = (
            default_baseline_dir()
            if str(args.baseline) == "default"
            else args.baseline
        )
        base_path = base_dir / "BENCH_chaos_matrix.json"
        if not base_path.exists():
            print(f"[scenarios] no baseline at {base_path}; skipping guard")
            return 1 if bad else 0
        problems = compare(
            record, json.loads(base_path.read_text()), args.tolerance
        )
        for p in problems:
            print(f"[scenarios] REGRESSION {p}")
        if problems:
            return 1
        print("[scenarios] all guards clean")
    return 1 if bad else 0


def main(argv: Optional[list] = None) -> int:
    """Run the scenarios CLI; returns a process exit code."""
    ap = argparse.ArgumentParser(
        prog="repro scenarios",
        description="adversarial scenario library (threat model: THREATS.md)",
    )
    sub = ap.add_subparsers(dest="verb", required=True)
    sub.add_parser("list", help="registered scenarios")

    run_p = sub.add_parser("run", help="run one scenario by name")
    run_p.add_argument("name", help="registered scenario name")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--intensity", type=float, default=1.0)
    run_p.add_argument(
        "--fast", action="store_true",
        help="trimmed workload (128 logical ranks, 2 steps)",
    )

    sweep_p = sub.add_parser("sweep", help="run the full chaos matrix")
    sweep_p.add_argument(
        "names", nargs="*", help="scenario subset (default: all registered)"
    )
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument("--intensity", type=float, default=1.0)
    sweep_p.add_argument("--fast", action="store_true")
    sweep_p.add_argument(
        "--repeats", type=int, default=2,
        help="runs per scenario for the determinism guard (default 2)",
    )
    sweep_p.add_argument(
        "--out", type=Path, default=Path("."),
        help="directory for the BENCH_chaos_matrix.json sidecar",
    )
    sweep_p.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline dir to guard against ('default' for the "
        "committed benchmarks/perf/baselines)",
    )
    sweep_p.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional guard regression (default 0.2)",
    )
    args = ap.parse_args(argv)

    if args.verb == "list":
        return _cmd_list()
    if args.verb == "run":
        return _cmd_run(args)
    return _cmd_sweep(args)
