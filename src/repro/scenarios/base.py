"""Scenario model: declarative dataclasses + the scenario registry.

A :class:`Scenario` is a frozen description of one adversarial
condition — *which* attack (``kind``), *how hard* (``intensity``),
*against whom* (``targets``), *when* (``start``/``duration``) and under
*what randomness* (``seed``).  Scenarios never touch the simulation
themselves: a registered :class:`ScenarioSpec` carries the applier that
translates the description into seeded :class:`~repro.faults.FaultInjector`
primitives at attach time, plus the scenario's row of the written
threat model (THREATS.md): the threat it models and the
:mod:`repro.check` invariants that must survive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional
from zlib import crc32

import numpy as np

__all__ = [
    "INVARIANTS",
    "REGISTRY",
    "Scenario",
    "ScenarioContext",
    "ScenarioSpec",
    "TargetSelector",
    "get",
    "make",
    "names",
    "register",
]

#: the invariant vocabulary scenarios may promise (THREATS.md defines
#: each; the first five are enforced by :class:`repro.check.Checker`,
#: zero-dump-loss by the chaos read-back, seeded-determinism by the
#: scenario test wall running every scenario twice)
INVARIANTS = (
    "chunk-conservation",
    "byte-ledger",
    "credit-ledger",
    "memory-ledger",
    "scheduling-rule",
    "zero-dump-loss",
    "seeded-determinism",
)


@dataclass(frozen=True)
class TargetSelector:
    """Who a scenario hits.

    ``ranks`` pins explicit compute ranks; otherwise a seeded draw of
    ``fraction`` of the population is used.  ``region`` pins a named
    region for regional scenarios (default: seeded choice).
    """

    fraction: float = 0.25
    ranks: Optional[tuple[int, ...]] = None
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("target fraction must be in (0, 1]")

    def pick_ranks(self, rng: np.random.Generator, ncompute: int) -> list[int]:
        """The selected compute ranks (sorted, at least one)."""
        if self.ranks is not None:
            return sorted({r % ncompute for r in self.ranks})
        k = min(ncompute, max(1, round(self.fraction * ncompute)))
        return sorted(int(r) for r in rng.choice(ncompute, size=k, replace=False))


@dataclass(frozen=True)
class Scenario:
    """One declarative adversarial condition (see module docstring)."""

    kind: str
    name: str = ""
    seed: int = 0
    intensity: float = 1.0
    targets: TargetSelector = TargetSelector()
    start: float = 0.5
    duration: float = 6.0
    #: free-form per-kind knobs as a frozen (key, value) tuple
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", self.kind)

    def param(self, key: str, default: float) -> float:
        """The value of knob *key*, or *default*."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    @property
    def window(self) -> tuple[float, float]:
        """The (start, end) time window the scenario acts in."""
        return (self.start, self.start + self.duration)


@dataclass
class ScenarioContext:
    """Everything an applier needs to realise one scenario on a run."""

    env: object
    machine: object
    predata: object
    injector: object
    scenario: Scenario
    rng: np.random.Generator
    nsteps: int
    #: shared plan log across every scenario of one harness:
    #: (scenario name, action, time, detail-repr) in application order
    planned: list = field(default_factory=list)

    def plan(self, action: str, at: float, detail) -> None:
        """Record one planned adversarial action (determinism digest)."""
        self.planned.append((self.scenario.name, action, float(at), repr(detail)))

    # -- population helpers ------------------------------------------------
    @property
    def ncompute(self) -> int:
        return self.predata.client.ncompute

    @property
    def nstaging(self) -> int:
        return self.predata.client.nstaging

    def compute_node_of(self, rank: int) -> int:
        """Machine node hosting compute rank *rank* (1 proc / node)."""
        ids = list(self.machine.compute_node_ids)
        return ids[rank % len(ids)]

    def child(self, scenario: Scenario) -> "ScenarioContext":
        """A sub-context for *scenario* (composed scenarios), sharing
        this context's injector and plan log but re-seeded from the
        child's own (seed, kind) pair."""
        return replace(
            self, scenario=scenario, rng=scenario_rng(scenario), planned=self.planned
        )


def scenario_rng(scenario: Scenario) -> np.random.Generator:
    """The seeded generator for *scenario*: a (seed, kind) stream, so
    two scenarios of different kinds sharing a seed stay decorrelated."""
    return np.random.default_rng([scenario.seed, crc32(scenario.kind.encode())])


@dataclass(frozen=True)
class ScenarioSpec:
    """One registry entry: defaults, applier, and the threat-model row."""

    name: str
    summary: str
    #: the adversary / failure mode this scenario models (THREATS.md)
    threat: str
    #: the :data:`INVARIANTS` entries that must survive this scenario
    invariants: tuple[str, ...]
    apply: Callable[[ScenarioContext], None]
    #: whether the run must be built on a RegionalTopology machine
    needs_regions: bool = False
    #: default Scenario-field overrides for :func:`make`
    defaults: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.invariants:
            raise ValueError(f"scenario {self.name!r} promises no invariants")
        unknown = sorted(set(self.invariants) - set(INVARIANTS))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} names unknown invariants {unknown}"
            )


#: name -> spec, in registration order (the library registers 8+)
REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add *spec* to the registry (duplicate names are an error)."""
    if spec.name in REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """The registered spec for *name* (KeyError with the known names)."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(REGISTRY)


def make(kind: str, **overrides) -> Scenario:
    """A :class:`Scenario` of registered kind *kind*.

    Registry defaults apply first; keyword *overrides* (any Scenario
    field, plus free-form numeric knobs collected into ``params``) win.
    """
    spec = get(kind)
    fields = {"name", "seed", "intensity", "targets", "start", "duration", "params"}
    kwargs: dict = {"kind": spec.name}
    extra: dict[str, float] = {}
    for source in (spec.defaults, overrides):
        for key, value in source.items():
            if key in fields:
                kwargs[key] = value
            else:
                extra[key] = float(value)
    if extra:
        base = dict(kwargs.get("params", ()))
        base.update(extra)
        kwargs["params"] = tuple(sorted(base.items()))
    return Scenario(**kwargs)
