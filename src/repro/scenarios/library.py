"""The shipped scenario library: eight named adversarial conditions.

Each scenario is registered with its threat-model row (the adversary it
models and the :mod:`repro.check` invariants that must survive it —
mirrored verbatim in THREATS.md, which a test keeps in sync) and an
applier that turns the declarative :class:`~repro.scenarios.base.Scenario`
into seeded :class:`~repro.faults.FaultInjector` primitives.

The library deliberately spans every class of adversity the pipeline
claims to absorb:

==================  ====================================================
hotspot-skew        Zipfian routing keys concentrate load on few stagers
straggler-producer  a slice of compute nodes writes at a trickle
bursty-producer     on/off duty-cycle load (coordinated dump storms)
corrupt-chunk       fetches deliver garbage bytes (checksum rejection)
withheld-fetch      RDMA gets silently never answer (timeout-only exit)
regional-partition  a cross-region link partitions (optionally flapping)
slow-region         one region's links are uniformly distant/congested
kitchen-sink        everything at once, plus a crash and an FS stall
==================  ====================================================
"""

from __future__ import annotations

from .base import ScenarioContext, ScenarioSpec, TargetSelector, register

__all__ = ["register_library"]


# -- appliers ---------------------------------------------------------------
def _apply_hotspot_skew(ctx: ScenarioContext) -> None:
    """Replace uniform routing with a seeded Zipf assignment.

    Intensity steers the Zipf exponent: 0 -> barely skewed, 1 -> almost
    every rank hammers the single hottest staging rank.  No faults are
    fired — the scenario stresses flow control and credit accounting,
    so the checker stays in exact (unperturbed) mode.
    """
    s = ctx.scenario
    a = 1.05 + 3.0 * s.intensity
    order = [int(x) for x in ctx.rng.permutation(ctx.nstaging)]
    table = [
        order[(int(ctx.rng.zipf(a)) - 1) % ctx.nstaging] for _ in range(ctx.ncompute)
    ]
    client = ctx.predata.client
    client._route = lambda rank, ncompute, nstaging: table[rank % len(table)]
    ctx.plan("hotspot_route", 0.0, (a, tuple(order), tuple(table)))


def _apply_straggler_producer(ctx: ScenarioContext) -> None:
    """A seeded slice of compute nodes' NICs run at a trickle."""
    s = ctx.scenario
    start, end = s.window
    factor = max(0.02, 1.0 - 0.95 * s.intensity)
    for rank in s.targets.pick_ranks(ctx.rng, ctx.ncompute):
        node = ctx.compute_node_of(rank)
        ctx.injector.degrade_link(
            node, at=start, duration=end - start, factor=factor
        )
        ctx.plan("straggler", start, (rank, node, factor))


def _apply_bursty_producer(ctx: ScenarioContext) -> None:
    """On/off duty-cycle load: targets stall during every 'off' slice."""
    s = ctx.scenario
    start, end = s.window
    period = max(1e-3, s.param("period", 1.0))
    duty = min(0.95, max(0.05, s.param("duty", 0.5)))
    factor = max(0.02, 1.0 - 0.95 * s.intensity)
    ranks = s.targets.pick_ranks(ctx.rng, ctx.ncompute)
    t = start
    while t < end:
        off_start = t + duty * period
        off_end = min(end, t + period)
        if off_end > off_start:
            for rank in ranks:
                node = ctx.compute_node_of(rank)
                ctx.injector.degrade_link(
                    node, at=off_start, duration=off_end - off_start, factor=factor
                )
            ctx.plan("burst_off", off_start, (tuple(ranks), off_end, factor))
        t += period


def _pick_pairs(ctx: ScenarioContext) -> list[tuple[int, int]]:
    """A seeded draw of (compute_rank, step) chunks for fetch faults."""
    s = ctx.scenario
    total = ctx.ncompute * ctx.nsteps
    k = min(total, max(1, round(s.intensity * s.targets.fraction * total)))
    flat = [int(x) for x in ctx.rng.choice(total, size=k, replace=False)]
    return sorted((i // ctx.nsteps, i % ctx.nsteps) for i in flat)


def _apply_corrupt_chunk(ctx: ScenarioContext) -> None:
    """First fetch of each chosen chunk delivers garbage bytes."""
    for rank, step in _pick_pairs(ctx):
        ctx.injector.corrupt_chunk(rank, step, attempts=1)
        ctx.plan("corrupt_chunk", 0.0, (rank, step))


def _apply_withheld_fetch(ctx: ScenarioContext) -> None:
    """First fetch of each chosen chunk silently never answers."""
    for rank, step in _pick_pairs(ctx):
        ctx.injector.withhold_fetch(rank, step, attempts=1)
        ctx.plan("withhold_fetch", 0.0, (rank, step))


def _pick_region_pair(ctx: ScenarioContext) -> tuple[str, str]:
    """A seeded (compute-side, staging-side) region pair to cut.

    The second region is the one hosting a seeded staging node, so the
    partition actually crosses fetch traffic; an explicit
    ``targets.region`` pins the first.
    """
    topo = ctx.machine.network.topology
    staging_ids = list(ctx.machine.staging_node_ids)
    node = staging_ids[int(ctx.rng.integers(0, len(staging_ids)))]
    region_b = topo.region_of(node)
    region_a = ctx.scenario.targets.region
    if region_a is None or region_a == region_b:
        others = [r for r in topo.regions if r != region_b]
        region_a = others[int(ctx.rng.integers(0, len(others)))]
    return region_a, region_b


def _apply_regional_partition(ctx: ScenarioContext) -> None:
    """Cut (or flap) the link between two regions.

    The extra latency is far above any sane fetch timeout, so transfers
    posted inside a partitioned slice only complete via retry after the
    window closes.  ``flaps`` > 1 splits the window into alternating
    partitioned/healthy slices.
    """
    s = ctx.scenario
    start, end = s.window
    region_a, region_b = _pick_region_pair(ctx)
    extra = 3.0 + 27.0 * s.intensity
    flaps = max(1, int(s.param("flaps", 1)))
    slice_len = (end - start) / (2 * flaps - 1)
    for i in range(flaps):
        at = start + 2 * i * slice_len
        ctx.injector.partition_regions(
            region_a, region_b, at=at, duration=slice_len, extra=extra
        )
        ctx.plan("partition", at, (region_a, region_b, slice_len, extra))


def _apply_slow_region(ctx: ScenarioContext) -> None:
    """One region becomes uniformly distant: every cross-region
    transfer in or out pays a small extra latency (below the fetch
    timeout — progress degrades, it does not stop)."""
    s = ctx.scenario
    start, end = s.window
    topo = ctx.machine.network.topology
    region = s.targets.region
    if region is None:
        region = topo.regions[int(ctx.rng.integers(0, len(topo.regions)))]
    extra = 0.02 + 0.18 * s.intensity
    ctx.injector.slow_region(region, at=start, duration=end - start, extra=extra)
    ctx.plan("slow_region", start, (region, end - start, extra))


def _apply_kitchen_sink(ctx: ScenarioContext) -> None:
    """Everything at once: compose every other scenario at reduced
    intensity, then crash a staging node mid-window and stall the file
    system — the union of adversities one deployment could plausibly
    see in a single bad hour."""
    from .base import get, make

    s = ctx.scenario
    start, end = s.window
    child_intensity = max(0.1, 0.5 * s.intensity)
    for kind in (
        "hotspot-skew",
        "straggler-producer",
        "bursty-producer",
        "corrupt-chunk",
        "withheld-fetch",
        "regional-partition",
        "slow-region",
    ):
        child = make(
            kind,
            name=f"sink:{kind}",
            seed=s.seed,
            intensity=child_intensity,
            start=s.start,
            duration=s.duration,
        )
        get(kind).apply(ctx.child(child))
    crash_at = start + 0.45 * (end - start)
    node = ctx.injector.crash_staging_node(at=crash_at)
    ctx.plan("crash_staging", crash_at, node)
    stall_at = start + 0.6 * (end - start)
    ctx.injector.stall_filesystem(at=stall_at, duration=0.3 * (end - start))
    ctx.plan("fs_stall", stall_at, 0.3 * (end - start))


# -- registration -----------------------------------------------------------
_CONSERVATION = (
    "chunk-conservation",
    "byte-ledger",
    "credit-ledger",
    "memory-ledger",
    "scheduling-rule",
)
_ALL = _CONSERVATION + ("zero-dump-loss", "seeded-determinism")


def register_library() -> None:
    """Register the eight shipped scenarios (idempotent)."""
    from .base import REGISTRY

    if "hotspot-skew" in REGISTRY:
        return
    register(
        ScenarioSpec(
            name="hotspot-skew",
            summary="Zipfian routing keys concentrate load on few stagers",
            threat=(
                "A skewed application decomposition (or adversarial key "
                "distribution) routes most dumps at one staging rank, "
                "starving its buffer pool while others idle."
            ),
            invariants=_ALL,
            apply=_apply_hotspot_skew,
        )
    )
    register(
        ScenarioSpec(
            name="straggler-producer",
            summary="a slice of compute nodes writes at a trickle",
            threat=(
                "OS jitter or a failing NIC leaves a few producers orders "
                "of magnitude slower, so their steps trail the rest of "
                "the job and stall collective progress."
            ),
            invariants=_ALL,
            apply=_apply_straggler_producer,
        )
    )
    register(
        ScenarioSpec(
            name="bursty-producer",
            summary="on/off duty-cycle load (coordinated dump storms)",
            threat=(
                "Tightly synchronised applications dump in storms: full "
                "line-rate bursts alternating with silence, stressing "
                "credit admission and buffer recycling at the transitions."
            ),
            invariants=_ALL,
            apply=_apply_bursty_producer,
            defaults={"period": 1.0, "duty": 0.5},
        )
    )
    register(
        ScenarioSpec(
            name="corrupt-chunk",
            summary="fetches deliver garbage bytes (checksum rejection)",
            threat=(
                "Bit flips in transit or a buggy transport deliver a "
                "well-formed RDMA completion carrying garbage; undetected, "
                "the garbage would be indexed and dumped as real data."
            ),
            invariants=_ALL,
            apply=_apply_corrupt_chunk,
            defaults={"targets": TargetSelector(fraction=0.2)},
        )
    )
    register(
        ScenarioSpec(
            name="withheld-fetch",
            summary="RDMA gets silently never answer (timeout-only exit)",
            threat=(
                "A wedged peer or lost completion queue entry means the "
                "get never completes and never errors — only a local "
                "deadline distinguishes it from a slow transfer."
            ),
            invariants=_ALL,
            apply=_apply_withheld_fetch,
        )
    )
    register(
        ScenarioSpec(
            name="regional-partition",
            summary="a cross-region link partitions (optionally flapping)",
            threat=(
                "An inter-region trunk fails (or flaps): traffic between "
                "two regions stalls for whole windows while intra-region "
                "traffic is healthy, so naive timeouts misfire."
            ),
            invariants=_ALL,
            apply=_apply_regional_partition,
            needs_regions=True,
            defaults={"flaps": 1},
        )
    )
    register(
        ScenarioSpec(
            name="slow-region",
            summary="one region's links are uniformly distant/congested",
            threat=(
                "A congested or physically distant region adds latency to "
                "every cross-region transfer — progress must degrade "
                "smoothly instead of collapsing into timeout storms."
            ),
            invariants=_ALL,
            apply=_apply_slow_region,
            needs_regions=True,
        )
    )
    register(
        ScenarioSpec(
            name="kitchen-sink",
            summary="everything at once, plus a crash and an FS stall",
            threat=(
                "The compound worst case: every adversary above strikes "
                "in one window while a staging node dies and the file "
                "system stalls — nothing about the invariants may bend."
            ),
            invariants=_ALL,
            apply=_apply_kitchen_sink,
            needs_regions=True,
        )
    )
