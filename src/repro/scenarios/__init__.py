"""Adversarial scenario library: seeded chaos with a written threat model.

This package turns ad-hoc fault injection into a *registry* of named,
declarative adversarial scenarios — Zipfian hot-spots, stragglers,
bursty producers, corrupted and silently withheld fetches, regional
partitions and slowdowns, and the combined kitchen sink — each mapped
in THREATS.md to the :mod:`repro.check` invariants that must survive
it.  Scenarios are frozen dataclasses (kind, seed, intensity, targets,
window), runnable standalone, composed, or attached to any existing
pipeline run via a :class:`ScenarioHarness`; the whole schedule is
seeded, so every scenario run is reproducible byte-for-byte.

Layers:

- :mod:`repro.scenarios.base`    — Scenario/TargetSelector/ScenarioSpec
  dataclasses, the INVARIANTS vocabulary, and the registry
- :mod:`repro.scenarios.library` — the eight shipped scenarios
- :mod:`repro.scenarios.harness` — attaches a scenario set to a run and
  digests the planned + fired schedule (the determinism proof)
- :mod:`repro.scenarios.runner`  — chaos-workload glue, the sweep
  (``BENCH_chaos_matrix.json``), and :class:`ScenarioRunResult`
- :mod:`repro.scenarios.cli`     — ``python -m repro scenarios``

Importing this package registers the shipped library.
"""

from .base import (
    INVARIANTS,
    REGISTRY,
    Scenario,
    ScenarioContext,
    ScenarioSpec,
    TargetSelector,
    get,
    make,
    names,
    register,
)
from .harness import ScenarioHarness
from .library import register_library
from .runner import (
    DEFAULT_REGIONS,
    ScenarioRunResult,
    run_named,
    run_scenarios,
    sweep,
)

register_library()

__all__ = [
    "DEFAULT_REGIONS",
    "INVARIANTS",
    "REGISTRY",
    "Scenario",
    "ScenarioContext",
    "ScenarioHarness",
    "ScenarioRunResult",
    "ScenarioSpec",
    "TargetSelector",
    "get",
    "make",
    "names",
    "register",
    "register_library",
    "run_named",
    "run_scenarios",
    "sweep",
]
