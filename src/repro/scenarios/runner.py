"""Scenario runner: one chaos-workload run per scenario set.

Glues a :class:`~repro.scenarios.harness.ScenarioHarness` onto the
chaos workload (:func:`repro.experiments.chaos.run_once`) with the
invariant checker bound, and distils the outcome into a
:class:`ScenarioRunResult`: completeness, fired faults, surviving
invariants, and the two determinism digests (run fingerprint +
schedule hash) combined into one scenario fingerprint.

The runner builds its *own* resilient configuration and disables the
workload's built-in injector (``make_injector=False``) — all adversity
comes from the harness, so the scenario set fully owns the fault
schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .base import INVARIANTS, Scenario, make
from .harness import ScenarioHarness

__all__ = [
    "DEFAULT_REGIONS",
    "ScenarioRunResult",
    "run_named",
    "run_scenarios",
    "sweep",
]

#: region names used when a scenario needs a RegionalTopology
DEFAULT_REGIONS = ("east", "central", "west")


@dataclass
class ScenarioRunResult:
    """Everything the scenario test wall asserts about one run."""

    scenarios: tuple[str, ...]
    seed: int
    complete: bool
    missing_steps: list[int]
    wall_seconds: float
    faults_fired: int
    fault_kinds: tuple[str, ...]
    fetch_retries: int
    restarts: int
    #: invariant-checker violations (empty = all ledgers balance)
    violations: list[str]
    #: the invariants the scenario set promised to uphold
    invariants: tuple[str, ...]
    #: digest of planned + fired adversarial schedule
    schedule_hash: str
    #: combined digest: run fingerprint | schedule hash
    fingerprint: str
    run: object = field(repr=False, default=None)
    harness: ScenarioHarness = field(repr=False, default=None)
    checker: object = field(repr=False, default=None)

    @property
    def surviving(self) -> bool:
        """Whether every promised, checkable invariant held."""
        return self.complete and not self.violations


def _regional_factory(n: int):
    """RegionalTopology factory over :data:`DEFAULT_REGIONS`.

    All latency classes default to local (0.0 s extra) so the regional
    machine is byte-identical to the plain torus until a scenario opens
    an extra-latency window.
    """
    from repro.machine import RegionalTopology

    return RegionalTopology(n, DEFAULT_REGIONS)


def run_scenarios(
    scenarios: Sequence[Scenario],
    *,
    seed: int = 0,
    fast: bool = False,
    check: bool = True,
    **workload,
) -> ScenarioRunResult:
    """Run the chaos workload under *scenarios* and distil the result.

    ``fast`` shrinks the workload (fewer ranks and steps) for test and
    smoke use; extra ``workload`` kwargs are forwarded verbatim to
    :func:`repro.experiments.chaos.run_once`.  ``check=False`` skips
    binding the invariant checker (pure perf runs).
    """
    from repro.experiments.chaos import fingerprint as run_fingerprint
    from repro.experiments.chaos import run_once
    from repro.faults import ResilienceConfig

    harness = ScenarioHarness(list(scenarios), seed=seed)
    checker = None
    if check:
        from repro.check import Checker

        checker = Checker()
    config = dict(
        inject=False,
        make_injector=False,
        seed=seed,
        resilience=ResilienceConfig(
            fetch_timeout=1.0,
            fetch_retry_backoff=0.25,
            fetch_max_attempts=6,
        ),
        scenario_harness=harness,
        check=checker,
    )
    if harness.needs_regions:
        config["topology"] = _regional_factory
    if fast:
        config.update(logical_ranks=128, rep_ranks=4, nsteps=2)
    config.update(workload)
    run = run_once(**config)

    schedule_hash = harness.schedule_hash()
    combined = hashlib.sha256(
        (run_fingerprint(run) + "|" + schedule_hash).encode()
    ).hexdigest()
    violations = (
        checker.violations(run.predata) if checker is not None else []
    )
    fired = harness.fired
    return ScenarioRunResult(
        scenarios=tuple(s.name for s in scenarios),
        seed=seed,
        complete=run.complete,
        missing_steps=list(run.missing_steps),
        wall_seconds=run.wall_seconds,
        faults_fired=len(fired),
        fault_kinds=tuple(sorted({kind for kind, _t, _d in fired})),
        fetch_retries=run.fetch_retries,
        restarts=run.restarts,
        violations=violations,
        invariants=harness.invariants(),
        schedule_hash=schedule_hash,
        fingerprint=combined,
        run=run,
        harness=harness,
        checker=checker,
    )


def run_named(
    name: str,
    *,
    seed: int = 0,
    intensity: float = 1.0,
    fast: bool = False,
    **workload,
) -> ScenarioRunResult:
    """Run one registered scenario by name (the CLI entry point)."""
    scenario = make(name, seed=seed, intensity=intensity)
    return run_scenarios([scenario], seed=seed, fast=fast, **workload)


def sweep(
    names: Optional[Sequence[str]] = None,
    *,
    seed: int = 0,
    intensity: float = 1.0,
    fast: bool = False,
    repeats: int = 2,
) -> dict:
    """The chaos matrix: every scenario run ``repeats`` times.

    Returns a benchmark record (see :mod:`repro.perf.bench`) whose
    guards are host-independent *fractions*: scenarios registered,
    completeness, invariant cleanliness, and within-process determinism
    (every repeat of a scenario must reproduce the same fingerprint
    and schedule hash).  Raw fingerprints ride along in the rows for
    human diffing, but are deliberately not guarded — they may shift
    across numpy versions.
    """
    from .base import names as registered

    chosen = list(names) if names else registered()
    rows = []
    complete = clean = deterministic = 0
    for name in chosen:
        results = [
            run_named(name, seed=seed, intensity=intensity, fast=fast)
            for _ in range(max(1, repeats))
        ]
        first = results[0]
        same = all(
            r.fingerprint == first.fingerprint
            and r.schedule_hash == first.schedule_hash
            for r in results[1:]
        )
        complete += bool(first.complete)
        clean += not first.violations
        deterministic += bool(same)
        rows.append(
            {
                "scenario": name,
                "complete": first.complete,
                "faults_fired": first.faults_fired,
                "fault_kinds": list(first.fault_kinds),
                "fetch_retries": first.fetch_retries,
                "restarts": first.restarts,
                "violations": list(first.violations),
                "invariants": list(first.invariants),
                "deterministic": same,
                "wall_seconds": round(first.wall_seconds, 6),
                "fingerprint": first.fingerprint,
                "schedule_hash": first.schedule_hash,
            }
        )
    n = len(chosen)
    return {
        "config": {
            "seed": seed,
            "intensity": intensity,
            "fast": fast,
            "repeats": repeats,
            "scenarios": chosen,
            "invariant_vocabulary": list(INVARIANTS),
        },
        "rows": rows,
        "guards": {
            "scenarios_registered": len(registered()),
            "complete_fraction": complete / n if n else 0.0,
            "invariant_clean_fraction": clean / n if n else 0.0,
            "determinism_fraction": deterministic / n if n else 0.0,
        },
    }
