"""ScenarioHarness: attach scenarios to any run of the pipeline.

The harness owns one *enabled* :class:`~repro.faults.FaultInjector`
seeded from the scenario set, applies every active scenario through it
at attach time, and afterwards digests both the *planned* schedule and
the *fired* fault log into :meth:`schedule_hash` — the byte-identity
half of the determinism proof (same seed ⇒ same digest).

Zero-intensity scenarios are skipped entirely: a harness whose every
scenario has ``intensity == 0`` attaches nothing — no injector arm, no
routing override, no latency window — and is therefore bit-identical
to running with no harness at all (the flag-matrix test asserts this).
"""

from __future__ import annotations

import hashlib
from typing import Sequence
from zlib import crc32

from . import library
from .base import REGISTRY, Scenario, ScenarioContext, get, scenario_rng

__all__ = ["ScenarioHarness"]

library.register_library()


class ScenarioHarness:
    """Applies a set of :class:`Scenario` s to one simulation run.

    Parameters
    ----------
    scenarios: the scenario set, applied in the given order.
    seed: harness-level seed folded into the injector (per-scenario
        randomness comes from each scenario's own seed).
    """

    def __init__(self, scenarios: Sequence[Scenario], *, seed: int = 0):
        self.scenarios = list(scenarios)
        self.seed = seed
        for s in self.scenarios:
            if s.kind not in REGISTRY:
                raise KeyError(f"unknown scenario kind {s.kind!r}")
        #: planned actions recorded by appliers, in application order
        self.planned: list[tuple[str, str, float, str]] = []
        #: the harness's own injector (None until :meth:`attach`)
        self.injector = None
        self.attached = False

    # -- set introspection --------------------------------------------------
    @property
    def active(self) -> list[Scenario]:
        """The scenarios that actually do something (intensity > 0)."""
        return [s for s in self.scenarios if s.intensity > 0.0]

    @property
    def needs_regions(self) -> bool:
        """Whether any active scenario requires a RegionalTopology."""
        return any(get(s.kind).needs_regions for s in self.active)

    def invariants(self) -> tuple[str, ...]:
        """Union of invariants promised across active scenarios, in
        canonical :data:`~repro.scenarios.base.INVARIANTS` order."""
        from .base import INVARIANTS

        promised = set()
        for s in self.active:
            promised.update(get(s.kind).invariants)
        return tuple(i for i in INVARIANTS if i in promised)

    # -- attachment ---------------------------------------------------------
    def attach(self, env, machine, predata, *, nsteps: int) -> None:
        """Realise every active scenario against one run.

        Builds the harness injector, arms the staging client's fetch
        hook, and runs each active scenario's applier.  A harness with
        no active scenarios attaches nothing at all.
        """
        if self.attached:
            raise RuntimeError("harness already attached to a run")
        self.attached = True
        if not self.active:
            return
        from repro.faults import FaultInjector

        fold = crc32("|".join(s.name for s in self.active).encode())
        self.injector = FaultInjector(
            env, machine, seed=(self.seed << 16) ^ fold, enabled=True
        )
        self.injector.arm(predata.client)
        for scenario in self.active:
            ctx = ScenarioContext(
                env=env,
                machine=machine,
                predata=predata,
                injector=self.injector,
                scenario=scenario,
                rng=scenario_rng(scenario),
                nsteps=nsteps,
                planned=self.planned,
            )
            get(scenario.kind).apply(ctx)

    # -- determinism digest -------------------------------------------------
    @property
    def fired(self) -> list[tuple[str, float, object]]:
        """Chronological (kind, time, detail) log of faults that fired."""
        return [] if self.injector is None else list(self.injector.injected)

    def schedule_hash(self) -> str:
        """sha256 over the planned schedule *and* the fired fault log.

        Covers both halves of determinism: what the seeded appliers
        decided to do, and what the engine's event ordering actually
        made fire (including times).  Identical seeds must reproduce
        this digest byte-for-byte.
        """
        h = hashlib.sha256()
        for name, action, at, detail in self.planned:
            h.update(f"plan|{name}|{action}|{at:.9f}|{detail}\n".encode())
        for kind, at, detail in self.fired:
            h.update(f"fire|{kind}|{at:.9f}|{detail!r}\n".encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        names = ",".join(s.name for s in self.scenarios) or "<none>"
        return (
            f"ScenarioHarness([{names}], seed={self.seed}, "
            f"attached={self.attached}, fired={len(self.fired)})"
        )
