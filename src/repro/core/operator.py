"""The PreDatA pluggable operator API.

An operator participates in the two-pass processing model of §IV.B–C:

First pass (compute node, Stage 1a — optional, deterministic delay):
    :meth:`PreDatAOperator.partial_calculate` runs on the local output
    data before packing; its small result rides on the data-fetch
    request (Stage 1c).

Request-time aggregation (staging node, Stage 2):
    :meth:`PreDatAOperator.aggregate` combines the partial results of
    all compute processes — global sizes, prefix sums, min/max, sample
    splitters — *before* any bulk data moves.

Second pass (staging nodes, Stage 4 / Fig. 5 — streaming):
    ``initialize -> map (per chunk) -> combine -> partition -> reduce
    -> finalize``.

Cost accounting: the functional work really executes on numpy data, but
simulated *time* is charged through the ``*_flops`` hooks so results
are host-independent.  Defaults charge a few flops per byte touched;
operators with real computational kernels (histograms, sorting)
override them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Hashable, Iterable, Optional

from repro.adios.group import OutputStep
from repro.mpi.datasize import nbytes_of

__all__ = ["Emit", "OperatorContext", "PreDatAOperator", "StepReport"]


#: A tagged intermediate result produced by Map/Combine.
@dataclass
class Emit:
    """One intermediate item: routed by ``tag``, carrying ``value``."""

    tag: Hashable
    value: Any

    @property
    def nbytes(self) -> float:
        return nbytes_of(self.value) + 16


@dataclass
class StepReport:
    """Per-I/O-step timing breakdown of the staging pipeline.

    All times in simulated seconds; ``latency`` is from the moment the
    application initiated the dump to finalize completion — the paper's
    'latency to operation completion' (e.g. ~30 s sorting latency at
    §V.B.1).
    """

    step: int
    t_dump_start: float = 0.0
    gather_requests: float = 0.0
    aggregate: float = 0.0
    fetch: float = 0.0
    map: float = 0.0
    shuffle: float = 0.0
    reduce: float = 0.0
    finalize: float = 0.0
    latency: float = 0.0
    bytes_fetched: float = 0.0
    bytes_shuffled: float = 0.0
    peak_buffer_bytes: float = 0.0

    @property
    def operation_time(self) -> float:
        """Staging-side wall time across all phases."""
        return (
            self.gather_requests
            + self.aggregate
            + self.fetch
            + self.map
            + self.shuffle
            + self.reduce
            + self.finalize
        )


@dataclass
class OperatorContext:
    """Runtime state handed to operator callbacks.

    Attributes
    ----------
    rank / nworkers:
        This staging process's rank in the staging world and the number
        of staging processes (or the compute rank/world size when the
        operator is placed in compute nodes).
    aggregated:
        Output of :meth:`PreDatAOperator.aggregate` for this step.
    storage:
        Scratch dict private to (operator, rank); survives across
        phases within one step.
    step: current I/O step number.
    threads: worker threads available to this process (§V.B: staging
        runs 4 worker threads per MPI process).
    placement: ``"staging"`` or ``"compute"``.
    obs:
        The run's :class:`repro.obs.Observability` sink, or ``None``
        when observability is disabled (the default).  Operators with
        interesting internal state may record custom metrics::

            if ctx.obs is not None:
                ctx.obs.metrics.inc("my_metric", n, op=self.name)
    """

    rank: int
    nworkers: int
    step: int
    aggregated: Any = None
    storage: dict = field(default_factory=dict)
    threads: int = 4
    placement: str = "staging"
    #: logical-to-functional volume ratio of the chunks seen this step;
    #: set by the runtime once the first chunk is unpacked.
    volume_scale: float = 1.0
    #: observability sink (None = disabled); see class docstring.
    obs: Any = None


class PreDatAOperator:
    """Base class for pluggable PreDatA data operations.

    Subclasses override any subset of the hooks; each default is a
    sensible no-op so trivial operators stay trivial.
    """

    #: Operator name used in reports and result dictionaries.
    name: str = "operator"

    # -- pass 1: compute node -------------------------------------------
    def partial_calculate(self, step: OutputStep) -> Any:
        """Local first-pass over one process's output; returns a small
        partial result attached to the data-fetch request (or None)."""
        return None

    def partial_flops(self, step: OutputStep) -> float:
        """Compute cost of :meth:`partial_calculate` in flop."""
        return 0.0

    # -- stage 2: request-time aggregation -------------------------------
    def aggregate(self, partials: list[Any]) -> Any:
        """Combine partial results from all compute processes."""
        return None

    # -- stage 4: streaming phases ----------------------------------------
    def initialize(self, ctx: OperatorContext) -> None:
        """Once per step, before the first chunk, with ctx.aggregated set."""

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        """Process one packed partial data chunk; yield tagged items."""
        return ()

    def map_flops(self, step: OutputStep) -> float:
        """Compute cost of :meth:`map` per chunk, in flop.

        Default: two flops per *logical* byte (one read-touch, one op).
        """
        return 2.0 * step.nbytes_logical

    def combine(
        self, ctx: OperatorContext, items: list[Emit]
    ) -> list[Emit]:
        """Optional local pre-reduction before the shuffle."""
        return items

    def combine_flops(self, ctx: OperatorContext, items: list[Emit]) -> float:
        """Cost of :meth:`combine` in flop at *logical* scale — use
        ``ctx.volume_scale`` for data-proportional work."""
        return 0.0

    def partition(self, ctx: OperatorContext, tag: Hashable) -> int:
        """Staging rank that reduces *tag* (default: stable hash)."""
        return hash(tag) % ctx.nworkers

    def reduce(
        self, ctx: OperatorContext, tag: Hashable, values: list[Any]
    ) -> Optional[Any]:
        """Combine all values routed to *tag*; returns the final value."""
        return values

    def reduce_flops(
        self, ctx: OperatorContext, tag: Hashable, values: list[Any]
    ) -> float:
        """Cost of :meth:`reduce` in flop at *logical* scale.

        Data-proportional reductions multiply by ``ctx.volume_scale``
        (the default does); reductions over fixed-size summaries
        (histogram count vectors) return their true, unscaled cost.
        """
        return 2.0 * sum(nbytes_of(v) for v in values) * ctx.volume_scale

    def reduce_membytes(
        self, ctx: OperatorContext, tag: Hashable, values: list[Any]
    ) -> float:
        """Memory traffic of :meth:`reduce` in bytes at logical scale
        (for memory-bound reductions such as large sorts/merges, where
        flops undercount the true cost).  Charged against the node's
        memory bandwidth.  Default: none."""
        return 0.0

    def finalize(
        self, ctx: OperatorContext, reduced: dict[Hashable, Any]
    ) -> Optional[Generator]:
        """End of step: persist results / hand off downstream.

        May be a plain method (returns None or a result object) or a
        generator (``yield from``-able) that performs simulated I/O —
        the staging runtime detects and drives generators.  Whatever it
        returns is stored as the operator's result for the step.
        """
        return None

    # -- scaling hint ------------------------------------------------------
    def logical_fraction_shuffled(self) -> float:
        """Fraction of input volume this operator sends through the
        shuffle at full scale (used to extrapolate wire volume when the
        functional payload is scaled down).  1.0 for reorganisation-type
        operators (sort, merge); ~0 for reduction-type (histograms)."""
        return 1.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
