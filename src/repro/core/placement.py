"""Alternative operator placements: In-Compute-Node and Offline.

The paper's evaluation (§V) contrasts three placements of the same
operators:

- **Staging** — :class:`~repro.core.staging.StagingService` (async,
  hidden from the simulation);
- **In-Compute-Node** — this module's :class:`InComputeNodeRunner`:
  the identical operator pipeline executes *synchronously inside the
  application world* at write time, so every phase is visible to the
  simulation (sorting's all-to-all shuffle across 16,384 ranks is the
  pathological case, Fig. 7(a));
- **Offline** — :class:`OfflineCostModel`: data is first written raw,
  then read back, processed, and (for reorganisation-type operators)
  rewritten — the §V.B.3 tradeoff of 3x vs 1x trips through the disk
  controllers.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator
from repro.machine.filesystem import ParallelFileSystem
from repro.machine.machine import Machine
from repro.mpi.communicator import Communicator

__all__ = ["InComputeTiming", "InComputeNodeRunner", "OfflineCostModel", "OfflineEstimate"]


@dataclass
class InComputeTiming:
    """Per-rank wall-time breakdown of one in-compute-node operation."""

    compute: float = 0.0  # partial_calculate + map + combine + reduce
    communicate: float = 0.0  # aggregation collectives + shuffle
    io: float = 0.0  # finalize-side writes

    @property
    def total(self) -> float:
        return self.compute + self.communicate + self.io


class InComputeNodeRunner:
    """Runs PreDatA operators synchronously inside the compute world.

    All phases execute on the compute ranks themselves; wall time is
    charged against the simulation, exactly like the paper's
    In-Compute-Node configuration.
    """

    def __init__(self, machine: Machine, operators: list[PreDatAOperator]):
        self.machine = machine
        self.operators = list(operators)
        #: op name -> step -> rank -> finalize result
        self.results: dict[str, dict[int, dict[int, Any]]] = {
            op.name: {} for op in self.operators
        }
        #: op name -> step -> rank -> InComputeTiming
        self.timings: dict[str, dict[int, dict[int, InComputeTiming]]] = {
            op.name: {} for op in self.operators
        }

    def run_step(self, comm: Communicator, step: OutputStep):
        """Process body: execute every operator on *step* synchronously.

        Returns total visible seconds across all operators.
        """
        env = comm.env
        node = comm.node
        scale = step.volume_scale
        start = env.now
        for op in self.operators:
            timing = InComputeTiming()

            # pass 1 on own data
            t0 = env.now
            pflops = op.partial_flops(step)
            if pflops > 0 and node is not None:
                yield from node.compute(pflops)
            partial = op.partial_calculate(step)
            timing.compute += env.now - t0

            # aggregation across the compute world
            t0 = env.now
            allp = yield from comm.allgather(partial)
            aggregated = (
                op.aggregate([p for p in allp if p is not None])
                if any(p is not None for p in allp)
                else None
            )
            timing.communicate += env.now - t0

            ctx = OperatorContext(
                rank=comm.rank,
                nworkers=comm.size,
                step=step.step,
                aggregated=aggregated,
                threads=1,
                placement="compute",
                volume_scale=scale,
            )
            op.initialize(ctx)

            # map on own chunk
            t0 = env.now
            mflops = op.map_flops(step)
            if mflops > 0 and node is not None:
                yield from node.compute(mflops)
            items = list(op.map(ctx, step))
            items = op.combine(ctx, items)
            cflops = op.combine_flops(ctx, items)
            if cflops > 0 and node is not None:
                yield from node.compute(cflops)
            timing.compute += env.now - t0

            # shuffle across compute ranks
            t0 = env.now
            outbound: list[list[Emit]] = [[] for _ in range(comm.size)]
            for e in items:
                outbound[op.partition(ctx, e.tag) % comm.size].append(e)
            eff_scale = 1.0 + (scale - 1.0) * op.logical_fraction_shuffled()
            inbound_rows = yield from comm.alltoall(
                outbound, wire_scale=eff_scale
            )
            timing.communicate += env.now - t0

            # reduce
            t0 = env.now
            groups: dict[Hashable, list[Any]] = {}
            for row in inbound_rows:
                for e in row:
                    groups.setdefault(e.tag, []).append(e.value)
            reduced: dict[Hashable, Any] = {}
            for tag, values in groups.items():
                rflops = op.reduce_flops(ctx, tag, values)
                if rflops > 0 and node is not None:
                    yield from node.compute(rflops)
                rmem = op.reduce_membytes(ctx, tag, values)
                if rmem > 0 and node is not None:
                    yield env.timeout(node.memory_scan_time(rmem))
                out = op.reduce(ctx, tag, values)
                if out is not None:
                    reduced[tag] = out
            timing.compute += env.now - t0

            # finalize (file-system writes are visible here)
            t0 = env.now
            res = op.finalize(ctx, reduced)
            if inspect.isgenerator(res):
                res = yield from res
            timing.io += env.now - t0

            self.results[op.name].setdefault(step.step, {})[comm.rank] = res
            self.timings[op.name].setdefault(step.step, {})[comm.rank] = timing
        return env.now - start

    def step_timing(self, op_name: str, step: int) -> InComputeTiming:
        """Max-across-ranks view of one operator's step timing."""
        per_rank = self.timings[op_name][step]
        merged = InComputeTiming()
        merged.compute = max(t.compute for t in per_rank.values())
        merged.communicate = max(t.communicate for t in per_rank.values())
        merged.io = max(t.io for t in per_rank.values())
        return merged


@dataclass(frozen=True)
class OfflineEstimate:
    """Cost estimate for the offline placement of one operation."""

    read_seconds: float
    process_seconds: float
    write_seconds: float
    extra_storage_bytes: float
    disk_controller_trips: int

    @property
    def latency(self) -> float:
        return self.read_seconds + self.process_seconds + self.write_seconds


class OfflineCostModel:
    """Analytic model of the §V.B.3 offline alternative.

    The raw dump is already on disk; the offline job reads it back,
    processes it on ``n_analysis_cores``, and — for operations that do
    not reduce the data (sorting, layout reorganisation) — writes an
    equivalent volume back, tripling disk-controller traffic.

    ``available_fraction`` is the share of the shared file system an
    offline analysis job actually sustains: it competes with the
    simulation's own dumps and every other job on the machine (the
    reason the paper estimates "hundreds of seconds" for a 1 TB step).
    """

    def __init__(
        self,
        machine: Machine,
        n_analysis_cores: int = 512,
        available_fraction: float = 0.25,
    ):
        if n_analysis_cores < 1:
            raise ValueError("need at least one analysis core")
        if not 0 < available_fraction <= 1:
            raise ValueError("available_fraction must be in (0, 1]")
        self.machine = machine
        self.n_analysis_cores = n_analysis_cores
        self.available_fraction = available_fraction

    def estimate(
        self,
        data_bytes: float,
        *,
        reduces_data: bool,
        flops_per_byte: float = 2.0,
        output_bytes: float = 0.0,
    ) -> OfflineEstimate:
        """Cost of processing *data_bytes* offline (read back, process, rewrite when the operation does not reduce the data)."""
        fs = self.machine.spec.filesystem
        nclients = max(
            1, self.n_analysis_cores // self.machine.spec.node.cores
        )
        stream = (
            min(fs.aggregate_bandwidth, fs.client_bandwidth * nclients)
            * self.available_fraction
        )
        read_s = data_bytes / stream
        flops = data_bytes * flops_per_byte
        process_s = flops / (
            self.machine.spec.node.core_flops * self.n_analysis_cores
        )
        if reduces_data:
            write_bytes = output_bytes
            extra_storage = output_bytes
            trips = 2  # raw write already happened + read back
        else:
            write_bytes = data_bytes if output_bytes == 0.0 else output_bytes
            extra_storage = write_bytes
            trips = 3  # write raw, read back, write reorganised
        write_s = write_bytes / stream if write_bytes else 0.0
        return OfflineEstimate(
            read_seconds=read_s,
            process_seconds=process_s,
            write_seconds=write_s,
            extra_storage_bytes=extra_storage,
            disk_controller_trips=trips,
        )
