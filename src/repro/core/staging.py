"""The Staging Area service (§IV.C, Fig. 5).

Each staging process runs :meth:`StagingService._service_main` — the
per-step pipeline:

1. **gather requests** from the compute processes it serves;
2. **aggregate** (stage 2): partial results attached to the requests
   are allgathered across the staging world and fed to each operator's
   ``aggregate()`` — producing global sizes, min/max, sort splitters —
   before any bulk data moves;
3. **Initialize** each operator with the aggregated results;
4. **fetch + Map**: packed partial data chunks are pulled from compute
   nodes with scheduled RDMA gets and processed *one by one in a
   streaming manner* — a prefetch pipeline overlaps the next fetch with
   the current Map, and chunk buffers are freed immediately after Map
   so staging memory stays bounded;
5. **Shuffle**: ``Combine()`` locally, then ``Partition()`` routes
   intermediate results to their reducer rank via the staging world's
   MPI ``alltoallv`` (the paper's deliberate choice of MPI over a
   MapReduce master, §IV.C);
6. **Reduce** groups by tag and folds;
7. **Finalize** persists results (may perform simulated file-system
   I/O when the operator's finalize is a generator).

Timing of every phase is recorded in a :class:`StepReport` per staging
rank; the service exposes per-step maxima, which is what the paper's
Fig. 7 plots as operation time in the Staging configuration.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Generator, Hashable, Optional

from repro.adios.group import GroupDef, OutputStep
from repro.core.client import FetchRequest, StagingClient
from repro.core.operator import Emit, OperatorContext, PreDatAOperator, StepReport
from repro.faults.config import ResilienceConfig
from repro.faults.errors import FetchDropped, FetchTimeout, RecoveryRestart
from repro.machine.machine import Machine
from repro.machine.node import NodeFailure
from repro.mpi.communicator import Communicator
from repro.mpi.world import World
from repro.sim.engine import Engine, Interrupt
from repro.sim.resources import Resource, Store

__all__ = ["StagingConfig", "StagingService", "DrainTimeout"]


class DrainTimeout(RuntimeError):
    """``drain()`` gave up waiting; names the steps still outstanding."""


@dataclass(frozen=True)
class StagingConfig:
    """Staging-area runtime knobs (§V.B: 2 procs/node, 4 threads).

    ``chunk_order`` customises the stream order (§IV.C: "Users can
    also ... place the data chunks present within the data stream into
    some desired order to ease implementing such data analysis
    services"): a callable receiving the step's fetch requests (each
    carrying the attached partial results) and returning them in the
    order the pipeline should fetch and Map them.  Default: by
    compute rank.
    """

    threads_per_process: int = 4
    fetch_pipeline_depth: int = 2
    nsteps: int = 1
    chunk_order: Optional[Any] = None
    #: failure handling knobs; None disables the recovery protocol and
    #: preserves the exact pre-resilience pipeline behaviour.
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        if self.threads_per_process < 1:
            raise ValueError("need >= 1 worker thread")
        if self.fetch_pipeline_depth < 1:
            raise ValueError("pipeline depth must be >= 1")
        if self.nsteps < 1:
            raise ValueError("nsteps must be >= 1")
        if self.chunk_order is not None and not callable(self.chunk_order):
            raise ValueError("chunk_order must be callable")


class StagingService:
    """The staging-area MPI program."""

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        world: World,
        client: StagingClient,
        group: GroupDef,
        operators: list[PreDatAOperator],
        config: Optional[StagingConfig] = None,
    ):
        self.env = env
        self.machine = machine
        self.world = world
        self.client = client
        self.group = group
        self.operators = list(operators)
        names = [op.name for op in self.operators]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate operator names: {names}")
        self.config = config or StagingConfig()
        #: per step -> per staging rank -> StepReport
        self.rank_reports: dict[int, dict[int, StepReport]] = {}
        #: operator name -> step -> rank -> finalize() return value
        self.results: dict[str, dict[int, dict[int, Any]]] = {
            op.name: {} for op in self.operators
        }
        self._procs: list = []
        #: callbacks fired as each staging rank finishes a step
        self._step_listeners: list = []
        #: callbacks fired as each staging rank *commits* a step
        self._commit_listeners: list = []
        # -- resilience state ------------------------------------------
        #: next uncommitted step per staging rank (recovery restart point)
        self._rank_step: dict[int, int] = {}
        #: per-rank in-flight step scratch needing cleanup on abort
        self._inflight: dict[int, dict] = {}
        #: sim time each step's commit barrier completed
        self.commit_times: dict[int, float] = {}
        #: count of step re-executions forced by recovery
        self.restarts = 0
        #: count of fetch attempts beyond the first (timeouts/drops)
        self.fetch_retries = 0

    def add_step_listener(self, callback) -> None:
        """Register ``callback(step, rank)`` fired per rank completion
        (the hook online monitors subscribe to)."""
        self._step_listeners.append(callback)

    def add_commit_listener(self, callback) -> None:
        """Register ``callback(step, rank)`` fired as each rank commits
        a step — after the commit barrier under resilience, at step
        completion otherwise.  Callbacks run synchronously and must not
        touch the engine (the step-stream bridge relies on this to keep
        schedule traces byte-identical)."""
        self._commit_listeners.append(callback)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the service loop on every staging rank."""
        self._procs = self.world.spawn(self._service_main)

    def drain(self, timeout: Optional[float] = None):
        """Process body: wait until every staging rank finished all steps.

        ``timeout`` (simulated seconds) bounds the wait; on expiry a
        :class:`DrainTimeout` is raised describing exactly which steps
        and staging ranks never completed, instead of blocking the
        caller forever on a wedged pipeline.
        """
        if not self._procs:
            raise RuntimeError("drain() before start()")
        done = self.env.all_of(self._procs)
        if timeout is None:
            yield done
            return
        deadline = self.env.timeout(timeout)
        yield self.env.any_of([done, deadline])
        if not done.triggered:
            raise DrainTimeout(self._undrained_message(timeout))

    def _undrained_message(self, timeout: float) -> str:
        expected = self.world.active_ranks
        lines = []
        for step in range(self.config.nsteps):
            per_rank = self.rank_reports.get(step, {})
            missing = [r for r in expected if r not in per_rank]
            if missing:
                lines.append(f"step {step}: waiting on staging ranks {missing}")
        detail = "; ".join(lines) if lines else "no step reports missing"
        # Queue depth + in-flight bytes per stuck rank: the difference
        # between 'requests never arrived' and 'wedged mid-fetch under
        # backpressure' is exactly what a drain post-mortem needs.
        states = []
        for rank in expected:
            box = self.client._request_boxes.get(rank)
            queued_n = box.pending if box is not None else 0
            queued_b = (
                sum(
                    req.logical_nbytes
                    for _src, _tag, req in box._messages
                    if req is not None
                )
                if box is not None
                else 0.0
            )
            inflight = self._inflight.get(rank) or {}
            inflight_b = inflight.get("alloc", 0.0)
            inflight_b += sum(
                t.nbytes
                for t in inflight.get("tickets", ())
                if t.state != "spilled"
            )
            if queued_n or inflight_b > 0:
                states.append(
                    f"rank {rank}: {queued_n} queued request(s) "
                    f"[{queued_b:.3g} B], {inflight_b:.3g} B in flight"
                )
        msg = (
            f"staging drain timed out after {timeout:g} simulated seconds "
            f"({detail})"
        )
        if states:
            msg += "; " + "; ".join(states)
        obs = self.env.obs
        if obs is not None:
            fetched = sum(v for _l, v in obs.metrics.labelled("bytes_fetched"))
            retries = sum(v for _l, v in obs.metrics.labelled("fetch_retries"))
            msg += f"; obs: {fetched:.3g} B fetched, {retries:.0f} fetch retries"
        if self.client.flow is not None:
            msg += "; flow: " + self.client.flow.describe_pressure()
        return msg

    # -- aggregated views -----------------------------------------------------
    def step_report(self, step: int) -> StepReport:
        """Cross-rank maximum view of one step (what Fig. 7 plots)."""
        per_rank = self.rank_reports.get(step)
        if not per_rank:
            raise KeyError(f"no reports for step {step}")
        merged = StepReport(step=step)
        merged.t_dump_start = min(r.t_dump_start for r in per_rank.values())
        for name in (
            "gather_requests",
            "aggregate",
            "fetch",
            "map",
            "shuffle",
            "reduce",
            "finalize",
            "latency",
            "peak_buffer_bytes",
        ):
            setattr(merged, name, max(getattr(r, name) for r in per_rank.values()))
        merged.bytes_fetched = sum(r.bytes_fetched for r in per_rank.values())
        merged.bytes_shuffled = sum(r.bytes_shuffled for r in per_rank.values())
        return merged

    def result(self, op_name: str, step: int = 0, rank: int = 0) -> Any:
        """One operator's finalize() result for (step, staging rank)."""
        return self.results[op_name][step][rank]

    # -- the service loop ---------------------------------------------------------
    def _service_main(self, comm: Communicator):
        if self.config.resilience is None:
            for step in range(self.config.nsteps):
                yield from self._run_step(comm, step)
            return
        # Resilient loop: a step may be aborted by the recovery
        # controller (RecoveryRestart) and re-executed, or the whole
        # rank torn down when its own node crashes (NodeFailure).
        step = 0
        while step < self.config.nsteps:
            self._rank_step[comm.rank] = step
            try:
                yield from self._run_step(comm, step)
            except Interrupt as exc:
                cause = exc.cause
                self._abort_cleanup(comm)
                if isinstance(cause, NodeFailure):
                    return  # this rank's node died; exit quietly
                if isinstance(cause, RecoveryRestart):
                    self.restarts += 1
                    if self.env.obs is not None:
                        self.env.obs.metrics.inc("step_restarts", stage=comm.rank)
                    if self.env.check is not None:
                        self.env.check.on_restart(comm.rank, cause.restart_step)
                    step = cause.restart_step
                    continue
                raise
            else:
                step = self._rank_step[comm.rank]

    def _abort_cleanup(self, comm: Communicator) -> None:
        """Undo a partially executed step after an abort interrupt."""
        inflight = self._inflight.pop(comm.rank, None)
        if not inflight:
            return
        fproc = inflight.get("fetcher")
        if fproc is not None and fproc.is_alive:
            fproc.interrupt("step aborted")
        node = inflight.get("node")
        alloc = inflight.get("alloc", 0.0)
        if node is not None and alloc > 0:
            node.free(alloc)
        pool = inflight.get("pool")
        if pool is not None:
            for ticket in inflight.get("tickets", ()):
                pool.discard(ticket)

    @staticmethod
    def _rows_of(values: list[Any]) -> int:
        """Row count of a reduce bucket (non-array values count as 1)."""
        total = 0
        for v in values:
            shape = getattr(v, "shape", None)
            total += int(shape[0]) if shape else 1
        return total

    def _run_step(self, comm: Communicator, step: int):
        env = self.env
        obs = self.client.obs_view()
        tid = f"stage{comm.rank}"
        node = comm.node
        threads = self.config.threads_per_process
        resilience = self.config.resilience
        report = StepReport(step=step)
        my_computes = self.client.compute_ranks_of(comm.rank)
        flow = self.client.flow
        pool = (
            flow.pool_for(comm.node_id)
            if flow is not None and node is not None
            else None
        )
        inflight: dict = {
            "node": node,
            "alloc": 0.0,
            "fetcher": None,
            "pool": pool,
            "tickets": [],
        }
        if resilience is not None:
            self._inflight[comm.rank] = inflight

        # -- 1. gather data-fetch requests --------------------------------
        # (timed from the first request's arrival: the wait for the
        # application to reach its dump is idle time, not pipeline cost)
        box = self.client.request_box(comm.rank)
        requests: list[FetchRequest] = []
        received: dict[int, Optional[FetchRequest]] = {}
        t_first = None
        if resilience is None:
            for _ in my_computes:
                _src, _tag, req = yield box.receive(tag=step)
                if t_first is None:
                    t_first = env.now
                if req is not None:  # None = skip notice (adaptive placement)
                    requests.append(req)
        else:
            # Keyed by source so a redelivered duplicate cannot skew the
            # count; the receive is withdrawn cleanly if we are aborted.
            expected = set(my_computes)
            while not expected <= received.keys():
                ev = box.receive(tag=step)
                try:
                    src, _tag, req = yield ev
                except BaseException:
                    box.cancel(ev)
                    raise
                if t_first is None:
                    t_first = env.now
                received[src] = req
            requests = [
                received[r] for r in sorted(received) if received[r] is not None
            ]
        if self.config.chunk_order is not None:
            requests = list(self.config.chunk_order(requests))
        else:
            requests.sort(key=lambda r: r.compute_rank)
        report.gather_requests = env.now - t_first if t_first is not None else 0.0
        report.t_dump_start = (
            min(r.t_dump_start for r in requests) if requests else env.now
        )
        if obs is not None and t_first is not None:
            obs.span(
                "gather_requests", "pipeline", t_first, tid=tid,
                step=step, nrequests=len(requests),
            )
        volume_scale = 1.0

        # -- 2. aggregate partial results ----------------------------------
        t0 = env.now
        local = {
            op.name: [
                r.partials[op.name] for r in requests if op.name in r.partials
            ]
            for op in self.operators
        }
        # partial results are fixed-size summaries (samples, min/max,
        # geometry): no logical-volume inflation applies
        gathered = yield from comm.allgather(
            {"n": len(requests), "partials": local}, wire_scale=1.0
        )
        aggregated: dict[str, Any] = {}
        for op in self.operators:
            flat = [
                p for d in gathered for p in d["partials"].get(op.name, [])
            ]
            aggregated[op.name] = op.aggregate(flat) if flat else None
        report.aggregate = env.now - t0
        if obs is not None:
            obs.span("aggregate", "pipeline", t0, tid=tid, step=step)

        # A fully-skipped step (every compute process dumped elsewhere)
        # runs no operator phases — agreed globally via the allgather
        # so every staging rank stays in collective lockstep.
        if sum(d["n"] for d in gathered) == 0:
            report.latency = env.now - report.t_dump_start
            if obs is not None:
                obs.instant("step_skipped", "pipeline", tid=tid, step=step)
            self.rank_reports.setdefault(step, {})[comm.rank] = report
            for listener in self._step_listeners:
                listener(step, comm.rank)
            if resilience is not None:
                yield from self._commit_step(comm, step, received)
            return

        # -- 3. initialize ---------------------------------------------------
        # Under failures the worker set is the world's surviving ranks;
        # without failures this is exactly all of them.
        active = self.world.active_ranks
        ctxs: dict[str, OperatorContext] = {}
        for op in self.operators:
            ctx = OperatorContext(
                rank=comm.rank,
                nworkers=len(active),
                step=step,
                aggregated=aggregated[op.name],
                threads=threads,
                placement="staging",
                obs=obs,
            )
            ctxs[op.name] = ctx
            op.initialize(ctx)

        # -- 4. fetch + Map streaming pipeline --------------------------------
        # ``fetch_pipeline_depth`` bounds in-flight chunks *including*
        # the one being mapped: a slot is taken before the fetch and
        # released only after Map frees the chunk, so depth 1 strictly
        # serialises fetch and Map while depth k overlaps k-1 fetches.
        emits: dict[str, list[Emit]] = {op.name: [] for op in self.operators}
        chunk_store = Store(env)
        slots = Resource(env, self.config.fetch_pipeline_depth)
        fetch_clock = {"busy": 0.0}

        def fetcher():
            for req in requests:
                grant = slots.request()
                try:
                    yield grant
                except BaseException:
                    slots.cancel(grant)
                    raise
                t_f = env.now
                if resilience is None:
                    payload = yield from self.client.serve_fetch(
                        req.compute_rank, step, comm.node_id
                    )
                else:
                    payload = yield from self._fetch_with_retry(req, step, comm)
                fetch_clock["busy"] += env.now - t_f
                if obs is not None:
                    obs.span(
                        "fetch", "pipeline", t_f, tid=tid, step=step,
                        compute_rank=req.compute_rank,
                        nbytes=req.logical_nbytes,
                    )
                    obs.metrics.inc(
                        "bytes_fetched", req.logical_nbytes, stage=comm.rank
                    )
                ticket = None
                if pool is not None:
                    # Flow control: the chunk's bytes come from the
                    # governed buffer pool — a full pool blocks the
                    # fetcher here (backpressure) instead of crashing
                    # the node ledger with MemoryError_.
                    ticket = yield from pool.acquire(
                        (comm.rank, req.compute_rank, step), req.logical_nbytes
                    )
                    inflight["tickets"].append(ticket)
                    pool.unpin(ticket)  # parked in the queue: spillable
                elif node is not None:
                    node.allocate(req.logical_nbytes)
                    inflight["alloc"] += req.logical_nbytes
                yield chunk_store.put((req, payload, ticket))

        fproc = env.process(fetcher(), name=f"fetch[{comm.rank}]s{step}")
        inflight["fetcher"] = fproc
        t_stream0 = env.now
        map_busy = 0.0
        for _ in requests:
            req, payload, ticket = yield chunk_store.get()
            if ticket is not None:
                # re-pin for Map; unspills from the file system if the
                # chunk went cold under memory pressure
                yield from pool.ensure_resident(ticket)
            report.bytes_fetched += req.logical_nbytes
            step_obj = OutputStep.unpack(self.group, payload)
            volume_scale = step_obj.volume_scale
            for ctx in ctxs.values():
                ctx.volume_scale = volume_scale
            # unpack touches the whole chunk once
            t_m = env.now
            if node is not None:
                yield env.timeout(node.memory_scan_time(req.logical_nbytes))
            for op in self.operators:
                flops = op.map_flops(step_obj)
                if flops > 0 and node is not None:
                    yield from node.compute(flops, cores=threads)
                emits[op.name].extend(op.map(ctxs[op.name], step_obj))
            map_busy += env.now - t_m
            if obs is not None:
                obs.span(
                    "map", "pipeline", t_m, tid=tid, step=step,
                    compute_rank=req.compute_rank,
                )
            if env.check is not None:
                env.check.on_mapped(
                    self.client.key(req.compute_rank, step), req.logical_nbytes
                )
            if ticket is not None:
                pool.release(ticket)
                try:
                    inflight["tickets"].remove(ticket)
                except ValueError:
                    pass
                flow.release_credits(self.client.key(req.compute_rank, step))
            elif node is not None:
                node.free(req.logical_nbytes)
                inflight["alloc"] -= req.logical_nbytes
            if node is not None:
                report.peak_buffer_bytes = max(
                    report.peak_buffer_bytes, node.memory_high_water
                )
            slots.release()
        yield fproc  # ensure fetcher wound down
        stream_total = env.now - t_stream0
        report.map = map_busy
        report.fetch = max(stream_total - map_busy, fetch_clock["busy"] - map_busy, 0.0)

        # -- 5. shuffle ----------------------------------------------------------
        for op in self.operators:
            ctx = ctxs[op.name]
            t0 = env.now
            items = op.combine(ctx, emits[op.name])
            cflops = op.combine_flops(ctx, items)
            if cflops > 0 and node is not None:
                yield from node.compute(cflops, cores=threads)
            t_shuffle = env.now
            if obs is not None:
                obs.span(
                    "combine", "pipeline", t0, end=t_shuffle, tid=tid,
                    step=step, op=op.name, items=len(items),
                )
            outbound: list[list[Emit]] = [[] for _ in range(comm.size)]
            for e in items:
                # partition() indexes workers; map onto surviving ranks
                # (identity when nothing has failed).
                dest = active[op.partition(ctx, e.tag) % len(active)]
                outbound[dest].append(e)
            # Reduction-type operators shuffle fixed-size summaries; the
            # wire inflation only applies to the data fraction that
            # really crosses the shuffle at full scale.
            eff_scale = 1.0 + (volume_scale - 1.0) * op.logical_fraction_shuffled()
            inbound_rows = yield from comm.alltoall(
                outbound, wire_scale=eff_scale
            )
            inbound = [e for row in inbound_rows for e in row]
            report.bytes_shuffled += (
                sum(e.nbytes for row in outbound for e in row) * eff_scale
            )
            report.shuffle += env.now - t0
            if obs is not None:
                obs.span(
                    "shuffle", "pipeline", t_shuffle, tid=tid,
                    step=step, op=op.name,
                )
                # per (sender, reducer) wire volume — the skew that
                # collapses a sort onto one reducer shows up here.
                for dst, row in enumerate(outbound):
                    if row:
                        obs.metrics.inc(
                            "shuffle_bytes",
                            sum(e.nbytes for e in row) * eff_scale,
                            op=op.name, src=comm.rank, dst=dst,
                        )

            # -- 6. reduce ------------------------------------------------------
            t0 = env.now
            groups: dict[Hashable, list[Any]] = {}
            for e in inbound:
                groups.setdefault(e.tag, []).append(e.value)
            if obs is not None:
                # materialise the series even for empty reducers, so a
                # skewed key distribution reads as one huge row count
                # next to a column of zeros.
                obs.metrics.inc("bucket_rows", 0.0, op=op.name, reducer=comm.rank)
            reduced: dict[Hashable, Any] = {}
            for tag, values in groups.items():
                rflops = op.reduce_flops(ctx, tag, values)
                if rflops > 0 and node is not None:
                    yield from node.compute(rflops, cores=threads)
                rmem = op.reduce_membytes(ctx, tag, values)
                if rmem > 0 and node is not None:
                    yield env.timeout(node.memory_scan_time(rmem))
                out = op.reduce(ctx, tag, values)
                if out is not None:
                    reduced[tag] = out
                if obs is not None:
                    rows = self._rows_of(values)
                    obs.metrics.inc(
                        "bucket_rows", rows, op=op.name, reducer=comm.rank
                    )
                    obs.metrics.observe(
                        "bucket_rows_per_tag", rows, op=op.name
                    )
            report.reduce += env.now - t0
            if obs is not None:
                obs.span(
                    "reduce", "pipeline", t0, tid=tid, step=step,
                    op=op.name, ntags=len(groups),
                )

            # -- 7. finalize -------------------------------------------------------
            t0 = env.now
            res = op.finalize(ctx, reduced)
            if inspect.isgenerator(res):
                res = yield from res
            self.results[op.name].setdefault(step, {})[comm.rank] = res
            report.finalize += env.now - t0
            if obs is not None:
                obs.span(
                    "finalize", "pipeline", t0, tid=tid, step=step, op=op.name
                )

        report.latency = env.now - report.t_dump_start
        if obs is not None:
            obs.metrics.gauge_max(
                "peak_buffer_bytes", report.peak_buffer_bytes, stage=comm.rank
            )
            obs.metrics.observe(
                "step_latency_seconds", report.latency, stage=comm.rank
            )
        self.rank_reports.setdefault(step, {})[comm.rank] = report
        for listener in self._step_listeners:
            listener(step, comm.rank)
        if resilience is not None:
            yield from self._commit_step(comm, step, received)
        else:
            # without the recovery protocol, step completion is the
            # commit point: the outputs are durable the moment the
            # rank's finalize returns
            for listener in self._commit_listeners:
                listener(step, comm.rank)

    # -- recovery protocol pieces -------------------------------------------
    def _commit_step(
        self, comm: Communicator, step: int, received: dict
    ) -> Generator:
        """Commit barrier: all survivors finished *step*, buffers free.

        Until the barrier completes, no rank releases any compute-side
        buffer of the step, so a crash inside the step can always be
        recovered by re-fetching; after it, every rank commits its own
        clients' dumps and advances in lockstep.
        """
        yield from comm.barrier()
        for src in sorted(received):
            self.client.commit(src, step)
        self.commit_times[step] = self.env.now
        if self.env.obs is not None:
            self.env.obs.instant(
                "step_commit", "recovery", tid=f"stage{comm.rank}", step=step
            )
        self._rank_step[comm.rank] = step + 1
        self._inflight.pop(comm.rank, None)
        for listener in self._commit_listeners:
            listener(step, comm.rank)

    def _fetch_with_retry(self, req: FetchRequest, step: int, comm: Communicator):
        """One chunk fetch under timeout + exponential-backoff retry.

        Each attempt runs ``serve_fetch`` as a child process raced
        against the per-attempt timeout; a losing attempt is interrupted
        (the buffer survives — resilient fetches don't consume it) and
        re-issued after a doubling backoff.
        """
        env = self.env
        r = self.config.resilience
        delay = r.fetch_retry_backoff
        for attempt in range(r.fetch_max_attempts):
            proc = env.process(
                self.client.serve_fetch(
                    req.compute_rank, step, comm.node_id, attempt=attempt
                ),
                name=f"fetch-try[{comm.rank}]c{req.compute_rank}s{step}a{attempt}",
            )
            deadline = env.timeout(r.fetch_timeout)
            try:
                yield env.any_of([proc, deadline])
            except FetchDropped:
                pass
            except BaseException:
                # the step itself is being aborted: kill the attempt
                if proc.is_alive:
                    proc.interrupt("step aborted")
                raise
            corrupt = False
            if proc.triggered and proc.ok:
                payload = proc.value
                if self.client.payload_ok(req.compute_rank, step, payload):
                    return payload
                # the bytes arrived but fail the pack-time checksum:
                # reject the garbage chunk and re-fetch (the compute-side
                # buffer survives in resilient mode)
                corrupt = True
            if proc.is_alive:
                proc.interrupt("fetch timed out")
            self.fetch_retries += 1
            if env.check is not None:
                env.check.on_retry(self.client.key(req.compute_rank, step), attempt)
            if env.obs is not None:
                env.obs.metrics.inc("fetch_retries", stage=comm.rank)
                env.obs.instant(
                    "corrupt_chunk_rejected" if corrupt else "fetch_retry",
                    "recovery", tid=f"stage{comm.rank}",
                    compute_rank=req.compute_rank, step=step, attempt=attempt,
                )
            if attempt + 1 < r.fetch_max_attempts:
                yield env.timeout(delay)
                delay *= 2.0
        raise FetchTimeout(req.compute_rank, step, r.fetch_max_attempts)
