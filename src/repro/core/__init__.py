"""PreDatA middleware — the paper's primary contribution.

The middleware augments the I/O stack with data staging and in-transit
processing (§III, §IV):

- :mod:`repro.core.operator` — the pluggable operator API
  (``partial_calculate / aggregate / initialize / map / combine /
  partition / reduce / finalize`` — Fig. 5's five stream-processing
  phases plus the compute-node first pass);
- :mod:`repro.core.client` — the compute-node runtime:
  ``Partial_calculate`` execution, FFS packing, ``Route()``, data-fetch
  requests, bounded output buffering, and the
  :class:`~repro.core.client.StagingTransport` ADIOS method;
- :mod:`repro.core.scheduler` — scheduled asynchronous data movement
  (the [2] DataStager heritage): fetches are deferred while the
  simulation is inside communication phases to cap interference;
- :mod:`repro.core.staging` — the Staging Area service: request
  gathering, partial-result aggregation, streaming fetch + Map,
  MPI-based Shuffle, Reduce, Finalize, with per-step timing reports;
- :mod:`repro.core.placement` — the In-Compute-Node runner (baseline
  configuration) and the Offline cost model (§V.B.3);
- :mod:`repro.core.middleware` — the :class:`~repro.core.middleware.PreDatA`
  facade assembling all of the above on a :class:`~repro.machine.Machine`.
"""

from repro.core.operator import (
    Emit,
    OperatorContext,
    PreDatAOperator,
    StepReport,
)
from repro.core.advisor import (
    OperatorProfile,
    PlacementAdvisor,
    PlacementEstimate,
)
from repro.core.monitor import Alarm, OnlineMonitor, SteeringFlag
from repro.core.adaptive import (
    AdaptivePlacement,
    PlacementBudget,
    PlacementDecision,
)
from repro.core.client import StagingClient, StagingTransport
from repro.core.scheduler import MovementScheduler
from repro.core.staging import DrainTimeout, StagingConfig, StagingService
from repro.core.placement import InComputeNodeRunner, OfflineCostModel
from repro.core.middleware import PreDatA

__all__ = [
    "AdaptivePlacement",
    "Alarm",
    "DrainTimeout",
    "Emit",
    "PlacementBudget",
    "PlacementDecision",
    "InComputeNodeRunner",
    "OnlineMonitor",
    "SteeringFlag",
    "MovementScheduler",
    "OfflineCostModel",
    "OperatorContext",
    "OperatorProfile",
    "PlacementAdvisor",
    "PlacementEstimate",
    "PreDatA",
    "PreDatAOperator",
    "StagingClient",
    "StagingConfig",
    "StagingService",
    "StagingTransport",
    "StepReport",
]
