"""Online monitoring and steering on top of PreDatA results.

The paper's introduction motivates in-transit statistics with exactly
this loop: "statistical measures that can be used to validate the
veracity of the ongoing simulation, gain understanding of the
simulation progress, and potentially, take early action when the
simulation operates improperly" (§I; §VI lists runtime steering as an
application of PreDatA's low-overhead extraction).

:class:`OnlineMonitor` subscribes to a
:class:`~repro.core.staging.StagingService`'s per-step completions and
evaluates user *watch conditions* against each operator's finalized
results.  A condition firing produces an :class:`Alarm` and invokes an
optional steering action — e.g. flip a flag the simulation polls at
its next iteration (abort, re-tune, checkpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.staging import StagingService

__all__ = ["Alarm", "OnlineMonitor", "SteeringFlag"]


@dataclass(frozen=True)
class Alarm:
    """One fired watch condition."""

    step: int
    operator: str
    message: str
    sim_time: float


@dataclass
class _Watch:
    operator: str
    condition: Callable[[list[Any]], Optional[str]]
    action: Optional[Callable[["Alarm"], None]]


class SteeringFlag:
    """A latch the simulation can poll between iterations."""

    def __init__(self) -> None:
        self._set = False
        self.reason: Optional[Alarm] = None

    def set(self, alarm: Alarm) -> None:
        """Latch the flag; the first alarm becomes the recorded reason."""
        self._set = True
        if self.reason is None:
            self.reason = alarm

    def __bool__(self) -> bool:
        return self._set


class OnlineMonitor:
    """Evaluates watch conditions as staging steps complete.

    Parameters
    ----------
    service: the staging service to observe.

    Usage::

        monitor = OnlineMonitor(predata.service)
        abort = SteeringFlag()
        monitor.watch(
            "hist:electrons[6]",
            condition=lambda results: (
                "weight histogram collapsed"
                if all(r is None or r["counts"].max() >
                       0.5 * r["counts"].sum()
                       for r in results if r is not None)
                else None
            ),
            action=abort.set,
        )
        # ... in the app loop:  if abort: break
    """

    def __init__(self, service: StagingService):
        self.service = service
        self._watches: list[_Watch] = []
        self.alarms: list[Alarm] = []
        self._done_ranks: dict[int, int] = {}
        service.add_step_listener(self._on_rank_done)

    def watch(
        self,
        operator: str,
        condition: Callable[[list[Any]], Optional[str]],
        action: Optional[Callable[[Alarm], None]] = None,
    ) -> None:
        """Evaluate *condition* on each step's results of *operator*.

        ``condition`` receives the per-staging-rank finalize results
        (list ordered by rank; entries may be None for non-owning
        ranks) and returns an alarm message, or None when healthy.
        """
        known = {op.name for op in self.service.operators}
        if operator not in known:
            raise KeyError(f"no operator named {operator!r} in the service")
        self._watches.append(_Watch(operator, condition, action))

    # -- service callback ------------------------------------------------
    def _on_rank_done(self, step: int, rank: int) -> None:
        self._done_ranks[step] = self._done_ranks.get(step, 0) + 1
        if self._done_ranks[step] < self.service.world.size:
            return
        for watch in self._watches:
            per_rank = self.service.results[watch.operator].get(step, {})
            results = [
                per_rank.get(r) for r in range(self.service.world.size)
            ]
            message = watch.condition(results)
            if message is not None:
                alarm = Alarm(
                    step=step,
                    operator=watch.operator,
                    message=message,
                    sim_time=self.service.env.now,
                )
                self.alarms.append(alarm)
                if watch.action is not None:
                    watch.action(alarm)

    def alarms_for(self, operator: str) -> list[Alarm]:
        """All alarms raised by watches on *operator*."""
        return [a for a in self.alarms if a.operator == operator]
