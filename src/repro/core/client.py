"""Compute-node side of the PreDatA middleware (§IV.B stages 1a–1c).

When the application triggers I/O, the :class:`StagingClient`:

1. runs each operator's ``Partial_calculate()`` on the local output
   (stage 1a — deterministic-delay local ops);
2. packs the output into a contiguous FFS buffer — the *packed partial
   data chunk* (stage 1b) — holding node memory until the staging area
   has fetched it;
3. routes a small *data-fetch request*, with the partial results
   attached, to the staging process chosen by ``Route()`` (stage 1c);
4. returns control to the simulation.

The visible write latency is therefore pack time + request latency,
plus any throttling when the bounded per-node output buffer is still
occupied by previous steps (back-pressure replaces unbounded memory).

The staging area later pulls the buffer with a scheduled asynchronous
RDMA get served by :meth:`StagingClient.serve_fetch`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.adios.group import OutputStep
from repro.adios.io import IOMethod
from repro.core.accounting import RankLedger
from repro.core.operator import PreDatAOperator
from repro.core.scheduler import MovementScheduler
from repro.faults.errors import FetchDropped, NoLiveStagers
from repro.machine.machine import Machine
from repro.mpi.communicator import Communicator
from repro.sim.engine import Engine, Event
from repro.sim.resources import Mailbox

__all__ = ["FetchRequest", "StagingClient", "StagingTransport", "default_route"]


def default_route(compute_rank: int, ncompute: int, nstaging: int) -> int:
    """Block mapping of compute ranks onto staging processes."""
    return compute_rank * nstaging // ncompute


def _garbled(payload) -> bytes:
    """A corrupted copy of *payload* (fault injection's wire garbage)."""
    bad = bytearray(payload)
    for i in range(min(32, len(bad))):
        bad[i] ^= 0xA5
    return bytes(bad)


@dataclass
class FetchRequest:
    """The small message sent from a compute process to its staging
    process when an I/O dump starts (stage 1c)."""

    compute_rank: int
    compute_node: int
    step: int
    logical_nbytes: float
    partials: dict[str, Any]  # operator name -> partial result
    t_dump_start: float


@dataclass
class _BufferRecord:
    payload: bytes
    logical_nbytes: float
    freed: Event
    node_id: int
    #: pack-time sha256 of the payload, kept only while a fault hook is
    #: armed (corrupt-chunk detection); None otherwise — zero overhead
    #: and byte-identical behaviour for fault-free runs
    digest: Optional[bytes] = None


class StagingClient:
    """Shared compute-node runtime state for one application."""

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        operators: list[PreDatAOperator],
        *,
        ncompute: int,
        nstaging: int,
        staging_nodes: list[int],
        scheduler: Optional[MovementScheduler] = None,
        route: Optional[Callable[[int, int, int], int]] = None,
        max_buffered_steps: int = 2,
        fetch_rate_cap: Optional[float] = None,
        resilient: bool = False,
        zero_copy_pack: bool = True,
        tenant: Optional[str] = None,
    ):
        """``fetch_rate_cap`` (bytes/s per staging process) paces the
        asynchronous RDMA gets: scheduled movement deliberately draws
        data at a bounded rate to bound interference with the
        application's communication ([2]'s server-directed pacing).
        None disables pacing (fetch at full NIC speed).

        ``resilient=True`` switches the buffer lifecycle to the
        recovery protocol: fetches no longer consume the compute-side
        buffer — it is released only by :meth:`commit` once the whole
        staging world has finished the step — so a crashed stager's
        step can be re-fetched by survivors with zero data loss.

        ``zero_copy_pack=True`` (default) packs each dump into a
        per-rank :class:`repro.ffs.PackBuffer` donated downstream as a
        read-only memoryview: after warm-up, Stage 1b allocates nothing
        and copies each array exactly once.  Scratches are recycled at
        :meth:`commit`, when the staging world is provably done with
        the chunk and every array decoded from it.  ``False`` restores
        the immutable ``bytes`` path (the allocation-per-step
        baseline, kept for comparison benchmarks).

        ``tenant`` names the job this client belongs to under the
        multi-tenant jobs layer.  It qualifies every key this pipeline
        hands to the shared flow-control and verification subsystems
        (so two tenants' ``(rank, step)`` chunks never collide) and
        scopes observability through a per-tenant view.  ``None`` (the
        default) keeps the bare two-tuple keys — single-tenant runs
        are byte-identical to pre-jobs behaviour."""
        if nstaging < 1:
            raise ValueError("need at least one staging process")
        self.env = env
        self.tenant = tenant
        self.machine = machine
        self.operators = list(operators)
        self.ncompute = ncompute
        self.nstaging = nstaging
        self.staging_nodes = list(staging_nodes)
        self.scheduler = scheduler or MovementScheduler(env)
        self._route = route or default_route
        self.max_buffered_steps = max_buffered_steps
        if fetch_rate_cap is not None and fetch_rate_cap <= 0:
            raise ValueError("fetch_rate_cap must be positive")
        self.fetch_rate_cap = fetch_rate_cap
        #: request mailbox per staging rank (cross-world channel)
        self._request_boxes: dict[int, Mailbox] = {}
        #: pending packed chunks keyed by (compute_rank, step)
        self._buffers: dict[tuple[int, int], _BufferRecord] = {}
        # -- zero-copy packing ------------------------------------------
        self.zero_copy_pack = zero_copy_pack
        #: free PackBuffers, reused across (rank, step) packs
        self._scratch_pool: list = []
        #: in-flight scratch per (compute_rank, step), recycled at commit
        self._scratches: dict[tuple[int, int], Any] = {}
        #: completion order per compute rank for back-pressure
        self._pending: dict[int, list[Event]] = {}
        #: per-rank accumulated seconds, numpy-backed (dict-compatible;
        #: see :class:`repro.core.accounting.RankLedger`)
        self.visible_seconds = RankLedger(dtype="float64")
        self.partial_calc_seconds = RankLedger(dtype="float64")
        # -- resilience state ------------------------------------------
        self.resilient = resilient
        #: fault-injection hook: (compute_rank, step, attempt) ->
        #: None | ("drop"|"slow", delay)
        self.fault_hook: Optional[Callable[[int, int, int], Any]] = None
        #: staging ranks declared dead by the failure detector
        self._failed_stagers: set[int] = set()
        #: uncommitted dump notices keyed (compute_rank, step); value is
        #: the FetchRequest, or None for a skip notice
        self._requests_log: dict[tuple[int, int], Optional[FetchRequest]] = {}
        #: graceful degradation flag: transports fall back to sync writes
        self.degraded = False
        #: controller callback replaying a buffer through the fallback
        #: when a dump lands after the last stager died
        self._orphan_sink: Optional[Callable[[int, int], Any]] = None
        #: optional :class:`repro.flow.FlowControl` — credit-based
        #: admission + staging buffer pools (None = no flow control)
        self.flow = None

    # -- tenancy ------------------------------------------------------------
    def key(self, compute_rank: int, step: int) -> tuple:
        """The chunk key this pipeline presents to shared subsystems.

        Bare ``(compute_rank, step)`` without a tenant; tenant-qualified
        ``(tenant, compute_rank, step)`` under the jobs layer, so keys
        from concurrent pipelines never collide in the shared flow
        banks/pools or the checker's ledgers.  Internal client state
        (buffers, scratches, request log) stays on the bare key — it is
        already private to this client instance.
        """
        if self.tenant is None:
            return (compute_rank, step)
        return (self.tenant, compute_rank, step)

    def obs_view(self):
        """The observability facade this pipeline records through.

        The engine's facade itself without a tenant (byte-identical to
        pre-jobs behaviour); the tenant-scoped view otherwise.
        """
        obs = self.env.obs
        if obs is None or self.tenant is None:
            return obs
        return obs.for_tenant(self.tenant)

    # -- routing ------------------------------------------------------------
    def route(self, compute_rank: int) -> int:
        """The validated staging rank serving *compute_rank*.

        With failures, dead targets are remapped deterministically onto
        the survivors (ring order), so every compute process — and the
        recovery controller re-delivering logged requests — agrees on
        the failover assignment without any negotiation.
        """
        target = self._route(compute_rank, self.ncompute, self.nstaging)
        if not 0 <= target < self.nstaging:
            raise ValueError(
                f"Route() returned {target} outside staging world of "
                f"{self.nstaging}"
            )
        if target in self._failed_stagers:
            survivors = self.alive_stagers
            if not survivors:
                raise NoLiveStagers("all staging ranks have failed")
            target = survivors[target % len(survivors)]
        return target

    # -- failure bookkeeping -------------------------------------------------
    @property
    def alive_stagers(self) -> list[int]:
        return [r for r in range(self.nstaging) if r not in self._failed_stagers]

    @property
    def has_live_stagers(self) -> bool:
        return len(self._failed_stagers) < self.nstaging

    def mark_stager_failed(self, staging_rank: int) -> None:
        """Record *staging_rank* dead; future routing avoids it."""
        self._failed_stagers.add(staging_rank)

    def enter_degraded_mode(self) -> None:
        """Switch transports to synchronous in-compute-node writes."""
        self.degraded = True

    def exit_degraded_mode(self) -> None:
        """Resume the staged write path (preemption governor recovery).

        Only meaningful for pressure-driven degradation: after a stager
        *failure* the routing/failover state decides, not this flag.
        """
        self.degraded = False

    def commit(self, compute_rank: int, step: int) -> None:
        """Release the compute-side buffer of a fully processed dump.

        Called by the staging service after the commit barrier (all
        survivors finished the step), or by the recovery controller for
        steps that completed globally before a crash.
        """
        self._requests_log.pop((compute_rank, step), None)
        if self.env.check is not None:
            self.env.check.on_committed(self.key(compute_rank, step))
        rec = self._buffers.pop((compute_rank, step), None)
        if rec is not None:
            self.machine.node(rec.node_id).free(rec.logical_nbytes)
            if not rec.freed.triggered:
                rec.freed.succeed()
        scratch = self._scratches.pop((compute_rank, step), None)
        if scratch is not None:
            # the staging world is done with this chunk — every decoded
            # view is dead (reduce/finalize copy), so the scratch may be
            # repacked without aliasing
            self._scratch_pool.append(scratch)
        if self.flow is not None:
            # safety net: whatever path completed the step (including
            # zero-survivor replay), its credits must not leak
            self.flow.release_credits(self.key(compute_rank, step))

    def buffer_payload(self, compute_rank: int, step: int) -> Optional[bytes]:
        """Packed bytes of an uncommitted dump (controller replay path)."""
        rec = self._buffers.get((compute_rank, step))
        return None if rec is None else rec.payload

    def compute_ranks_of(self, staging_rank: int) -> list[int]:
        """Compute ranks served by *staging_rank* under current routing."""
        return [
            r for r in range(self.ncompute) if self.route(r) == staging_rank
        ]

    def request_box(self, staging_rank: int) -> Mailbox:
        """The cross-world request mailbox of one staging rank."""
        box = self._request_boxes.get(staging_rank)
        if box is None:
            box = Mailbox(self.env)
            self._request_boxes[staging_rank] = box
        return box

    # -- stage 1: the write path ------------------------------------------------
    def write_step(self, comm: Communicator, step: OutputStep) -> Generator:
        """Process body: the compute-node side of one I/O dump.

        Returns the visible (blocking) seconds.
        """
        env = self.env
        obs = self.obs_view()
        tid = f"compute{comm.rank}"
        start = env.now
        node = self.machine.node(comm.node_id)

        # Back-pressure: at most ``max_buffered_steps`` outstanding
        # buffers per process.
        pending = self._pending.setdefault(comm.rank, [])
        pending[:] = [ev for ev in pending if not ev.triggered]
        while len(pending) >= self.max_buffered_steps:
            yield pending[0]
            pending[:] = [ev for ev in pending if not ev.triggered]
        if obs is not None and env.now > start:
            obs.span("backpressure", "compute", start, tid=tid, step=step.step)

        # Stage 1a: Partial_calculate for each operator.
        partials: dict[str, Any] = {}
        t0 = env.now
        for op in self.operators:
            flops = op.partial_flops(step)
            if flops > 0:
                yield from node.compute(flops)
            result = op.partial_calculate(step)
            if result is not None:
                partials[op.name] = result
        self.partial_calc_seconds.add(comm.rank, env.now - t0)
        if obs is not None:
            obs.span("partial_calculate", "compute", t0, tid=tid, step=step.step)

        # Stage 1b: pack into a contiguous FFS buffer (memcpy-bound).
        t_pack = env.now
        if self.zero_copy_pack:
            if self._scratch_pool:
                scratch = self._scratch_pool.pop()
            else:
                from repro.ffs import PackBuffer

                scratch = PackBuffer()
            payload = step.pack(scratch=scratch)
            self._scratches[(comm.rank, step.step)] = scratch
        else:
            payload = step.pack()
        pack_time = 2.0 * node.memory_scan_time(step.nbytes_logical)
        if pack_time > 0:
            yield env.timeout(pack_time)
        if obs is not None:
            obs.span(
                "pack", "compute", t_pack, tid=tid, step=step.step,
                nbytes=step.nbytes_logical,
            )
        node.allocate(step.nbytes_logical)
        freed = env.event()
        self._buffers[(comm.rank, step.step)] = _BufferRecord(
            payload=payload,
            logical_nbytes=step.nbytes_logical,
            freed=freed,
            node_id=comm.node_id,
            digest=(
                hashlib.sha256(payload).digest()
                if self.fault_hook is not None
                else None
            ),
        )
        pending.append(freed)
        if env.check is not None:
            env.check.on_packed(
                self.key(comm.rank, step.step), step.nbytes_logical, comm.node_id
            )

        # Stage 1c: data-fetch request to the routed staging process.
        request = FetchRequest(
            compute_rank=comm.rank,
            compute_node=comm.node_id,
            step=step.step,
            logical_nbytes=step.nbytes_logical,
            partials=partials,
            t_dump_start=start,
        )
        if self.resilient:
            self._requests_log[(comm.rank, step.step)] = request
        if self.has_live_stagers:
            t_req = env.now
            target = self.route(comm.rank)
            yield from self.machine.network.transfer(
                comm.node_id,
                self.staging_nodes[target % len(self.staging_nodes)],
                256.0,
            )
            if self.resilient:
                # the target may have died during the wire delay
                target = self.route(comm.rank)
            self.request_box(target).deliver(comm.rank, step.step, request)
            if obs is not None:
                obs.span(
                    "request", "compute", t_req, tid=tid,
                    step=step.step, target=target,
                )
        elif self._orphan_sink is not None:
            # Last stager died mid-write: hand the buffer straight to
            # the controller's fallback replay so the dump still lands.
            env.process(self._orphan_sink(comm.rank, step.step))

        visible = env.now - start
        self.visible_seconds.add(comm.rank, visible)
        return visible

    def skip_step(self, comm: Communicator, step: int) -> Generator:
        """Process body: tell the staging area this rank dumps *step*
        elsewhere (e.g. the adaptive controller chose In-Compute-Node).

        The staging service still matches the step's request round but
        fetches nothing from this process.
        """
        if self.resilient:
            self._requests_log[(comm.rank, step)] = None
        if not self.has_live_stagers:
            return
        target = self.route(comm.rank)
        yield from self.machine.network.transfer(
            comm.node_id, self.staging_nodes[target % len(self.staging_nodes)], 64.0
        )
        if self.resilient:
            target = self.route(comm.rank)
        self.request_box(target).deliver(comm.rank, step, None)

    # -- stage 3: RDMA service ----------------------------------------------------
    def serve_fetch(
        self, compute_rank: int, step: int, staging_node: int, *, attempt: int = 0
    ) -> Generator:
        """Process body (staging side): scheduled RDMA get of one chunk.

        Returns the packed payload bytes.  Without resilience the
        compute-node buffer is freed here; in resilient mode it stays
        until :meth:`commit`, so an interrupted/dropped fetch (and a
        whole-step restart after a stager crash) can re-pull the data.
        """
        key = (compute_rank, step)
        if self.resilient:
            rec = self._buffers.get(key)
        else:
            rec = self._buffers.pop(key, None)
        if rec is None:
            raise KeyError(f"no buffered chunk for rank {compute_rank} step {step}")
        fault = (
            self.fault_hook(compute_rank, step, attempt)
            if self.fault_hook is not None
            else None
        )
        yield from self.scheduler.wait_clear(
            rec.node_id, dst_node=staging_node, nbytes=rec.logical_nbytes
        )
        if fault is not None:
            mode, delay = fault
            if delay > 0:
                yield self.env.timeout(delay)
            if mode == "drop":
                raise FetchDropped(compute_rank, step, attempt)
            if mode == "withhold":
                # silent non-answer: the descriptor is posted but the
                # responder never completes it — only the puller's
                # per-attempt timeout (which interrupts this process)
                # can end the attempt
                yield self.env.event()
        wire = self.machine.network.transfer_event(
            rec.node_id, staging_node, rec.logical_nbytes, rdma=True
        )
        if self.fetch_rate_cap is not None:
            pace = self.env.timeout(rec.logical_nbytes / self.fetch_rate_cap)
            yield self.env.all_of([wire, pace])
        else:
            yield wire
        if not self.resilient:
            self.machine.node(rec.node_id).free(rec.logical_nbytes)
            rec.freed.succeed()
        if self.env.check is not None:
            self.env.check.on_fetched(self.key(compute_rank, step), rec.logical_nbytes)
        if fault is not None and fault[0] == "corrupt":
            return _garbled(rec.payload)
        return rec.payload

    def payload_ok(self, compute_rank: int, step: int, payload) -> bool:
        """Whether *payload* matches the chunk's pack-time checksum.

        True when no checksum was recorded (no fault hook armed at pack
        time, or the buffer already consumed) — verification only ever
        rejects provably garbled bytes.
        """
        rec = self._buffers.get((compute_rank, step))
        if rec is None or rec.digest is None:
            return True
        return hashlib.sha256(payload).digest() == rec.digest

    @property
    def outstanding_buffers(self) -> int:
        return len(self._buffers)


class StagingTransport(IOMethod):
    """ADIOS transport that routes output through the staging area.

    ``fallback`` (an :class:`IOMethod`, typically synchronous MPI-IO)
    takes over when the client has entered degraded mode: dumps are
    written synchronously from the compute nodes and surviving stagers
    (if any) receive a skip notice so their step rounds stay matched.
    """

    def __init__(self, client: StagingClient, *, fallback: Optional[IOMethod] = None):
        self.client = client
        self.fallback = fallback
        self.visible_write_seconds = 0.0
        self.degraded_steps = 0
        #: steps degraded to the fallback by credit-admission overload
        self.overflow_steps = 0
        #: optional admission gate (``repro.jobs`` preemption ladder):
        #: while closed, every write of this transport holds here —
        #: the "pause admission" tier above degrade-to-sync
        self.admission_gate = None

    def _degraded_write(self, comm: Communicator, step: OutputStep) -> Generator:
        """Process body: synchronous fallback write + staging skip notice."""
        yield from self.fallback.write_step(comm, step)
        if self.client.has_live_stagers:
            yield from self.client.skip_step(comm, step.step)
        self.degraded_steps += 1
        if comm.env.check is not None:
            comm.env.check.on_degraded(
                self.client.key(comm.rank, step.step), step.nbytes_logical
            )

    def write_step(self, comm: Communicator, step: OutputStep) -> Generator:
        if self.admission_gate is not None:
            yield from self.admission_gate.wait(comm.rank)
        if self.client.degraded and self.fallback is not None:
            start = comm.env.now
            yield from self._degraded_write(comm, step)
            obs = self.client.obs_view()
            if obs is not None:
                obs.metrics.inc("degraded_steps", rank=comm.rank)
                obs.instant(
                    "degraded_write", "recovery",
                    tid=f"compute{comm.rank}", step=step.step,
                )
            t = comm.env.now - start
            self.visible_write_seconds += t
            return t
        flow = self.client.flow
        if flow is not None and self.client.has_live_stagers:
            # Credit-based admission: hold the write until its routed
            # staging rank grants byte credits for the packed chunk.
            # Under a CoDel sojourn target (and with a fallback to
            # degrade to), an over-waiting write leaves the queue and
            # lands synchronously instead.
            start = comm.env.now
            target = self.client.route(comm.rank)
            granted = yield from flow.request_credits(
                target,
                self.client.key(comm.rank, step.step),
                step.nbytes_logical,
                can_degrade=self.fallback is not None,
            )
            if not granted:
                yield from self._degraded_write(comm, step)
                self.overflow_steps += 1
                obs = self.client.obs_view()
                if obs is not None:
                    obs.metrics.inc("flow_overflow_steps", rank=comm.rank)
                    obs.instant(
                        "overflow_write", "flow",
                        tid=f"compute{comm.rank}", step=step.step,
                    )
                t = comm.env.now - start
                self.visible_write_seconds += t
                return t
            yield from self.client.write_step(comm, step)
            t = comm.env.now - start  # visible time includes the credit wait
            self.visible_write_seconds += t
            return t
        t = yield from self.client.write_step(comm, step)
        self.visible_write_seconds += t
        return t
