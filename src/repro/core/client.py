"""Compute-node side of the PreDatA middleware (§IV.B stages 1a–1c).

When the application triggers I/O, the :class:`StagingClient`:

1. runs each operator's ``Partial_calculate()`` on the local output
   (stage 1a — deterministic-delay local ops);
2. packs the output into a contiguous FFS buffer — the *packed partial
   data chunk* (stage 1b) — holding node memory until the staging area
   has fetched it;
3. routes a small *data-fetch request*, with the partial results
   attached, to the staging process chosen by ``Route()`` (stage 1c);
4. returns control to the simulation.

The visible write latency is therefore pack time + request latency,
plus any throttling when the bounded per-node output buffer is still
occupied by previous steps (back-pressure replaces unbounded memory).

The staging area later pulls the buffer with a scheduled asynchronous
RDMA get served by :meth:`StagingClient.serve_fetch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.adios.group import OutputStep
from repro.adios.io import IOMethod
from repro.core.operator import PreDatAOperator
from repro.core.scheduler import MovementScheduler
from repro.machine.machine import Machine
from repro.mpi.communicator import Communicator
from repro.sim.engine import Engine, Event
from repro.sim.resources import Mailbox

__all__ = ["FetchRequest", "StagingClient", "StagingTransport", "default_route"]


def default_route(compute_rank: int, ncompute: int, nstaging: int) -> int:
    """Block mapping of compute ranks onto staging processes."""
    return compute_rank * nstaging // ncompute


@dataclass
class FetchRequest:
    """The small message sent from a compute process to its staging
    process when an I/O dump starts (stage 1c)."""

    compute_rank: int
    compute_node: int
    step: int
    logical_nbytes: float
    partials: dict[str, Any]  # operator name -> partial result
    t_dump_start: float


@dataclass
class _BufferRecord:
    payload: bytes
    logical_nbytes: float
    freed: Event
    node_id: int


class StagingClient:
    """Shared compute-node runtime state for one application."""

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        operators: list[PreDatAOperator],
        *,
        ncompute: int,
        nstaging: int,
        staging_nodes: list[int],
        scheduler: Optional[MovementScheduler] = None,
        route: Optional[Callable[[int, int, int], int]] = None,
        max_buffered_steps: int = 2,
        fetch_rate_cap: Optional[float] = None,
    ):
        """``fetch_rate_cap`` (bytes/s per staging process) paces the
        asynchronous RDMA gets: scheduled movement deliberately draws
        data at a bounded rate to bound interference with the
        application's communication ([2]'s server-directed pacing).
        None disables pacing (fetch at full NIC speed)."""
        if nstaging < 1:
            raise ValueError("need at least one staging process")
        self.env = env
        self.machine = machine
        self.operators = list(operators)
        self.ncompute = ncompute
        self.nstaging = nstaging
        self.staging_nodes = list(staging_nodes)
        self.scheduler = scheduler or MovementScheduler(env)
        self._route = route or default_route
        self.max_buffered_steps = max_buffered_steps
        if fetch_rate_cap is not None and fetch_rate_cap <= 0:
            raise ValueError("fetch_rate_cap must be positive")
        self.fetch_rate_cap = fetch_rate_cap
        #: request mailbox per staging rank (cross-world channel)
        self._request_boxes: dict[int, Mailbox] = {}
        #: pending packed chunks keyed by (compute_rank, step)
        self._buffers: dict[tuple[int, int], _BufferRecord] = {}
        #: completion order per compute rank for back-pressure
        self._pending: dict[int, list[Event]] = {}
        self.visible_seconds: dict[int, float] = {}
        self.partial_calc_seconds: dict[int, float] = {}

    # -- routing ------------------------------------------------------------
    def route(self, compute_rank: int) -> int:
        """The validated staging rank serving *compute_rank*."""
        target = self._route(compute_rank, self.ncompute, self.nstaging)
        if not 0 <= target < self.nstaging:
            raise ValueError(
                f"Route() returned {target} outside staging world of "
                f"{self.nstaging}"
            )
        return target

    def compute_ranks_of(self, staging_rank: int) -> list[int]:
        """Compute ranks served by *staging_rank* under current routing."""
        return [
            r for r in range(self.ncompute) if self.route(r) == staging_rank
        ]

    def request_box(self, staging_rank: int) -> Mailbox:
        """The cross-world request mailbox of one staging rank."""
        box = self._request_boxes.get(staging_rank)
        if box is None:
            box = Mailbox(self.env)
            self._request_boxes[staging_rank] = box
        return box

    # -- stage 1: the write path ------------------------------------------------
    def write_step(self, comm: Communicator, step: OutputStep) -> Generator:
        """Process body: the compute-node side of one I/O dump.

        Returns the visible (blocking) seconds.
        """
        env = self.env
        start = env.now
        node = self.machine.node(comm.node_id)

        # Back-pressure: at most ``max_buffered_steps`` outstanding
        # buffers per process.
        pending = self._pending.setdefault(comm.rank, [])
        pending[:] = [ev for ev in pending if not ev.triggered]
        while len(pending) >= self.max_buffered_steps:
            yield pending[0]
            pending[:] = [ev for ev in pending if not ev.triggered]

        # Stage 1a: Partial_calculate for each operator.
        partials: dict[str, Any] = {}
        t0 = env.now
        for op in self.operators:
            flops = op.partial_flops(step)
            if flops > 0:
                yield from node.compute(flops)
            result = op.partial_calculate(step)
            if result is not None:
                partials[op.name] = result
        self.partial_calc_seconds[comm.rank] = (
            self.partial_calc_seconds.get(comm.rank, 0.0) + env.now - t0
        )

        # Stage 1b: pack into a contiguous FFS buffer (memcpy-bound).
        payload = step.pack()
        pack_time = 2.0 * node.memory_scan_time(step.nbytes_logical)
        if pack_time > 0:
            yield env.timeout(pack_time)
        node.allocate(step.nbytes_logical)
        freed = env.event()
        self._buffers[(comm.rank, step.step)] = _BufferRecord(
            payload=payload,
            logical_nbytes=step.nbytes_logical,
            freed=freed,
            node_id=comm.node_id,
        )
        pending.append(freed)

        # Stage 1c: data-fetch request to the routed staging process.
        target = self.route(comm.rank)
        request = FetchRequest(
            compute_rank=comm.rank,
            compute_node=comm.node_id,
            step=step.step,
            logical_nbytes=step.nbytes_logical,
            partials=partials,
            t_dump_start=start,
        )
        yield from self.machine.network.transfer(
            comm.node_id, self.staging_nodes[target % len(self.staging_nodes)], 256.0
        )
        self.request_box(target).deliver(comm.rank, step.step, request)

        visible = env.now - start
        self.visible_seconds[comm.rank] = (
            self.visible_seconds.get(comm.rank, 0.0) + visible
        )
        return visible

    def skip_step(self, comm: Communicator, step: int) -> Generator:
        """Process body: tell the staging area this rank dumps *step*
        elsewhere (e.g. the adaptive controller chose In-Compute-Node).

        The staging service still matches the step's request round but
        fetches nothing from this process.
        """
        target = self.route(comm.rank)
        yield from self.machine.network.transfer(
            comm.node_id, self.staging_nodes[target % len(self.staging_nodes)], 64.0
        )
        self.request_box(target).deliver(comm.rank, step, None)

    # -- stage 3: RDMA service ----------------------------------------------------
    def serve_fetch(
        self, compute_rank: int, step: int, staging_node: int
    ) -> Generator:
        """Process body (staging side): scheduled RDMA get of one chunk.

        Returns the packed payload bytes; frees the compute-node buffer.
        """
        key = (compute_rank, step)
        rec = self._buffers.pop(key, None)
        if rec is None:
            raise KeyError(f"no buffered chunk for rank {compute_rank} step {step}")
        yield from self.scheduler.wait_clear(rec.node_id)
        wire = self.machine.network.transfer_event(
            rec.node_id, staging_node, rec.logical_nbytes, rdma=True
        )
        if self.fetch_rate_cap is not None:
            pace = self.env.timeout(rec.logical_nbytes / self.fetch_rate_cap)
            yield self.env.all_of([wire, pace])
        else:
            yield wire
        self.machine.node(rec.node_id).free(rec.logical_nbytes)
        rec.freed.succeed()
        return rec.payload

    @property
    def outstanding_buffers(self) -> int:
        return len(self._buffers)


class StagingTransport(IOMethod):
    """ADIOS transport that routes output through the staging area."""

    def __init__(self, client: StagingClient):
        self.client = client
        self.visible_write_seconds = 0.0

    def write_step(self, comm: Communicator, step: OutputStep) -> Generator:
        t = yield from self.client.write_step(comm, step)
        self.visible_write_seconds += t
        return t
