"""Placement advisor: analytic cost models for operator placement.

§V's conclusion — "whenever data is processed in-transit, it is
important to be flexible in where the operators performing such
processing are placed" — and §VII's future work — "automate placement
decisions ... develop performance models for sizing staging areas and
provisioning their services" — motivate this module.

:class:`PlacementAdvisor` predicts, for an operator characterised by a
small :class:`OperatorProfile`, the three §V placements' costs:

- ``incompute`` — everything visible to the simulation;
- ``staging``  — visible time collapses to pack+request, the pipeline
  runs asynchronously; latency includes the movement;
- ``offline``  — the §V.B.3 read-back model.

and recommends a placement for a chosen objective (simulation time vs
result latency — exactly the tradeoff Fig. 7 demonstrates with the
sorting operator).  :meth:`size_staging_area` inverts the staging
model: the smallest staging area whose pipeline fits the I/O interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.placement import OfflineCostModel
from repro.machine.machine import Machine

__all__ = ["OperatorProfile", "PlacementEstimate", "PlacementAdvisor"]


@dataclass(frozen=True)
class OperatorProfile:
    """What the advisor needs to know about an operation.

    flops_per_byte: compute intensity of the Map-side scan.
    membytes_factor: memory traffic of the Reduce per input byte
        (e.g. ~100 for big sorts; ~0 for histograms).
    shuffle_fraction: fraction of the input crossing the shuffle
        (1.0 sort/merge, ~0 histograms).
    output_bytes: bytes written by Finalize (e.g. the 8 MB histogram).
    reduces_data: True when output << input (affects the offline
        model's disk-trip count).
    """

    flops_per_byte: float = 2.0
    membytes_factor: float = 0.0
    shuffle_fraction: float = 1.0
    output_bytes: float = 0.0
    reduces_data: bool = False

    def __post_init__(self) -> None:
        if self.flops_per_byte < 0 or self.membytes_factor < 0:
            raise ValueError("cost factors must be non-negative")
        if not 0.0 <= self.shuffle_fraction <= 1.0:
            raise ValueError("shuffle_fraction must be in [0, 1]")


@dataclass(frozen=True)
class PlacementEstimate:
    """Predicted costs of one placement."""

    placement: str
    visible_seconds: float  # charged to the simulation per dump
    latency_seconds: float  # dump start -> results available
    feasible: bool  # fits inside the I/O interval


class PlacementAdvisor:
    """Analytic placement and sizing advisor for one workload."""

    def __init__(
        self,
        machine: Machine,
        *,
        nprocs: int,
        bytes_per_proc: float,
        io_interval: float,
        staging_procs: int = 0,
        staging_threads: int = 4,
        fetch_rate_cap: Optional[float] = None,
    ):
        if nprocs < 1 or bytes_per_proc <= 0 or io_interval <= 0:
            raise ValueError("bad workload parameters")
        self.machine = machine
        self.nprocs = nprocs
        self.bytes_per_proc = bytes_per_proc
        self.io_interval = io_interval
        self.staging_procs = staging_procs
        self.staging_threads = staging_threads
        self.fetch_rate_cap = fetch_rate_cap
        self.total_bytes = nprocs * bytes_per_proc

    # -- building blocks ---------------------------------------------------
    def _compute_seconds(self, nbytes: float, flops_per_byte: float,
                         cores: int) -> float:
        node = self.machine.spec.node
        return nbytes * flops_per_byte / (node.core_flops * cores)

    def _mem_seconds(self, nbytes: float, factor: float) -> float:
        return nbytes * factor / self.machine.spec.node.memory_bandwidth

    def _shuffle_seconds(self, per_rank_bytes: float, nprocs: int) -> float:
        return self.machine.network.collective_time(
            "alltoall", max(nprocs, 2), per_rank_bytes / max(nprocs, 1)
        )

    def _sync_write_seconds(self, nbytes: float, nclients: int) -> float:
        fs = self.machine.spec.filesystem
        cap = min(fs.aggregate_bandwidth, fs.client_bandwidth * nclients)
        return nbytes / cap + fs.metadata_latency

    # -- placements ------------------------------------------------------------
    def predict_incompute(self, profile: OperatorProfile) -> PlacementEstimate:
        """Cost estimate for running the operator on the compute ranks."""
        per_rank = self.bytes_per_proc
        t = self._compute_seconds(per_rank, profile.flops_per_byte, 1)
        t += self._mem_seconds(per_rank, profile.membytes_factor)
        t += self._shuffle_seconds(
            per_rank * profile.shuffle_fraction, self.nprocs
        )
        if profile.output_bytes:
            fs = self.machine.spec.filesystem
            t += profile.output_bytes / fs.small_write_bandwidth
        # the raw dump itself still goes synchronously to the FS
        t_io = self._sync_write_seconds(self.total_bytes, self.nprocs)
        visible = t + t_io
        return PlacementEstimate(
            "incompute", visible, latency_seconds=t,
            feasible=visible < self.io_interval,
        )

    def predict_staging(
        self, profile: OperatorProfile, staging_procs: Optional[int] = None
    ) -> PlacementEstimate:
        """Cost estimate for the asynchronous staging pipeline."""
        procs = staging_procs or self.staging_procs
        if procs < 1:
            raise ValueError("staging placement needs staging_procs >= 1")
        node = self.machine.spec.node
        per_staging = self.total_bytes / procs
        # visible: pack (two memory passes) + request latency
        visible = (
            2 * self.bytes_per_proc / node.memory_bandwidth
            + self.machine.spec.network.latency * 4
        )
        # movement: paced fetch or NIC-bound
        nic = self.machine.spec.network.link_bandwidth
        rate = min(self.fetch_rate_cap or nic, nic)
        fetch = per_staging / rate
        t_map = self._compute_seconds(
            per_staging, profile.flops_per_byte, self.staging_threads
        )
        t_mem = self._mem_seconds(per_staging, profile.membytes_factor)
        t_shuffle = self._shuffle_seconds(
            per_staging * profile.shuffle_fraction, procs
        )
        t_out = 0.0
        if profile.output_bytes:
            fs = self.machine.spec.filesystem
            t_out = profile.output_bytes / fs.small_write_bandwidth
        latency = max(fetch, t_map) + t_mem + t_shuffle + t_out
        return PlacementEstimate(
            "staging", visible, latency_seconds=latency,
            feasible=latency < self.io_interval,
        )

    def predict_offline(self, profile: OperatorProfile) -> PlacementEstimate:
        """Cost estimate for the post-hoc read-back placement (SSV.B.3)."""
        model = OfflineCostModel(self.machine)
        est = model.estimate(
            self.total_bytes,
            reduces_data=profile.reduces_data,
            flops_per_byte=profile.flops_per_byte,
            output_bytes=profile.output_bytes,
        )
        t_io = self._sync_write_seconds(self.total_bytes, self.nprocs)
        return PlacementEstimate(
            "offline", visible_seconds=t_io,
            latency_seconds=est.latency,
            feasible=est.latency < self.io_interval,
        )

    # -- decisions ---------------------------------------------------------------
    def recommend(
        self, profile: OperatorProfile, objective: str = "simulation_time"
    ) -> PlacementEstimate:
        """Best placement under *objective*.

        ``simulation_time`` minimises visible cost among feasible
        placements (Fig. 7's conclusion for sorting: staging);
        ``latency`` minimises time-to-results (Fig. 7's conclusion
        when sorted data is needed urgently: in-compute).
        """
        options = [
            self.predict_incompute(profile),
            self.predict_offline(profile),
        ]
        if self.staging_procs >= 1:
            options.append(self.predict_staging(profile))
        feasible = [o for o in options if o.feasible] or options
        if objective == "simulation_time":
            return min(feasible, key=lambda o: o.visible_seconds)
        if objective == "latency":
            return min(feasible, key=lambda o: o.latency_seconds)
        raise ValueError(f"unknown objective {objective!r}")

    def size_staging_area(
        self, profile: OperatorProfile, *, headroom: float = 0.5
    ) -> int:
        """Smallest staging-process count whose pipeline latency fits
        ``headroom * io_interval`` (§VII's sizing-model future work).

        Returns the process count; raises if even one process per
        compute process cannot meet the budget.
        """
        if not 0 < headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        budget = headroom * self.io_interval
        lo, hi = 1, max(self.nprocs, 1)
        if self.predict_staging(profile, hi).latency_seconds > budget:
            raise ValueError(
                f"no staging size up to {hi} procs meets the "
                f"{budget:.1f} s budget"
            )
        while lo < hi:
            mid = (lo + hi) // 2
            if self.predict_staging(profile, mid).latency_seconds <= budget:
                hi = mid
            else:
                lo = mid + 1
        return lo
