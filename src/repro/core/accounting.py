"""Vectorized per-rank accounting ledgers.

The hot loops of the simulation used to keep per-rank bookkeeping in
``dict[int, number]`` maps — one hash probe and one boxed number per
update, and tens of megabytes of dict overhead at the paper's
100k-rank weak-scaling regime (§V.B).  :class:`RankLedger` replaces
them with a flat numpy array indexed directly by rank: updates are
O(1) array stores, whole-ledger reductions (totals, fingerprints) are
single vectorized ops, and 100k ranks of float64 cost 800 KB instead
of a multi-megabyte dict.

The ledger keeps the dict surface the call sites were written against
(``get``/``items``/``values``/``keys``/``in``/``len``/indexing), so
``dict(ledger)`` and existing reporting code keep working unchanged.
Ranks are non-negative integers (MPI ranks / node ids); the backing
array grows geometrically to the largest rank touched.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

__all__ = ["RankLedger"]


class RankLedger:
    """Dense per-rank accumulator backed by one contiguous numpy array.

    Parameters
    ----------
    dtype:
        Numpy dtype of the stored values (``float64`` for second
        counters, ``int64`` for depth/occupancy counters).
    capacity:
        Initial number of rank slots; the array doubles on demand.
    """

    __slots__ = ("_vals", "_seen", "_count")

    def __init__(self, dtype: Any = np.float64, capacity: int = 1024):
        n = max(1, int(capacity))
        self._vals = np.zeros(n, dtype=dtype)
        self._seen = np.zeros(n, dtype=bool)
        self._count = 0

    # -- growth ----------------------------------------------------------
    def _ensure(self, rank: int) -> None:
        if rank < 0:
            raise IndexError(f"RankLedger ranks are non-negative, got {rank}")
        n = self._vals.shape[0]
        if rank >= n:
            grown = max(rank + 1, 2 * n)
            vals = np.zeros(grown, dtype=self._vals.dtype)
            vals[:n] = self._vals
            seen = np.zeros(grown, dtype=bool)
            seen[:n] = self._seen
            self._vals, self._seen = vals, seen

    # -- updates ---------------------------------------------------------
    def add(self, rank: int, amount: Any) -> None:
        """Accumulate *amount* into *rank*, marking the rank present."""
        self._ensure(rank)
        if not self._seen[rank]:
            self._seen[rank] = True
            self._count += 1
        self._vals[rank] += amount

    def __setitem__(self, rank: int, value: Any) -> None:
        self._ensure(rank)
        if not self._seen[rank]:
            self._seen[rank] = True
            self._count += 1
        self._vals[rank] = value

    # -- dict surface ----------------------------------------------------
    def get(self, rank: int, default: Any = 0) -> Any:
        """Value recorded for *rank*, or *default* if never touched."""
        if 0 <= rank < self._vals.shape[0] and self._seen[rank]:
            return self._vals[rank].item()
        return default

    def __getitem__(self, rank: int) -> Any:
        if 0 <= rank < self._vals.shape[0] and self._seen[rank]:
            return self._vals[rank].item()
        raise KeyError(rank)

    def __contains__(self, rank: Any) -> bool:
        return (
            isinstance(rank, (int, np.integer))
            and 0 <= rank < self._vals.shape[0]
            and bool(self._seen[rank])
        )

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[int]:
        return iter(self.keys())

    def keys(self) -> list[int]:
        """Ranks touched so far, ascending."""
        return [int(r) for r in np.flatnonzero(self._seen)]

    def values(self) -> list:
        """Values of the touched ranks, in rank order."""
        return [v.item() for v in self._vals[self._seen]]

    def items(self) -> list[tuple[int, Any]]:
        """``(rank, value)`` pairs for the touched ranks, in rank order."""
        return [
            (int(r), self._vals[r].item()) for r in np.flatnonzero(self._seen)
        ]

    def __repr__(self) -> str:
        return f"RankLedger({dict(self.items())!r})"

    # -- vectorized reductions -------------------------------------------
    def total(self) -> Any:
        """Sum over every touched rank (one vectorized reduction)."""
        return self._vals[self._seen].sum().item()

    def dense(self, size: Optional[int] = None) -> np.ndarray:
        """Dense value array indexed by rank (zeros where untouched).

        ``size`` pads/truncates to a fixed rank count, which gives the
        weak-scaling fingerprint a stable byte layout.  Returns a copy.
        """
        n = self._vals.shape[0] if size is None else int(size)
        out = np.zeros(n, dtype=self._vals.dtype)
        m = min(n, self._vals.shape[0])
        out[:m] = np.where(self._seen[:m], self._vals[:m], 0)
        return out
