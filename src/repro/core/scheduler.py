"""Scheduled asynchronous data movement (§IV.A).

Asynchronous RDMA fetches from compute nodes must not overlap the
simulation's collective-communication phases, or the shared NIC slows
the collectives and the main loop inflates (the paper bounds this
interference to <6 % worst case *with* scheduling; §V.B.2).

The :class:`MovementScheduler` tracks, per compute node, whether the
application is inside a communication phase (applications or app
skeletons bracket their collective bursts with
:meth:`enter_comm_phase` / :meth:`exit_comm_phase`; the app models in
:mod:`repro.apps` do this automatically).  Staging-side fetches call
:meth:`wait_clear` before touching a node; with ``enabled=False`` the
scheduler degrades to fetch-immediately, which is the ablation
configuration for the interference experiment.
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from repro.core.accounting import RankLedger
from repro.sim.engine import Engine, Event, Process

__all__ = ["MovementScheduler"]


class MovementScheduler:
    """Phase-aware admission control for staging fetches.

    Parameters
    ----------
    env: simulation engine.
    enabled:
        When False, :meth:`wait_clear` returns immediately
        (unscheduled movement — the ablation baseline).
    max_defer:
        Upper bound in seconds a fetch may be deferred; prevents
        starvation when an application communicates continuously
        (Pixie3D's reduce/bcast-heavy inner loop is exactly such a
        case, §V.C).
    batch_wakeups:
        ``True`` (default): deferred fetches park on a per-node waiter
        heap keyed ``(deadline, seq)``; one timer process per node
        enforces ``max_defer`` for every waiter on that node, and
        :meth:`exit_comm_phase` releases the node's waiters directly —
        O(changed node's waiters) work with no per-waiter
        ``Timeout``/``AnyOf`` allocation per loop turn.  ``False``
        restores the legacy shape (per-waiter deadline timeout and a
        shared clear event re-armed each turn), kept as the reference.
        Both paths defer each fetch for exactly the same simulated
        duration.
    """

    def __init__(
        self,
        env: Engine,
        *,
        enabled: bool = True,
        max_defer: float = 30.0,
        batch_wakeups: bool = True,
    ):
        self.env = env
        self.enabled = enabled
        self.max_defer = max_defer
        self.batch_wakeups = batch_wakeups
        #: per-node comm-phase nesting depth, numpy-backed (100k-node
        #: weak-scaling runs hammer this on every fetch admission)
        self._depth = RankLedger(dtype="int64")
        self._clear_events: dict[int, Event] = {}
        #: per-node waiter heaps [(deadline, seq, event)] (batched path)
        self._waiters: dict[int, list[tuple[float, int, Event]]] = {}
        self._timers: dict[int, Process] = {}
        self._wseq = 0
        self.deferred_fetches = 0
        self.total_defer_seconds = 0.0
        #: extra metric labels (e.g. ``tenant=...`` under the jobs layer)
        self.labels: dict = {}
        #: optional :class:`repro.flow.pressure.PressureController`;
        #: when set, fetches are additionally admitted against the
        #: destination node's buffer-pool occupancy.
        self.pressure = None

    # -- application side ---------------------------------------------------
    def enter_comm_phase(self, node_id: int) -> None:
        """Mark *node_id* as inside a communication phase."""
        self._depth.add(node_id, 1)

    def exit_comm_phase(self, node_id: int) -> None:
        """Mark the end of a communication phase on *node_id*."""
        depth = self._depth.get(node_id, 0)
        if depth <= 0:
            raise RuntimeError(f"exit_comm_phase without enter on node {node_id}")
        depth -= 1
        self._depth.add(node_id, -1)
        if depth == 0:
            ev = self._clear_events.pop(node_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed()
            waiters = self._waiters.get(node_id)
            if waiters:
                # release in (deadline, seq) order — deterministic
                while waiters:
                    _t, _seq, wev = heapq.heappop(waiters)
                    if not wev.triggered:
                        wev.succeed("clear")

    def in_comm_phase(self, node_id: int) -> bool:
        """True while *node_id* is inside a communication phase."""
        return self._depth.get(node_id, 0) > 0

    # -- staging side ---------------------------------------------------------
    def wait_clear(
        self,
        node_id: int,
        *,
        dst_node: Optional[int] = None,
        nbytes: float = 0.0,
    ) -> Generator:
        """Process body: wait until *node_id* leaves its comm phase.

        ``dst_node``/``nbytes`` describe the fetch destination; when a
        :class:`~repro.flow.pressure.PressureController` is attached
        the fetch is additionally admitted (held or rate-shaped)
        against that node's buffer-pool occupancy.  Returns the total
        seconds the movement was delayed (0.0 when it proceeds
        immediately).
        """
        deferred = 0.0
        forced = False
        if self.enabled and self.in_comm_phase(node_id):
            start = self.env.now
            self.deferred_fetches += 1
            if self.batch_wakeups:
                forced = yield from self._wait_batched(node_id, start + self.max_defer)
            else:
                deadline = self.env.timeout(self.max_defer)
                while self.in_comm_phase(node_id):
                    ev = self._clear_events.get(node_id)
                    if ev is None or ev.triggered:
                        ev = self.env.event()
                        self._clear_events[node_id] = ev
                    fired = yield self.env.any_of([ev, deadline])
                    if deadline in fired:
                        forced = True
                        break  # anti-starvation: proceed despite the phase
            deferred = self.env.now - start
            self.total_defer_seconds += deferred
            obs = self.env.obs
            if obs is not None and deferred > 0:
                obs.span(
                    "scheduler_defer", "scheduler", start,
                    tid=f"node{node_id}", node=node_id,
                )
                obs.metrics.inc("scheduler_defers", node=node_id, **self.labels)
                obs.metrics.inc(
                    "scheduler_defer_seconds", deferred, node=node_id, **self.labels
                )
        in_phase = self.enabled and self.in_comm_phase(node_id)
        if self.pressure is not None and dst_node is not None:
            deferred += yield from self.pressure.admit(dst_node, nbytes)
        if self.env.check is not None:
            self.env.check.on_movement_admitted(
                node_id, in_phase=in_phase, forced=forced
            )
        return deferred

    # -- batched waiter machinery -----------------------------------------
    def _wait_batched(self, node_id: int, deadline_t: float) -> Generator:
        """Park on *node_id*'s waiter heap until clear or *deadline_t*.

        Returns True when the deadline forced the movement through.
        Re-entry at the release timestamp keeps the waiter's original
        deadline, matching the legacy loop turn for turn.
        """
        while self.in_comm_phase(node_id):
            ev = self.env.event()
            self._wseq += 1
            heapq.heappush(
                self._waiters.setdefault(node_id, []),
                (deadline_t, self._wseq, ev),
            )
            self._ensure_timer(node_id)
            value = yield ev
            if value == "forced":
                return True
        return False

    def _ensure_timer(self, node_id: int) -> None:
        proc = self._timers.get(node_id)
        if proc is None or proc.is_alive is False:
            self._timers[node_id] = self.env.process(
                self._timer_body(node_id), name=f"sched-timer-{node_id}"
            )

    def _timer_body(self, node_id: int) -> Generator:
        """One deadline clock for all of *node_id*'s parked waiters."""
        waiters = self._waiters.setdefault(node_id, [])
        while waiters:
            t = waiters[0][0]
            if t > self.env.now:
                yield self.env.timeout(t - self.env.now)
            while waiters and waiters[0][0] <= self.env.now:
                _t, _seq, ev = heapq.heappop(waiters)
                if not ev.triggered:
                    ev.succeed("forced")
