"""Adaptive operator placement (§VII future work #2).

"Second, we are going to investigate mechanisms for dynamically
adapting system configuration and operation placement to cope with
changing resource availability or performance characteristics."

:class:`AdaptivePlacement` is a per-dump controller: the application
asks it, before every dump, which placement to use, and reports the
measured outcome afterwards.  The policy:

- start from the :class:`~repro.core.advisor.PlacementAdvisor`'s
  static recommendation;
- **demote staging -> in-compute** when the measured staging-pipeline
  latency exceeds the latency budget (results arriving too late for
  their consumer) for ``patience`` consecutive dumps;
- **promote in-compute -> staging** when the measured visible cost of
  in-compute execution exceeds its budget (the simulation is being
  slowed too much) for ``patience`` consecutive dumps;
- never flap faster than ``patience`` allows.

The controller is transport-agnostic: it only sees measurements, so it
reacts identically to file-system weather, staging overload, or
operator cost drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PlacementBudget", "PlacementDecision", "AdaptivePlacement"]


@dataclass(frozen=True)
class PlacementBudget:
    """What the user is willing to pay, per dump."""

    max_visible_seconds: float  # simulation-side budget
    max_latency_seconds: float  # time-to-results budget

    def __post_init__(self) -> None:
        if self.max_visible_seconds <= 0 or self.max_latency_seconds <= 0:
            raise ValueError("budgets must be positive")


@dataclass
class PlacementDecision:
    """One dump's decision and (later) its measured outcome."""

    step: int
    placement: str
    reason: str
    visible_seconds: Optional[float] = None
    latency_seconds: Optional[float] = None
    violated: Optional[bool] = None


class AdaptivePlacement:
    """Per-dump placement controller."""

    def __init__(
        self,
        budget: PlacementBudget,
        *,
        initial: str = "staging",
        patience: int = 2,
    ):
        if initial not in ("staging", "incompute"):
            raise ValueError(f"bad initial placement {initial!r}")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.budget = budget
        self.current = initial
        self.patience = patience
        self.history: list[PlacementDecision] = []
        self._violations = 0
        self.switches = 0

    # -- the control loop --------------------------------------------------
    def decide(self, step: int) -> PlacementDecision:
        """Placement for dump *step* (call before writing)."""
        decision = PlacementDecision(
            step=step,
            placement=self.current,
            reason=(
                "initial"
                if not self.history
                else f"{self._violations} recent budget violations"
            ),
        )
        self.history.append(decision)
        return decision

    def report(
        self, step: int, *, visible_seconds: float, latency_seconds: float
    ) -> None:
        """Measured outcome of dump *step* (call after completion)."""
        decision = next(
            (d for d in reversed(self.history) if d.step == step), None
        )
        if decision is None:
            raise KeyError(f"no decision recorded for step {step}")
        decision.visible_seconds = visible_seconds
        decision.latency_seconds = latency_seconds
        if decision.placement == "staging":
            violated = latency_seconds > self.budget.max_latency_seconds
        else:
            violated = visible_seconds > self.budget.max_visible_seconds
        decision.violated = violated
        if violated:
            self._violations += 1
            if self._violations >= self.patience:
                self._switch()
        else:
            self._violations = 0

    def _switch(self) -> None:
        self.current = (
            "incompute" if self.current == "staging" else "staging"
        )
        self._violations = 0
        self.switches += 1

    # -- reporting -------------------------------------------------------------
    def violation_rate(self) -> float:
        """Fraction of completed dumps that missed their budget."""
        done = [d for d in self.history if d.violated is not None]
        if not done:
            return 0.0
        return sum(1 for d in done if d.violated) / len(done)
