"""The :class:`PreDatA` facade: wiring client, scheduler and service.

Assembles the full Staging configuration on a
:class:`~repro.machine.Machine`:

- a staging :class:`~repro.mpi.World` (``procs_per_staging_node`` MPI
  processes per staging node, each with ``threads_per_process`` worker
  threads — the paper's 2x4 layout);
- the compute-node :class:`~repro.core.client.StagingClient` and its
  :class:`~repro.core.client.StagingTransport` (the ADIOS method the
  application writes through);
- the :class:`~repro.core.scheduler.MovementScheduler`;
- the :class:`~repro.core.staging.StagingService` running the
  Initialize/Map/Shuffle/Reduce/Finalize pipeline.

Typical use::

    predata = PreDatA(env, machine, group, operators,
                      ncompute_procs=64, nsteps=3, volume_scale=100.0)
    predata.start()
    # ... application writes via predata.transport ...
    yield from predata.drain()
    report = predata.service.step_report(0)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.adios.group import GroupDef
from repro.adios.io import IOMethod, SyncMPIIO
from repro.core.client import StagingClient, StagingTransport
from repro.core.operator import PreDatAOperator
from repro.core.scheduler import MovementScheduler
from repro.core.staging import StagingConfig, StagingService
from repro.faults.config import ResilienceConfig
from repro.faults.recovery import ResilienceController
from repro.flow import FlowConfig, FlowControl
from repro.machine.machine import Machine
from repro.mpi.world import World
from repro.sim.engine import Engine

__all__ = ["PreDatA"]


class PreDatA:
    """One PreDatA deployment: staging area + compute-side runtime."""

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        group: GroupDef,
        operators: list[PreDatAOperator],
        *,
        ncompute_procs: int,
        nsteps: int = 1,
        procs_per_staging_node: int = 2,
        threads_per_process: int = 4,
        volume_scale: float = 1.0,
        scheduled_movement: bool = True,
        max_buffered_steps: int = 2,
        fetch_pipeline_depth: int = 2,
        fetch_rate_cap: Optional[float] = None,
        route: Optional[Callable[[int, int, int], int]] = None,
        model_size: Optional[int] = None,
        chunk_order: Optional[Callable] = None,
        resilience: Optional[ResilienceConfig] = None,
        fallback_io: Optional[IOMethod] = None,
        flow: Optional[FlowConfig | FlowControl] = None,
        tenant: Optional[str] = None,
    ):
        """``resilience`` enables the failure detection/recovery protocol
        (heartbeats, commit barrier, failover routing, degradation);
        ``fallback_io`` is the synchronous transport degraded writes use
        (default: a fresh ``SyncMPIIO`` on the machine's file system).
        ``flow`` enables the flow-control subsystem (credit-based
        admission, per-staging-node buffer pools with spill-to-FS,
        pressure-aware fetch throttling); None — the default — keeps
        the pre-flow pipeline byte-identical.  A prebuilt
        :class:`~repro.flow.FlowControl` (rather than a config) is
        adopted as-is — the jobs layer shares one tenant-carved flow
        object across several deployments this way.

        ``tenant`` names this deployment's job under the multi-tenant
        layer: chunk keys handed to shared flow/check state become
        tenant-qualified and observability is scoped per tenant (see
        :class:`~repro.core.client.StagingClient`)."""
        if machine.n_staging_nodes < 1:
            raise ValueError("machine has no staging nodes allocated")
        if ncompute_procs < 1:
            raise ValueError("need at least one compute process")
        self.env = env
        self.machine = machine
        self.group = group
        self.operators = list(operators)

        staging_rank_nodes = [
            node_id
            for node_id in machine.staging_node_ids
            for _ in range(procs_per_staging_node)
        ]
        self.staging_world = World(
            env,
            machine.network,
            staging_rank_nodes,
            name="staging",
            node_lookup=machine.node,
            wire_scale=volume_scale,
            model_size=model_size,
        )
        self.scheduler = MovementScheduler(env, enabled=scheduled_movement)
        self.client = StagingClient(
            env,
            machine,
            self.operators,
            ncompute=ncompute_procs,
            nstaging=self.staging_world.size,
            staging_nodes=staging_rank_nodes,
            scheduler=self.scheduler,
            route=route,
            max_buffered_steps=max_buffered_steps,
            fetch_rate_cap=fetch_rate_cap,
            resilient=resilience is not None,
            tenant=tenant,
        )
        self.flow: Optional[FlowControl] = None
        if isinstance(flow, FlowControl):
            self.flow = flow
        elif flow is not None:
            self.flow = FlowControl(
                env,
                machine,
                flow,
                staging_rank_nodes=staging_rank_nodes,
                fetch_rate_cap=fetch_rate_cap,
            )
        if self.flow is not None:
            self.client.flow = self.flow
            self.scheduler.pressure = self.flow.pressure
        self.fallback_io: Optional[IOMethod] = fallback_io
        if self.fallback_io is None and (
            resilience is not None
            or (self.flow is not None and self.flow.config.codel_target is not None)
        ):
            # CoDel-degraded writes need a synchronous path to land on
            self.fallback_io = SyncMPIIO(machine.filesystem)
        self.transport = StagingTransport(self.client, fallback=self.fallback_io)
        self.service = StagingService(
            env,
            machine,
            self.staging_world,
            self.client,
            group,
            self.operators,
            StagingConfig(
                threads_per_process=threads_per_process,
                fetch_pipeline_depth=fetch_pipeline_depth,
                nsteps=nsteps,
                chunk_order=chunk_order,
                resilience=resilience,
            ),
        )
        self.controller: Optional[ResilienceController] = None
        if resilience is not None:
            self.controller = ResilienceController(
                env, machine, self.service, resilience, fallback=self.fallback_io
            )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Launch the staging-area program (separate 'MPI job')."""
        self.service.start()
        if self.controller is not None:
            self.controller.arm()

    def drain(self, timeout: Optional[float] = None):
        """Process body: wait for the staging area to finish all steps."""
        yield from self.service.drain(timeout)

    # -- convenience ------------------------------------------------------------
    @property
    def nstaging_procs(self) -> int:
        return self.staging_world.size

    def staging_core_ratio(self) -> float:
        """Compute cores per staging core actually configured."""
        return self.machine.staging_ratio()
