"""FFS-style self-describing binary encoding.

Stands in for the FFS (Fast/Flexible binary data Format) facility
[Eisenhauer et al., TPDS 2002] that PreDatA uses to pack each compute
process's output into one contiguous *packed partial data chunk* with
embedded metadata (§IV.B, Stage 1b).

A :class:`~repro.ffs.schema.Schema` declares typed fields (scalars and
n-D arrays); :func:`~repro.ffs.encode.encode` packs a value dict into a
single ``bytes`` buffer whose header carries the schema, per-field
shapes and user attributes; :func:`~repro.ffs.encode.decode` recovers
everything without any out-of-band information, and
:func:`~repro.ffs.encode.peek` reads the metadata without touching the
payload — the property PreDatA staging operators rely on to route and
schedule chunks cheaply before processing them.
"""

from repro.ffs.schema import Field, Schema, SchemaError
from repro.ffs.encode import PackBuffer, decode, encode, encode_into, peek

__all__ = [
    "Field",
    "PackBuffer",
    "Schema",
    "SchemaError",
    "decode",
    "encode",
    "encode_into",
    "peek",
]
