"""Typed record schemas for FFS encoding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["SchemaError", "Field", "Schema"]


class SchemaError(ValueError):
    """Schema definition or value/schema mismatch error."""


_ALLOWED_KINDS = {"b", "i", "u", "f", "c"}  # bool, int, uint, float, complex


@dataclass(frozen=True)
class Field:
    """One named field of a record.

    Parameters
    ----------
    name: field name (unique within a schema).
    dtype: numpy dtype string (e.g. ``"float64"``, ``"int32"``).
    shape:
        ``None`` for a scalar; a tuple for a fixed-shape array; entries
        of ``-1`` mark dimensions whose extent varies per record (the
        actual extent is recorded in each encoded buffer's header).
    """

    name: str
    dtype: str
    shape: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid field name {self.name!r}")
        try:
            dt = np.dtype(self.dtype)
        except TypeError as exc:
            raise SchemaError(f"invalid dtype {self.dtype!r}") from exc
        if dt.kind not in _ALLOWED_KINDS:
            raise SchemaError(
                f"field {self.name!r}: dtype kind {dt.kind!r} not encodable"
            )
        object.__setattr__(self, "dtype", dt.str)  # canonicalise
        if self.shape is not None:
            shape = tuple(int(s) for s in self.shape)
            for s in shape:
                if s < -1 or s == 0:
                    raise SchemaError(
                        f"field {self.name!r}: bad dimension {s} in {shape}"
                    )
            object.__setattr__(self, "shape", shape)

    @property
    def is_scalar(self) -> bool:
        return self.shape is None

    @property
    def is_variable(self) -> bool:
        return self.shape is not None and any(s == -1 for s in self.shape)

    def resolve_shape(self, value: np.ndarray) -> tuple[int, ...]:
        """Concrete shape of *value*, validated against the declaration."""
        if self.shape is None:
            raise SchemaError(f"field {self.name!r} is a scalar")
        actual = tuple(int(s) for s in np.asarray(value).shape)
        if len(actual) != len(self.shape):
            raise SchemaError(
                f"field {self.name!r}: rank {len(actual)} != declared "
                f"{len(self.shape)}"
            )
        for decl, act in zip(self.shape, actual):
            if decl != -1 and decl != act:
                raise SchemaError(
                    f"field {self.name!r}: extent {act} != declared {decl}"
                )
        return actual

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape) if self.shape is not None else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Field":
        shape = d.get("shape")
        return cls(
            d["name"], d["dtype"], tuple(shape) if shape is not None else None
        )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of fields describing one record type."""

    name: str
    fields: tuple[Field, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("schema needs a name")
        flds = tuple(self.fields)
        names = [f.name for f in flds]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema {self.name!r}")
        object.__setattr__(self, "fields", flds)

    def field_by_name(self, name: str) -> Field:
        """The field named *name* (SchemaError if absent)."""
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"schema {self.name!r} has no field {name!r}")

    @property
    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def validate(self, values: dict) -> None:
        """Check that *values* exactly covers the schema's fields."""
        missing = set(self.field_names) - set(values)
        extra = set(values) - set(self.field_names)
        if missing:
            raise SchemaError(f"missing fields: {sorted(missing)}")
        if extra:
            raise SchemaError(f"unknown fields: {sorted(extra)}")

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "fields": [f.to_dict() for f in self.fields]}

    @classmethod
    def from_dict(cls, d: dict) -> "Schema":
        return cls(d["name"], tuple(Field.from_dict(f) for f in d["fields"]))

    @classmethod
    def of(cls, name: str, **field_specs) -> "Schema":
        """Shorthand: ``Schema.of("s", x="float64", arr=("int32", (-1,)))``."""
        fields = []
        for fname, spec in field_specs.items():
            if isinstance(spec, str):
                fields.append(Field(fname, spec))
            else:
                dtype, shape = spec
                fields.append(Field(fname, dtype, tuple(shape)))
        return cls(name, tuple(fields))
