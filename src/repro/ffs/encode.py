"""Binary encode/decode of schema'd records.

Wire layout of a packed buffer::

    bytes 0..3    magic b"FFS1"
    bytes 4..7    header length H (little-endian uint32)
    bytes 8..8+H  header: UTF-8 JSON
                  {"schema": {...}, "shapes": {field: [..]},
                   "attrs": {...}}
    then          per-array-field payload, in schema order, each
                  aligned to 8 bytes from the start of the payload
                  section; scalars live in the header ("scalars").

Packing is zero-copy on the array side: each field is written straight
from the source array's buffer into the destination through
``memoryview`` slices — no intermediate ``tobytes()`` materialisation.
Arrays that are not C-contiguous (Fortran order, negative or gapped
strides) are copy-normalised first; packing their raw buffers would
serialise garbage strides.

Two entry points share the assembly code:

- :func:`encode` packs into a fresh buffer and returns immutable
  ``bytes`` — the safe default.
- :func:`encode_into` packs into a caller-owned :class:`PackBuffer`
  (a capacity-doubling scratch that amortises allocation across steps)
  and returns a read-only ``memoryview`` *borrowing* the scratch.  The
  caller must not reuse the scratch while the view (or arrays decoded
  from it) is live — this is the buffer-donation fast path the
  compute-side client uses, recycling each scratch only after the
  staging area commits the step.

Decoding is zero-copy for arrays (``np.frombuffer`` views over the
original buffer, ``bytes``/``bytearray``/``memoryview`` alike);
callers that need writable arrays copy explicitly.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Union

import numpy as np

from repro.ffs.schema import Schema, SchemaError

__all__ = ["PackBuffer", "encode", "encode_into", "decode", "peek"]

MAGIC = b"FFS1"
_ALIGN = 8

Buffer = Union[bytes, bytearray, memoryview]


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class PackBuffer:
    """Capacity-doubling scratch buffer for zero-copy FFS packing.

    One ``PackBuffer`` amortises packing allocations across I/O steps:
    it grows geometrically to the largest chunk it has ever packed and
    is then reused allocation-free.  Growth swaps in a fresh bytearray
    (old contents are scratch), so previously exported memoryviews stay
    valid against the buffer they were packed into.
    """

    __slots__ = ("_buf", "grows")

    def __init__(self, capacity: int = 1 << 12):
        self._buf = bytearray(max(int(capacity), 64))
        #: number of capacity doublings (observability for benchmarks)
        self.grows = 0

    @property
    def capacity(self) -> int:
        return len(self._buf)

    def reserve(self, nbytes: int) -> memoryview:
        """A writable view of at least *nbytes* bytes."""
        cap = len(self._buf)
        if cap < nbytes:
            while cap < nbytes:
                cap *= 2
            self._buf = bytearray(cap)
            self.grows += 1
        return memoryview(self._buf)


def _wire_array(v: Any, dtype: np.dtype) -> np.ndarray:
    """Array as it goes on the wire: requested dtype, C-contiguous.

    Non-C-contiguous inputs (Fortran order, sliced/negative strides)
    are copy-normalised here — packing their underlying buffers
    verbatim would emit stride garbage that decodes to wrong values.
    """
    arr = np.asarray(v, dtype=dtype)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return arr


def _prepare(
    schema: Schema, values: dict, attrs: Optional[dict]
) -> tuple[bytes, list[tuple[int, np.ndarray]], int]:
    """Validate and lay out one record.

    Returns ``(header_bytes, [(payload_offset, array), ...], total)``
    where *total* is the full packed size in bytes.
    """
    schema.validate(values)
    shapes: dict[str, list[int]] = {}
    scalars: dict[str, Any] = {}
    arrays: list[tuple[str, np.ndarray]] = []
    for f in schema.fields:
        v = values[f.name]
        if f.is_scalar:
            arr = np.asarray(v, dtype=np.dtype(f.dtype))
            if arr.shape != ():
                raise SchemaError(f"field {f.name!r} expects a scalar")
            scalars[f.name] = arr.item()
        else:
            arr = _wire_array(v, np.dtype(f.dtype))
            shapes[f.name] = list(f.resolve_shape(arr))
            arrays.append((f.name, arr))
    header = {
        "schema": schema.to_dict(),
        "shapes": shapes,
        "scalars": _jsonify_scalars(scalars),
        "attrs": attrs or {},
    }
    hbytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    offset = 0
    placements = []
    for _name, arr in arrays:
        offset = _align(offset)
        placements.append((offset, arr))
        offset += arr.nbytes
    total = 8 + len(hbytes) + _align(offset)
    return hbytes, placements, total


def _assemble(
    out: memoryview, hbytes: bytes, placements: list[tuple[int, np.ndarray]], total: int
) -> None:
    """Write one packed record into *out* (first *total* bytes).

    Every byte in ``[0, total)`` is written — alignment gaps and the
    trailing pad are zeroed — so a reused scratch produces output
    byte-identical to a fresh buffer.
    """
    out[0:4] = MAGIC
    out[4:8] = len(hbytes).to_bytes(4, "little")
    out[8 : 8 + len(hbytes)] = hbytes
    payload_base = 8 + len(hbytes)
    cursor = payload_base
    for pos, arr in placements:
        start = payload_base + pos
        if start > cursor:  # alignment gap
            out[cursor:start] = bytes(start - cursor)
        if arr.nbytes:
            out[start : start + arr.nbytes] = memoryview(arr).cast("B")
        cursor = start + arr.nbytes
    if total > cursor:  # trailing pad
        out[cursor:total] = bytes(total - cursor)


def encode(schema: Schema, values: dict, attrs: Optional[dict] = None) -> bytes:
    """Pack *values* (field name -> scalar / ndarray) into one buffer.

    ``attrs`` is a small JSON-serialisable metadata dict carried in the
    header — PreDatA uses it for things like the producing rank, the
    I/O step number, and global-array offsets.
    """
    hbytes, placements, total = _prepare(schema, values, attrs)
    out = bytearray(total)
    _assemble(memoryview(out), hbytes, placements, total)
    return bytes(out)


def encode_into(
    schema: Schema,
    values: dict,
    scratch: PackBuffer,
    attrs: Optional[dict] = None,
) -> memoryview:
    """Pack into *scratch*; return a read-only view of the packed bytes.

    The view (and anything decoded from it) borrows the scratch: the
    caller must not pack into the same :class:`PackBuffer` again until
    it is done with the previous chunk.  Output bytes are identical to
    :func:`encode` on the same inputs.
    """
    hbytes, placements, total = _prepare(schema, values, attrs)
    out = scratch.reserve(total)
    _assemble(out, hbytes, placements, total)
    return out[:total].toreadonly()


def _jsonify_scalars(scalars: dict) -> dict:
    """JSON-safe scalar representation (complex -> [re, im])."""
    out = {}
    for k, v in scalars.items():
        if isinstance(v, complex):
            out[k] = {"__complex__": [v.real, v.imag]}
        elif isinstance(v, float) and not np.isfinite(v):
            out[k] = {"__float__": repr(v)}
        else:
            out[k] = v
    return out


def _unjsonify_scalar(v: Any) -> Any:
    if isinstance(v, dict):
        if "__complex__" in v:
            re, im = v["__complex__"]
            return complex(re, im)
        if "__float__" in v:
            return float(v["__float__"])
    return v


def _parse_header(buf: Buffer) -> tuple[dict, int]:
    if len(buf) < 8 or bytes(buf[0:4]) != MAGIC:
        raise SchemaError("not an FFS buffer (bad magic)")
    hlen = int.from_bytes(bytes(buf[4:8]), "little")
    if 8 + hlen > len(buf):
        raise SchemaError("truncated FFS buffer header")
    header = json.loads(bytes(buf[8 : 8 + hlen]).decode("utf-8"))
    return header, 8 + hlen


def peek(buf: Buffer) -> dict:
    """Return metadata (schema dict, shapes, scalars, attrs) only.

    Does not touch the array payload — O(header) work regardless of
    chunk size, which is what lets staging nodes route and schedule
    chunks before paying to process them.
    """
    header, _ = _parse_header(buf)
    header = dict(header)
    header["scalars"] = {
        k: _unjsonify_scalar(v) for k, v in header.get("scalars", {}).items()
    }
    return header


def decode(buf: Buffer) -> tuple[Schema, dict, dict]:
    """Unpack an FFS buffer (``bytes``, ``bytearray`` or ``memoryview``).

    Returns ``(schema, values, attrs)``.  Array values are read-only
    views into *buf* (zero copy), whatever the buffer's own mutability.
    """
    header, payload_base = _parse_header(buf)
    schema = Schema.from_dict(header["schema"])
    shapes = header["shapes"]
    values: dict[str, Any] = {
        k: _unjsonify_scalar(v) for k, v in header.get("scalars", {}).items()
    }
    offset = 0
    for f in schema.fields:
        if f.is_scalar:
            continue
        shape = tuple(shapes[f.name])
        dt = np.dtype(f.dtype)
        count = int(np.prod(shape)) if shape else 1
        offset = _align(offset)
        start = payload_base + offset
        arr = np.frombuffer(buf, dtype=dt, count=count, offset=start)
        if arr.flags.writeable:
            arr.flags.writeable = False
        values[f.name] = arr.reshape(shape)
        offset += count * dt.itemsize
    return schema, values, header.get("attrs", {})
