"""Binary encode/decode of schema'd records.

Wire layout of a packed buffer::

    bytes 0..3    magic b"FFS1"
    bytes 4..7    header length H (little-endian uint32)
    bytes 8..8+H  header: UTF-8 JSON
                  {"schema": {...}, "shapes": {field: [..]},
                   "attrs": {...}}
    then          per-array-field payload, in schema order, each
                  aligned to 8 bytes from the start of the payload
                  section; scalars live in the header ("scalars").

Decoding is zero-copy for arrays (``np.frombuffer`` views over the
original buffer); callers that need writable arrays copy explicitly.
"""

from __future__ import annotations

import json
from typing import Any, Optional

import numpy as np

from repro.ffs.schema import Schema, SchemaError

__all__ = ["encode", "decode", "peek"]

MAGIC = b"FFS1"
_ALIGN = 8


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def encode(
    schema: Schema, values: dict, attrs: Optional[dict] = None
) -> bytes:
    """Pack *values* (field name -> scalar / ndarray) into one buffer.

    ``attrs`` is a small JSON-serialisable metadata dict carried in the
    header — PreDatA uses it for things like the producing rank, the
    I/O step number, and global-array offsets.
    """
    schema.validate(values)
    shapes: dict[str, list[int]] = {}
    scalars: dict[str, Any] = {}
    arrays: list[tuple[str, np.ndarray]] = []
    for f in schema.fields:
        v = values[f.name]
        if f.is_scalar:
            arr = np.asarray(v, dtype=np.dtype(f.dtype))
            if arr.shape != ():
                raise SchemaError(f"field {f.name!r} expects a scalar")
            scalars[f.name] = arr.item()
        else:
            arr = np.ascontiguousarray(v, dtype=np.dtype(f.dtype))
            shapes[f.name] = list(f.resolve_shape(arr))
            arrays.append((f.name, arr))
    header = {
        "schema": schema.to_dict(),
        "shapes": shapes,
        "scalars": _jsonify_scalars(scalars),
        "attrs": attrs or {},
    }
    hbytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    offset = 0
    placements = []
    for name, arr in arrays:
        offset = _align(offset)
        placements.append(offset)
        offset += arr.nbytes
    out = bytearray(8 + len(hbytes) + _align(offset))
    out[0:4] = MAGIC
    out[4:8] = np.uint32(len(hbytes)).tobytes()
    out[8 : 8 + len(hbytes)] = hbytes
    payload_base = 8 + len(hbytes)
    for (name, arr), pos in zip(arrays, placements):
        start = payload_base + pos
        out[start : start + arr.nbytes] = arr.tobytes()
    return bytes(out)


def _jsonify_scalars(scalars: dict) -> dict:
    """JSON-safe scalar representation (complex -> [re, im])."""
    out = {}
    for k, v in scalars.items():
        if isinstance(v, complex):
            out[k] = {"__complex__": [v.real, v.imag]}
        elif isinstance(v, float) and not np.isfinite(v):
            out[k] = {"__float__": repr(v)}
        else:
            out[k] = v
    return out


def _unjsonify_scalar(v: Any) -> Any:
    if isinstance(v, dict):
        if "__complex__" in v:
            re, im = v["__complex__"]
            return complex(re, im)
        if "__float__" in v:
            return float(v["__float__"])
    return v


def _parse_header(buf: bytes) -> tuple[dict, int]:
    if len(buf) < 8 or bytes(buf[0:4]) != MAGIC:
        raise SchemaError("not an FFS buffer (bad magic)")
    hlen = int(np.frombuffer(buf, dtype=np.uint32, count=1, offset=4)[0])
    if 8 + hlen > len(buf):
        raise SchemaError("truncated FFS buffer header")
    header = json.loads(bytes(buf[8 : 8 + hlen]).decode("utf-8"))
    return header, 8 + hlen


def peek(buf: bytes) -> dict:
    """Return metadata (schema dict, shapes, scalars, attrs) only.

    Does not touch the array payload — O(header) work regardless of
    chunk size, which is what lets staging nodes route and schedule
    chunks before paying to process them.
    """
    header, _ = _parse_header(buf)
    header = dict(header)
    header["scalars"] = {
        k: _unjsonify_scalar(v) for k, v in header.get("scalars", {}).items()
    }
    return header


def decode(buf: bytes) -> tuple[Schema, dict, dict]:
    """Unpack an FFS buffer.

    Returns ``(schema, values, attrs)``.  Array values are read-only
    views into *buf* (zero copy).
    """
    header, payload_base = _parse_header(buf)
    schema = Schema.from_dict(header["schema"])
    shapes = header["shapes"]
    values: dict[str, Any] = {
        k: _unjsonify_scalar(v) for k, v in header.get("scalars", {}).items()
    }
    offset = 0
    for f in schema.fields:
        if f.is_scalar:
            continue
        shape = tuple(shapes[f.name])
        dt = np.dtype(f.dtype)
        count = int(np.prod(shape)) if shape else 1
        offset = _align(offset)
        start = payload_base + offset
        arr = np.frombuffer(buf, dtype=dt, count=count, offset=start)
        values[f.name] = arr.reshape(shape)
        offset += count * dt.itemsize
    return schema, values, header.get("attrs", {})
