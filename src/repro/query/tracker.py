"""Particle tracking across output steps (§II.A, task 1).

GTC users track a million-particle subset out of billions across many
iterations, "requiring searching among the hundreds of 260 GB output
files by the particle label.  To expedite this operation, particles
can be (and for our example are) sorted by their labels before
searching."

:class:`SortedStepStore` holds one step's particle buckets as produced
by the staging area's sample sort (bucket *i*'s keys all precede
bucket *i+1*'s).  Lookups binary-search the bucket boundaries, then
binary-search within one bucket — O(log n) per label.  The same store
can be built *unsorted* (raw migrated output), in which case every
lookup scans, which is what makes the work-counter contrast the
paper's argument in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["SortedStepStore", "ParticleTracker", "TrackResult"]


class SortedStepStore:
    """One output step's particle buckets, queryable by key column.

    Parameters
    ----------
    buckets: per-reducer row blocks (2-D arrays).  When ``sorted_=True``
        they must be globally ordered (each internally sorted, bucket
        boundaries non-overlapping) — exactly the sample-sort output.
    key_column: the label column.
    """

    def __init__(
        self,
        buckets: Sequence[np.ndarray],
        key_column: int,
        *,
        sorted_: bool = True,
    ):
        self.key_column = key_column
        self.sorted = sorted_
        self.buckets = [
            np.atleast_2d(np.asarray(b)) for b in buckets if len(b)
        ]
        self.rows_examined = 0  # work counter across all lookups
        if sorted_:
            self._validate_order()
            self._bucket_mins = np.array(
                [b[:, key_column][0] for b in self.buckets]
            )

    def _validate_order(self) -> None:
        prev_max = -np.inf
        for i, b in enumerate(self.buckets):
            keys = b[:, self.key_column]
            if np.any(np.diff(keys) < 0):
                raise ValueError(f"bucket {i} is not internally sorted")
            if keys.size and keys[0] < prev_max:
                raise ValueError(
                    f"bucket {i} overlaps its predecessor's key range"
                )
            if keys.size:
                prev_max = keys[-1]

    @property
    def total_rows(self) -> int:
        return sum(b.shape[0] for b in self.buckets)

    def find(self, label) -> Optional[np.ndarray]:
        """Return the row with *label*, or None.

        The label is compared against the key column in the buckets'
        own dtype — it is never coerced through ``float``, so int64
        labels >= 2**53 (beyond float64's exact-integer range) match
        exactly instead of colliding with their neighbours.
        """
        if self.sorted:
            if not self.buckets:
                return None
            # locate the candidate bucket, then binary search within
            idx = int(
                np.searchsorted(self._bucket_mins, label, side="right") - 1
            )
            for b in self.buckets[max(idx, 0) : idx + 2]:
                keys = b[:, self.key_column]
                j = int(np.searchsorted(keys, label))
                self.rows_examined += int(np.ceil(np.log2(max(keys.size, 2))))
                if j < keys.size and keys[j] == label:
                    return b[j]
            return None
        # unsorted: scan
        for b in self.buckets:
            keys = b[:, self.key_column]
            self.rows_examined += keys.size
            hits = np.nonzero(keys == label)[0]
            if hits.size:
                return b[hits[0]]
        return None


@dataclass
class TrackResult:
    """Trajectory of the tracked labels across steps."""

    labels: np.ndarray
    #: label -> list of per-step rows (None where the label was absent)
    trajectories: dict = field(default_factory=dict)
    rows_examined: int = 0
    steps_searched: int = 0

    def positions(self, label) -> np.ndarray:
        """(nsteps, 3) coordinates of one particle (NaN where absent)."""
        rows = self.trajectories[label]
        out = np.full((len(rows), 3), np.nan)
        for i, row in enumerate(rows):
            if row is not None:
                out[i] = row[:3]
        return out


class ParticleTracker:
    """Tracks labelled particles across a sequence of step stores."""

    def __init__(self, steps: Sequence[SortedStepStore]):
        if not steps:
            raise ValueError("need at least one step store")
        self.steps = list(steps)

    def track(self, labels: Sequence) -> TrackResult:
        """Follow every label through every step.

        The labels' dtype is preserved end-to-end: integer labels stay
        integers (trajectory keys are exact Python ints), so particle
        labels >= 2**53 are never silently rounded through float64.
        """
        labels = np.asarray(labels)
        result = TrackResult(labels=labels)
        before = sum(s.rows_examined for s in self.steps)
        for label in labels:
            # .item() yields the exact native scalar (int for integer
            # dtypes, float for floating ones) as the trajectory key
            result.trajectories[label.item()] = [
                store.find(label) for store in self.steps
            ]
        result.rows_examined = (
            sum(s.rows_examined for s in self.steps) - before
        )
        result.steps_searched = len(self.steps)
        return result
