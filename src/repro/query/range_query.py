"""Bitmap-indexed range queries over particle data (§II.A, task 2).

"The second task performs a range query to discover the particles
whose coordinates fall into certain ranges.  A bitmap indexing
technique [42] is used to avoid scanning the whole particle array,
and multiple array chunks are merged to speed up bulk loading."

:class:`RangeQueryEngine` owns the per-partition
:class:`~repro.operators.bitmap.BitmapIndex` objects built in the
staging area (one per staging rank, all sharing global bin edges) plus
the partition row blocks, and answers conjunctive multi-column range
queries.  The report counts rows actually examined (candidate checks
on edge bins only) versus the full-scan cost the index avoided, and
how many chunk loads were merged into bulk loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.operators.bitmap import BitmapIndex

__all__ = ["RangeQueryEngine", "RangeQueryReport"]


@dataclass
class RangeQueryReport:
    """Work accounting for one range query."""

    rows: np.ndarray  # the matching particle rows
    total_rows: int  # rows in the dataset
    rows_checked: int  # candidate rows examined against raw values
    partitions_touched: int
    partitions_skipped: int  # pruned entirely by the index
    bulk_loads: int  # merged chunk loads performed

    @property
    def selectivity(self) -> float:
        return len(self.rows) / self.total_rows if self.total_rows else 0.0

    @property
    def scan_avoided_fraction(self) -> float:
        """Fraction of the dataset never touched thanks to the index."""
        if self.total_rows == 0:
            return 0.0
        return 1.0 - self.rows_checked / self.total_rows


class RangeQueryEngine:
    """Conjunctive range queries over partitioned, indexed particles.

    Parameters
    ----------
    partitions: per-staging-rank row blocks (2-D arrays).
    indexed_columns: columns to build bitmap indexes on.
    bins: bins per index.
    edges: optional per-column global bin edges (aligned across
        partitions, as the staging pipeline's aggregation produces);
        computed from the data when omitted.
    """

    def __init__(
        self,
        partitions: Sequence[np.ndarray],
        indexed_columns: Sequence[int],
        *,
        bins: int = 64,
        edges: Optional[dict[int, np.ndarray]] = None,
    ):
        self.partitions = [
            np.atleast_2d(np.asarray(p)) for p in partitions if len(p)
        ]
        if not self.partitions:
            raise ValueError("need at least one non-empty partition")
        self.indexed_columns = tuple(indexed_columns)
        if not self.indexed_columns:
            raise ValueError("need at least one indexed column")
        self.total_rows = sum(p.shape[0] for p in self.partitions)
        if edges is None:
            edges = {}
            for col in self.indexed_columns:
                vals = np.concatenate(
                    [p[:, col] for p in self.partitions]
                )
                lo, hi = float(vals.min()), float(vals.max())
                if lo == hi:
                    hi = lo + 1.0
                edges[col] = np.linspace(lo, hi, bins + 1)
        self.edges = edges
        #: per partition, per column: the bitmap index
        self.indexes: list[dict[int, BitmapIndex]] = [
            {
                col: BitmapIndex(p[:, col], edges=self.edges[col])
                for col in self.indexed_columns
            }
            for p in self.partitions
        ]

    @property
    def index_nbytes(self) -> int:
        """Compressed size of all bitmap indexes."""
        return sum(
            idx.nbytes for per_part in self.indexes
            for idx in per_part.values()
        )

    def query(self, ranges: dict[int, tuple[float, float]]) -> RangeQueryReport:
        """Rows satisfying every ``col: (lo, hi)`` condition (inclusive).

        Non-indexed columns in *ranges* are applied as a post-filter on
        the candidate rows.
        """
        if not ranges:
            raise ValueError("empty query")
        indexed = {c: r for c, r in ranges.items() if c in set(self.indexed_columns)}
        post = {c: r for c, r in ranges.items() if c not in indexed}
        hits = []
        rows_checked = 0
        touched = 0
        skipped = 0
        bulk_loads = 0
        for part, per_col in zip(self.partitions, self.indexes):
            mask = np.ones(part.shape[0], dtype=bool)
            pruned = False
            for col, (lo, hi) in indexed.items():
                result = per_col[col].query(lo, hi)
                rows_checked += result.rows_checked
                mask &= result.mask
                if not mask.any():
                    pruned = True
                    break
            if pruned:
                skipped += 1
                continue
            touched += 1
            # merged bulk load of the candidate rows of this partition
            candidates = part[mask]
            bulk_loads += 1
            for col, (lo, hi) in post.items():
                keep = (candidates[:, col] >= lo) & (candidates[:, col] <= hi)
                candidates = candidates[keep]
                # charge only the candidates that survive this column:
                # charging the pre-narrowing count once per post column
                # double-counts rows and can push rows_checked past
                # total_rows, turning scan_avoided_fraction negative
                rows_checked += candidates.shape[0]
            hits.append(candidates)
        rows = (
            np.concatenate(hits)
            if hits
            # empty result in the partitions' dtype, not float64
            else np.empty((0, self.partitions[0].shape[1]),
                          dtype=self.partitions[0].dtype)
        )
        return RangeQueryReport(
            rows=rows,
            total_rows=self.total_rows,
            rows_checked=rows_checked,
            partitions_touched=touched,
            partitions_skipped=skipped,
            bulk_loads=bulk_loads,
        )

    def brute_force(self, ranges: dict[int, tuple[float, float]]) -> np.ndarray:
        """Reference result: full scan of every partition."""
        out = []
        for part in self.partitions:
            mask = np.ones(part.shape[0], dtype=bool)
            for col, (lo, hi) in ranges.items():
                mask &= (part[:, col] >= lo) & (part[:, col] <= hi)
            out.append(part[mask])
        return (
            np.concatenate(out)
            if out
            else np.empty((0, self.partitions[0].shape[1]),
                          dtype=self.partitions[0].dtype)
        )
