"""Post-preparation query services (GTC's analysis tasks, §II.A).

The reason PreDatA sorts and indexes in-transit is to make these
queries fast afterwards:

- :mod:`repro.query.tracker` — **particle tracking** (task 1): follow
  a subset of particles by their global label across many output
  steps.  Against sorted output the lookup is a binary search per
  bucket; against raw (migrated, out-of-order) output it degenerates
  to full scans of every 260 GB step file.
- :mod:`repro.query.range_query` — **range queries** (task 2): find
  particles whose coordinates fall in given ranges using the
  WAH-compressed bitmap indexes built in the staging area, with
  candidate checks only on edge bins — instead of scanning the whole
  particle array.
"""

from repro.query.tracker import ParticleTracker, SortedStepStore, TrackResult
from repro.query.range_query import RangeQueryEngine, RangeQueryReport
from repro.query.reader import AnalysisReader, ReadStats

__all__ = [
    "AnalysisReader",
    "ParticleTracker",
    "RangeQueryEngine",
    "RangeQueryReport",
    "ReadStats",
    "SortedStepStore",
    "TrackResult",
]
