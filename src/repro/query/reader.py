"""VisIt-style analysis reader over BP files (Fig. 2's right side).

Pixie3D's pipeline ends with "derived quantities, along with the raw
output data ... read by visualization tools like VisIt for interactive
visual data exploration".  The reader implements the access patterns
such tools issue against BP files — full arrays, axis-aligned slice
planes, sub-boxes, and per-point time series — with extent accounting
so the merged-vs-unmerged layout cost of every pattern is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.adios.bp import BPFile

__all__ = ["AnalysisReader", "ReadStats"]


@dataclass
class ReadStats:
    """Accumulated layout cost of the reads issued so far."""

    reads: int = 0
    extents: int = 0
    bytes: int = 0

    def charge(self, extents: int, nbytes: int) -> None:
        """Account one read of *extents* extents and *nbytes* bytes."""
        self.reads += 1
        self.extents += extents
        self.bytes += nbytes


class AnalysisReader:
    """Read-side facade over one BP file."""

    def __init__(self, bpfile: BPFile):
        self.file = bpfile
        self.stats = ReadStats()

    # -- access patterns ---------------------------------------------------
    def full(self, var: str, step: int) -> np.ndarray:
        """Whole global array (bulk load)."""
        out = self.file.read_global_array(var, step)
        self.stats.charge(self.file.extents_for(var, step), out.nbytes)
        return out

    def box(
        self, var: str, step: int, lb: Sequence[int], ub: Sequence[int]
    ) -> np.ndarray:
        """Axis-aligned sub-box."""
        out, extents = self.file.read_region(var, step, tuple(lb), tuple(ub))
        self.stats.charge(extents, out.nbytes)
        return out

    def slice_plane(
        self, var: str, step: int, axis: int, index: int
    ) -> np.ndarray:
        """One grid plane orthogonal to *axis* (the VisIt slice)."""
        entries = self.file.entries(var, step)
        gdims = entries[0].chunk.global_dims
        if not 0 <= axis < len(gdims):
            raise ValueError(f"axis {axis} out of range for rank {len(gdims)}")
        if not 0 <= index < gdims[axis]:
            raise ValueError(f"index {index} outside dimension {gdims[axis]}")
        lb = [0] * len(gdims)
        ub = list(gdims)
        lb[axis], ub[axis] = index, index + 1
        out, extents = self.file.read_region(var, step, tuple(lb), tuple(ub))
        self.stats.charge(extents, out.nbytes)
        return np.squeeze(out, axis=axis)

    def time_series(
        self,
        var: str,
        point: Sequence[int],
        steps: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """One cell's value across steps (probe / pick pattern)."""
        steps = list(steps) if steps is not None else self.file.steps()
        lb = tuple(int(p) for p in point)
        ub = tuple(p + 1 for p in lb)
        out = np.empty(len(steps))
        for i, s in enumerate(steps):
            cell, extents = self.file.read_region(var, s, lb, ub)
            self.stats.charge(extents, cell.nbytes)
            out[i] = cell.reshape(-1)[0]
        return out

    # -- cost comparison ------------------------------------------------------
    def reset_stats(self) -> ReadStats:
        """Return-and-clear the accumulated stats."""
        out = self.stats
        self.stats = ReadStats()
        return out
