"""Structured span tracing over *simulated* time.

The :class:`Tracer` records two kinds of records:

- **spans** — closed intervals ``[start, end]`` of simulated seconds
  covering one pipeline phase on one actor (a staging rank, a compute
  rank, the file system, ...);
- **instant events** — zero-duration marks (a node crash, a failure
  detection, a recovery restart).

Both carry a ``pid`` (one per bound simulation run, so several runs
can share a trace file) and a ``tid`` (the actor within the run), which
is exactly the process/thread model of the Chrome ``trace_event``
format.  :meth:`Tracer.chrome_trace` renders the whole recording as a
Perfetto-loadable JSON object; :meth:`Tracer.write_jsonl` writes one
plain JSON record per line for ad-hoc tooling.

The tracer performs no simulation activity of its own: recording a
span never yields, never advances the clock, and never perturbs event
ordering, so an instrumented run is event-for-event identical to an
uninstrumented one (the determinism guard in ``tests/test_obs.py``
asserts this bit-for-bit).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One traced interval (or instant, when ``end == start``)."""

    name: str
    cat: str
    start: float  # simulated seconds
    end: float  # simulated seconds; == start for instant events
    pid: int
    tid: str
    args: dict = field(default_factory=dict)
    instant: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> dict:
        """Plain-dict form used by the JSON-lines export."""
        rec = {
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.instant:
            rec["instant"] = True
        if self.args:
            rec["args"] = self.args
        return rec


class Tracer:
    """Collects spans and instant events across one or more runs."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._pid_labels: dict[int, str] = {}
        self._next_pid = 0

    # -- process bookkeeping ------------------------------------------------
    def begin_process(self, label: str) -> int:
        """Open a new trace process (one simulation run); returns its pid."""
        pid = self._next_pid
        self._next_pid += 1
        self._pid_labels[pid] = label
        return pid

    @property
    def pid_labels(self) -> dict[int, str]:
        return dict(self._pid_labels)

    # -- recording ----------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        *,
        pid: int = 0,
        tid: str = "main",
        **args: object,
    ) -> Span:
        """Record one completed interval; returns the stored span."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        s = Span(name, cat, start, end, pid, tid, dict(args))
        self.spans.append(s)
        return s

    def instant(
        self,
        name: str,
        cat: str,
        time: float,
        *,
        pid: int = 0,
        tid: str = "main",
        **args: object,
    ) -> Span:
        """Record one zero-duration mark; returns the stored span."""
        s = Span(name, cat, time, time, pid, tid, dict(args), instant=True)
        self.spans.append(s)
        return s

    # -- queries ------------------------------------------------------------
    def by_name(self, name: str) -> list[Span]:
        """All spans called *name*, in recording order."""
        return [s for s in self.spans if s.name == name]

    def categories(self) -> set[str]:
        """Every category that appears in the recording."""
        return {s.cat for s in self.spans}

    def names(self) -> set[str]:
        """Every span/event name that appears in the recording."""
        return {s.name for s in self.spans}

    # -- exports ------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The recording as a Chrome ``trace_event`` JSON object.

        Times are exported in microseconds (the format's unit); spans
        become complete (``ph: "X"``) events, instants become ``ph:
        "i"`` events, and process labels ride on ``process_name``
        metadata events so Perfetto shows one named track per run.
        """
        events: list[dict] = []
        for pid, label in sorted(self._pid_labels.items()):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        for s in self.spans:
            ev = {
                "name": s.name,
                "cat": s.cat,
                "pid": s.pid,
                "tid": s.tid,
                "ts": s.start * 1e6,
                "args": s.args,
            }
            if s.instant:
                ev["ph"] = "i"
                ev["s"] = "t"  # thread-scoped instant
            else:
                ev["ph"] = "X"
                ev["dur"] = s.duration * 1e6
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`chrome_trace` to *path* (open in Perfetto)."""
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f)

    def write_jsonl(self, path: str) -> None:
        """Write one JSON record per span to *path*."""
        with open(path, "w") as f:
            for s in self.spans:
                f.write(json.dumps(s.to_json()))
                f.write("\n")
