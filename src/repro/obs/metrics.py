"""Labelled counters, gauges and histograms for the staging pipeline.

A metric is identified by its name plus a (sorted) tuple of label
key/value pairs, mirroring the Prometheus data model at toy scale:

- **counters** accumulate (bytes fetched, shuffle bytes per reducer
  pair, scheduler defers, fetch retries, ...);
- **gauges** hold the latest or the maximum observed value (buffer
  high-water marks);
- **histograms** track count/sum/min/max of an observed distribution
  (per-reducer bucket-row counts — a skewed key distribution shows up
  directly as one reducer's ``bucket_rows`` dwarfing the others').

Everything is plain in-memory arithmetic: updating a metric never
touches the simulation clock, so instrumented runs stay deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["HistogramStat", "MetricsRegistry", "BoundMetrics", "RESERVED_LABELS"]

LabelKey = tuple[str, tuple[tuple[str, object], ...]]

#: labels only the harness may inject (via :meth:`MetricsRegistry.bound`),
#: never individual instrumentation sites — a site passing one explicitly
#: would silently fork the series the jobs layer aggregates per tenant.
RESERVED_LABELS = frozenset({"tenant"})


def _key(name: str, labels: dict[str, object]) -> LabelKey:
    return (name, tuple(sorted(labels.items())))


def _label_sort_key(labels: tuple[tuple[str, object], ...]) -> tuple:
    """Type-stable sort key for one frozen label tuple.

    Plain ``sorted()`` over label tuples raises ``TypeError`` the moment
    one series carries ``rank=0`` and another ``rank="governor"`` — which
    is exactly what happens once a global ``tenant`` label (a string) is
    injected next to numeric ranks.  Numbers still sort numerically among
    themselves, strings lexically; mixed types order by kind.
    """
    out = []
    for k, v in labels:
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            out.append((k, 1, "", float(v)))
        else:
            out.append((k, 0, str(v), 0.0))
    return tuple(out)


@dataclass
class HistogramStat:
    """Streaming summary of one observed distribution.

    Besides count/total/min/max, a bounded, deterministically decimated
    sample buffer is retained so tail quantiles (p50/p99 latencies) can
    be read back: once the buffer reaches :data:`SAMPLE_CAP` samples it
    is thinned to every other element and the retention stride doubles.
    The decimation depends only on the observation sequence, never on a
    clock or RNG, so instrumented runs stay deterministic.
    """

    SAMPLE_CAP = 2048

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))
    samples: list = field(default_factory=list, repr=False)
    sample_stride: int = field(default=1, repr=False)

    def observe(self, value: float) -> None:
        """Fold *value* into the running count/total/min/max."""
        if self.count % self.sample_stride == 0:
            self.samples.append(value)
            if len(self.samples) >= self.SAMPLE_CAP:
                self.samples = self.samples[::2]
                self.sample_stride *= 2
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank *q*-quantile over the retained samples.

        Exact while fewer than :data:`SAMPLE_CAP` values have been
        observed; an even-stride approximation afterwards.  Returns 0.0
        before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
        return ordered[rank - 1]


class MetricsRegistry:
    """In-memory store of labelled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[LabelKey, float] = {}
        self._gauges: dict[LabelKey, float] = {}
        self._histograms: dict[LabelKey, HistogramStat] = {}

    # -- updates ------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add *value* to the counter ``name{labels}``."""
        k = _key(name, labels)
        self._counters[k] = self._counters.get(k, 0.0) + value

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to *value*."""
        self._gauges[_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise the gauge ``name{labels}`` to *value* if higher."""
        k = _key(name, labels)
        if value > self._gauges.get(k, float("-inf")):
            self._gauges[k] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Feed *value* into the histogram ``name{labels}``."""
        k = _key(name, labels)
        hist = self._histograms.get(k)
        if hist is None:
            hist = self._histograms[k] = HistogramStat()
        hist.observe(value)

    # -- reads --------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: object) -> float | None:
        """Current value of one gauge, or None when never set."""
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: object) -> HistogramStat | None:
        """The summary of one histogram, or None when never observed."""
        return self._histograms.get(_key(name, labels))

    def series(self, name: str) -> dict[tuple[tuple[str, object], ...], float]:
        """All label combinations of counter/gauge *name* -> value.

        Keys are the frozen ``((label, value), ...)`` tuples; use
        :meth:`labelled` for a friendlier dict-keyed view.
        """
        out = {}
        for store in (self._counters, self._gauges):
            for (n, labels), v in store.items():
                if n == name:
                    out[labels] = v
        return out

    def labelled(self, name: str) -> list[tuple[dict, float]]:
        """``(labels-dict, value)`` pairs of counter/gauge *name*."""
        rows = sorted(
            self.series(name).items(), key=lambda kv: _label_sort_key(kv[0])
        )
        return [(dict(labels), v) for labels, v in rows]

    # -- label binding --------------------------------------------------------
    def bound(self, **labels: object) -> "MetricsRegistry | BoundMetrics":
        """A write-through view with *labels* pre-merged into every update.

        With no labels this returns the registry itself, so code holding
        a bound view is byte-identical to code holding the registry when
        nothing is bound (the jobs-mode-off guarantee).  Bound label
        names must come from :data:`RESERVED_LABELS`: the harness owns
        them, instrumentation sites may never set them directly.
        """
        if not labels:
            return self
        bad = set(labels) - RESERVED_LABELS
        if bad:
            raise ValueError(
                f"only reserved labels {sorted(RESERVED_LABELS)} may be "
                f"bound globally, got {sorted(bad)}"
            )
        return BoundMetrics(self, labels)

    def names(self) -> set[str]:
        """Every metric name seen so far."""
        return (
            {n for n, _ in self._counters}
            | {n for n, _ in self._gauges}
            | {n for n, _ in self._histograms}
        )

    # -- export -------------------------------------------------------------
    @staticmethod
    def _fmt_labels(labels: tuple[tuple[str, object], ...]) -> str:
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return "{" + inner + "}"

    def summary_rows(self) -> list[tuple[str, str, str]]:
        """``(metric, kind, value)`` rows, sorted by metric name."""

        def order(item):
            (name, labels), _v = item
            return (name, _label_sort_key(labels))

        rows: list[tuple[str, str, str]] = []
        for (name, labels), v in sorted(self._counters.items(), key=order):
            rows.append((name + self._fmt_labels(labels), "counter", f"{v:g}"))
        for (name, labels), v in sorted(self._gauges.items(), key=order):
            rows.append((name + self._fmt_labels(labels), "gauge", f"{v:g}"))
        for (name, labels), h in sorted(self._histograms.items(), key=order):
            rows.append(
                (
                    name + self._fmt_labels(labels),
                    "histogram",
                    f"n={h.count} mean={h.mean:g} "
                    f"min={h.minimum:g} max={h.maximum:g}",
                )
            )
        return rows

    def summary_table(self, title: str = "metrics") -> str:
        """Aligned plain-text dump of every metric."""
        rows = self.summary_rows()
        if not rows:
            return f"{title}: (no metrics recorded)"
        widths = [
            max(len(r[i]) for r in rows + [("metric", "kind", "value")])
            for i in range(3)
        ]
        lines = [title]
        header = ("metric", "kind", "value")
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)))
        lines.append("-+-".join("-" * w for w in widths))
        for r in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths, strict=True)))
        return "\n".join(lines)


class BoundMetrics:
    """Write-through registry view with reserved labels pre-bound.

    Created by :meth:`MetricsRegistry.bound` — e.g. the jobs layer hands
    each tenant's pipeline a view bound to ``tenant=<id>`` so every
    counter/gauge/histogram the pipeline records lands in a per-tenant
    series without the instrumentation sites knowing about tenancy.
    A call site passing a bound label explicitly is a bug (the series
    would fork) and raises.  Reads pass straight through to the shared
    registry, so cross-tenant aggregation stays available.
    """

    __slots__ = ("_registry", "_labels")

    def __init__(self, registry: MetricsRegistry, labels: dict[str, object]):
        self._registry = registry
        self._labels = dict(labels)

    @property
    def bound_labels(self) -> dict[str, object]:
        return dict(self._labels)

    def _merge(self, labels: dict[str, object]) -> dict[str, object]:
        hit = self._labels.keys() & labels.keys()
        if hit:
            raise ValueError(
                f"label(s) {sorted(hit)} are bound on this view and may "
                "not be passed by the call site"
            )
        merged = dict(labels)
        merged.update(self._labels)
        return merged

    # -- bound updates --------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add *value* to the counter, with the bound labels merged in."""
        self._registry.inc(name, value, **self._merge(labels))

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge, with the bound labels merged in."""
        self._registry.gauge_set(name, value, **self._merge(labels))

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise the gauge if higher, with the bound labels merged in."""
        self._registry.gauge_max(name, value, **self._merge(labels))

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Feed the histogram, with the bound labels merged in."""
        self._registry.observe(name, value, **self._merge(labels))

    # -- bound reads ----------------------------------------------------------
    def counter(self, name: str, **labels: object) -> float:
        """Read one counter scoped to the bound labels."""
        return self._registry.counter(name, **self._merge(labels))

    def gauge(self, name: str, **labels: object) -> float | None:
        """Read one gauge scoped to the bound labels."""
        return self._registry.gauge(name, **self._merge(labels))

    def histogram(self, name: str, **labels: object) -> HistogramStat | None:
        """Read one histogram summary scoped to the bound labels."""
        return self._registry.histogram(name, **self._merge(labels))

    # -- registry-wide reads (deliberately unscoped) ---------------------------
    def series(self, name: str):
        """All label combinations of *name*, registry-wide (unscoped)."""
        return self._registry.series(name)

    def labelled(self, name: str) -> list[tuple[dict, float]]:
        """Registry-wide ``(labels, value)`` rows of *name* (unscoped)."""
        return self._registry.labelled(name)

    def names(self) -> set[str]:
        """Every metric name in the shared registry."""
        return self._registry.names()

    def summary_rows(self) -> list[tuple[str, str, str]]:
        """The shared registry's full summary rows."""
        return self._registry.summary_rows()

    def summary_table(self, title: str = "metrics") -> str:
        """The shared registry's aligned plain-text dump."""
        return self._registry.summary_table(title)

    def bound(self, **labels: object) -> "MetricsRegistry | BoundMetrics":
        """A further-bound view; no labels returns this view unchanged."""
        if not labels:
            return self
        return self._registry.bound(**{**self._labels, **labels})
