"""``repro.obs`` — sim-time-aware observability for the pipeline.

The paper's whole argument is made through per-phase timing (Fig. 7's
computation/communication/I-O breakdowns); this package makes the same
breakdown available *inside* the reproduction, per run, per staging
rank, per chunk:

- :class:`~repro.obs.tracer.Tracer` — structured spans for every
  pipeline phase (pack, request, scheduler wait, fetch, Map, Combine,
  Shuffle, Reduce, Finalize, recovery events), exportable as JSON-lines
  and as the Chrome ``trace_event`` format viewable in Perfetto
  (https://ui.perfetto.dev);
- :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges and histograms (bytes fetched, scheduler defers, shuffle
  bytes per reducer pair, per-reducer bucket-row counts, buffer
  high-water marks, retries, degraded steps);
- :class:`Observability` — the facade instrumented code talks to,
  bound to an :class:`~repro.sim.engine.Engine` via :meth:`bind`.

Observability is **off by default**: ``Engine.obs`` is ``None`` and
every instrumentation site is guarded by a single ``is None`` check,
so the disabled pipeline is byte-identical to the uninstrumented one
(asserted by the determinism guard in ``tests/test_obs.py``).  When
enabled, recording never yields or advances the simulated clock, so
the *simulated* results are identical too — only host-side memory and
wall time are spent.

Typical use::

    obs = Observability()
    eng = Engine()
    obs.bind(eng, label="gtc:sort:16384:staging")
    ... run the simulation ...
    obs.dump("trace.json")       # Chrome trace + JSON-lines sidecar
    print(obs.metrics.summary_table())
"""

from __future__ import annotations

from repro.obs.metrics import (
    RESERVED_LABELS,
    BoundMetrics,
    HistogramStat,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "BoundMetrics",
    "HistogramStat",
    "MetricsRegistry",
    "Observability",
    "RESERVED_LABELS",
    "Span",
    "TenantObservability",
    "Tracer",
]


class Observability:
    """One tracer + one metrics registry, bound to simulation engines.

    A single instance may be re-bound across several sequential runs
    (each :meth:`bind` opens a fresh trace process, so Perfetto shows
    one named track group per run).
    """

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self._env = None
        self._pid = -1
        self._nruns = 0
        self._tenant_views: dict[str, TenantObservability] = {}

    # -- wiring -------------------------------------------------------------
    def bind(self, env, label: str | None = None) -> None:
        """Attach to *env*: sets ``env.obs`` and opens a trace process."""
        self._env = env
        self._pid = self.tracer.begin_process(label or f"{self.label}#{self._nruns}")
        self._nruns += 1
        env.obs = self

    @property
    def now(self) -> float:
        """Current simulated time of the bound engine (0.0 unbound)."""
        return self._env.now if self._env is not None else 0.0

    # -- recording shorthands ------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        start: float,
        *,
        tid: str = "main",
        end: float | None = None,
        **args: object,
    ) -> Span:
        """Record a completed phase span ``[start, end or now]``."""
        return self.tracer.span(
            name,
            cat,
            start,
            self.now if end is None else end,
            pid=self._pid,
            tid=tid,
            **args,
        )

    def instant(self, name: str, cat: str, *, tid: str = "main", **args: object) -> Span:
        """Record a zero-duration event at the current simulated time."""
        return self.tracer.instant(name, cat, self.now, pid=self._pid, tid=tid, **args)

    # -- tenancy --------------------------------------------------------------
    def for_tenant(self, tenant: str | None) -> "Observability | TenantObservability":
        """A per-tenant recording view sharing this tracer + registry.

        ``None`` returns this facade itself, so single-tenant code paths
        are byte-identical to the pre-jobs behaviour.  Views are cached:
        every pipeline stage of one tenant records through the same
        bound metrics object.
        """
        if tenant is None:
            return self
        view = self._tenant_views.get(tenant)
        if view is None:
            view = self._tenant_views[tenant] = TenantObservability(self, tenant)
        return view

    # -- export -------------------------------------------------------------
    def dump(self, path: str) -> list[str]:
        """Write the Chrome trace to *path* plus a ``.jsonl`` sidecar.

        Returns the list of files written.  Open the ``.json`` file in
        Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
        """
        self.tracer.write_chrome_trace(path)
        sidecar = path + "l" if path.endswith(".json") else path + ".jsonl"
        self.tracer.write_jsonl(sidecar)
        return [path, sidecar]


class TenantObservability:
    """One tenant's view of a shared :class:`Observability`.

    Spans and instants keep their pipeline-level names but run on
    tenant-prefixed tracks (``<tenant>/stage0``) and carry a ``tenant``
    arg; metrics go through a :class:`~repro.obs.metrics.BoundMetrics`
    view so every series gains the reserved ``tenant`` label.  The
    underlying tracer/registry stay shared — fleet-wide aggregation
    keeps working, now with a tenant dimension.
    """

    __slots__ = ("base", "tenant", "metrics")

    def __init__(self, base: Observability, tenant: str):
        self.base = base
        self.tenant = tenant
        self.metrics = base.metrics.bound(tenant=tenant)

    @property
    def now(self) -> float:
        return self.base.now

    @property
    def tracer(self) -> Tracer:
        return self.base.tracer

    def span(
        self,
        name: str,
        cat: str,
        start: float,
        *,
        tid: str = "main",
        end: float | None = None,
        **args: object,
    ) -> Span:
        """Open a span on this tenant's track, tagged ``tenant=``."""
        return self.base.span(
            name, cat, start,
            tid=f"{self.tenant}/{tid}", end=end, tenant=self.tenant, **args,
        )

    def instant(self, name: str, cat: str, *, tid: str = "main", **args: object) -> Span:
        """Emit an instant event on this tenant's track."""
        return self.base.instant(
            name, cat, tid=f"{self.tenant}/{tid}", tenant=self.tenant, **args
        )

    def for_tenant(self, tenant: str | None):
        """This view for its own tenant/None; another tenant's otherwise."""
        return self if tenant in (None, self.tenant) else self.base.for_tenant(tenant)
