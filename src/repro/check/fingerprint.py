"""Physics-level result fingerprinting.

:func:`result_fingerprint` digests *what the pipeline computed* — every
operator's ``finalize()`` output on every (step, staging rank) — and
nothing about *when*: no timings, no event counts, no flow or fault
telemetry.  This is the value the schedule-perturbation fuzzer asserts
invariant across reorderings of simultaneous events: schedules may
differ, the answer may not.

Values are digested structurally (arrays by dtype/shape/bytes,
containers recursively, dataclasses by field) rather than through
``repr``, so object identities and float formatting cannot leak into
the hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np

__all__ = ["result_fingerprint", "digest_value"]


def _update(h, v: Any) -> None:
    if v is None:
        h.update(b"none;")
    elif isinstance(v, np.ndarray):
        h.update(f"nd|{v.dtype.str}|{v.shape}|".encode())
        h.update(np.ascontiguousarray(v).tobytes())
        h.update(b";")
    elif isinstance(v, (np.generic,)):
        _update(h, np.asarray(v))
    elif isinstance(v, (bool, int, float, complex, str, bytes)):
        h.update(f"s|{type(v).__name__}|{v!r};".encode())
    elif isinstance(v, dict):
        h.update(f"d|{len(v)}|".encode())
        for k in sorted(v, key=repr):
            h.update(f"k|{k!r}|".encode())
            _update(h, v[k])
        h.update(b";")
    elif isinstance(v, (list, tuple)):
        h.update(f"l|{len(v)}|".encode())
        for item in v:
            _update(h, item)
        h.update(b";")
    elif dataclasses.is_dataclass(v) and not isinstance(v, type):
        h.update(f"dc|{type(v).__name__}|".encode())
        for f in dataclasses.fields(v):
            h.update(f"f|{f.name}|".encode())
            _update(h, getattr(v, f.name))
        h.update(b";")
    elif hasattr(v, "values") and hasattr(v, "edges") and hasattr(v, "bitmaps"):
        # repro.operators.bitmap.BitmapIndex (duck-typed: the check
        # layer digests it by content, not identity)
        h.update(b"bix|")
        _update(h, np.asarray(v.values))
        _update(h, np.asarray(v.edges))
        h.update(b";")
    else:
        # Last resort: a stable-looking repr.  Object default reprs
        # embed memory addresses and would break determinism — treat
        # that as a programming error worth surfacing.
        r = repr(v)
        if " at 0x" in r:
            raise TypeError(
                f"result_fingerprint: cannot digest {type(v).__name__} "
                "deterministically (repr carries an object address); "
                "teach fingerprint.py about this type"
            )
        h.update(f"r|{r};".encode())


def digest_value(v: Any) -> str:
    """SHA-256 of one value under the structural digest rules."""
    h = hashlib.sha256()
    _update(h, v)
    return h.hexdigest()


def result_fingerprint(predata) -> str:
    """Digest of every operator result of a finished PreDatA run.

    Covers ``service.results[op][step][rank]`` for all operators,
    steps and staging ranks — the 'physics' of the run.  Two runs
    disagreeing here computed different answers, whatever their
    schedules looked like.
    """
    h = hashlib.sha256()
    results = predata.service.results
    for op_name in sorted(results):
        h.update(f"op|{op_name}|".encode())
        steps = results[op_name]
        for step in sorted(steps):
            h.update(f"step|{step}|".encode())
            for rank in sorted(steps[step]):
                h.update(f"rank|{rank}|".encode())
                _update(h, steps[step][rank])
    return h.hexdigest()
