"""Per-tenant conservation ledgers for the multi-tenant jobs layer.

A :class:`MultiTenantChecker` is a drop-in ``env.check`` sink that
demultiplexes every keyed accounting hook onto one private
:class:`~repro.check.invariants.Checker` per tenant, using the tenant
component of the tenant-qualified chunk keys
(``(tenant, compute_rank, step)``) produced by
:meth:`repro.core.client.StagingClient.key`.

This is what makes the isolation claim *checkable* rather than
asserted: each tenant's chunk/byte/credit/memory ledgers must conserve
**independently** — tenant A draining to zero may not borrow a release
from tenant B's books — and the §IV.A scheduling rule is still
enforced globally across all tenants' movements.

Unkeyed hooks route as follows:

- ``on_movement_admitted`` is recorded globally (a fetch admission is
  legal or not regardless of whose chunk moved);
- ``on_restart`` / ``on_fault`` broadcast to every tenant ledger —
  without a tenant in the signal, conservatively marking all tenants
  perturbed keeps exactly-once checks sound.
"""

from __future__ import annotations

from repro.check.invariants import Checker, InvariantViolation

__all__ = ["MultiTenantChecker"]


class MultiTenantChecker:
    """``env.check`` sink keeping one independent ledger per tenant."""

    def __init__(self, tenants):
        self.env = None
        self.tenants = list(tenants)
        if len(set(self.tenants)) != len(self.tenants):
            raise ValueError(f"duplicate tenant names: {self.tenants}")
        #: tenant -> its private Checker
        self.checkers: dict = {t: Checker() for t in self.tenants}
        #: global movement admissions (§IV.A is tenant-agnostic)
        self.admissions: list[tuple[int, bool, bool]] = []
        self.forced_admissions = 0

    # -- binding ----------------------------------------------------------
    def bind(self, env) -> "MultiTenantChecker":
        """Attach to *env* as its ``check`` sink; returns self."""
        self.env = env
        env.check = self
        for checker in self.checkers.values():
            checker.env = env  # sub-checkers see the clock, not the sink
        return self

    def checker(self, tenant) -> Checker:
        """The private ledger of one tenant."""
        return self.checkers[tenant]

    def _route(self, key) -> Checker:
        if not (isinstance(key, tuple) and len(key) == 3):
            raise KeyError(
                f"multi-tenant checker needs (tenant, rank, step) keys, "
                f"got {key!r} — was a client built without tenant=...?"
            )
        checker = self.checkers.get(key[0])
        if checker is None:
            raise KeyError(f"chunk key {key!r} names unknown tenant {key[0]!r}")
        return checker

    # -- keyed hooks (demultiplexed per tenant) ----------------------------
    def on_packed(self, key, nbytes: float, node_id: int) -> None:
        """Route a packed-chunk record to its tenant ledger."""
        self._route(key).on_packed(key, nbytes, node_id)

    def on_fetched(self, key, nbytes: float) -> None:
        """Route a completed-fetch record to its tenant ledger."""
        self._route(key).on_fetched(key, nbytes)

    def on_mapped(self, key, nbytes: float) -> None:
        """Route a Map-completion record to its tenant ledger."""
        self._route(key).on_mapped(key, nbytes)

    def on_degraded(self, key, nbytes: float) -> None:
        """Route a degraded-path record to its tenant ledger."""
        self._route(key).on_degraded(key, nbytes)

    def on_committed(self, key) -> None:
        """Route a buffer-commit record to its tenant ledger."""
        self._route(key).on_committed(key)

    def on_credit_granted(self, key, nbytes: float, rank: int) -> None:
        """Route a credit grant to its tenant ledger."""
        self._route(key).on_credit_granted(key, nbytes, rank)

    def on_credit_released(self, key, rank: int) -> None:
        """Route a credit release to its tenant ledger."""
        self._route(key).on_credit_released(key, rank)

    def on_retry(self, key, attempt: int) -> None:
        """Route a fetch-retry record to its tenant ledger."""
        self._route(key).on_retry(key, attempt)

    # -- unkeyed hooks ------------------------------------------------------
    def on_movement_admitted(
        self, node_id: int, *, in_phase: bool, forced: bool
    ) -> None:
        """Record one movement admission globally (the rule is tenant-agnostic)."""
        self.admissions.append((node_id, in_phase, forced))
        if forced:
            self.forced_admissions += 1

    def on_restart(self, rank: int, step: int) -> None:
        """Broadcast a step restart to every tenant ledger."""
        for checker in self.checkers.values():
            checker.on_restart(rank, step)

    def on_fault(self, kind: str, detail) -> None:
        """Broadcast an injected fault to every tenant ledger."""
        for checker in self.checkers.values():
            checker.on_fault(kind, detail)

    # -- verification --------------------------------------------------------
    def violations(self, deployments=None) -> list[str]:
        """Every broken invariant across all tenants, tenant-prefixed.

        ``deployments`` (optional ``{tenant: PreDatA}``) adds the live
        end-state checks — outstanding buffers, that tenant's carved
        flow banks/pools, node ledgers — per tenant.
        """
        deployments = deployments or {}
        out: list[str] = []
        for tenant in self.tenants:
            checker = self.checkers[tenant]
            for line in checker.violations(deployments.get(tenant)):
                out.append(f"tenant {tenant}: {line}")
        for node_id, in_phase, forced in self.admissions:
            if in_phase and not forced:
                out.append(
                    f"scheduling: RDMA fetch admitted inside node "
                    f"{node_id}'s communication window without the "
                    "max_defer override"
                )
        return out

    def verify(self, deployments=None) -> None:
        """Raise :class:`InvariantViolation` listing all broken invariants."""
        broken = self.violations(deployments)
        if broken:
            raise InvariantViolation(
                f"{len(broken)} pipeline invariant(s) violated across "
                f"{len(self.tenants)} tenant(s):\n  - " + "\n  - ".join(broken)
            )

    def summary(self) -> str:
        """One line per tenant plus the global admission count."""
        lines = [
            f"{t}: {self.checkers[t].summary()}" for t in self.tenants
        ]
        lines.append(
            f"global: {len(self.admissions)} movement admission(s) "
            f"({self.forced_admissions} forced)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MultiTenantChecker({len(self.tenants)} tenant(s))"
