"""``python -m repro check`` — the verification CLI.

Runs the three verification pillars and prints a pass/fail report:

1. **Schedule fuzzing** (``--fuzz N``): the fig-7-style GTC workload
   (512 logical cores, Staging placement, one dump) is executed once
   unperturbed and N times under seeded randomized tie-breaking of
   simultaneous engine events; every run must produce the identical
   physics-level result fingerprint while exploring distinct executed
   schedules.
2. **Differential oracles** (unless ``--no-oracles``): every built-in
   operator's staged output is checked against an offline numpy
   reference on ``--oracle-seeds`` independently seeded workloads.
3. **Pipeline invariants** (unless ``--no-invariants``): a clean
   pipeline and a chaos run (staging-node crash mid-step) execute with
   the conservation checker enabled; chunk/byte/credit/memory ledgers
   and the §IV.A scheduling rule must all verify at drain.

Exit status 0 when everything passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import time

from repro.check.fingerprint import result_fingerprint
from repro.check.fuzzer import ScheduleFuzzer
from repro.check.invariants import Checker
from repro.check.oracle import run_differential
from repro.check.workloads import run_workload

__all__ = ["main"]

_FIG7_KW = dict(
    rep_ranks=8,
    ndumps=1,
    iterations_per_dump=2,
    compute_seconds_per_iteration=10.0,
    functional_rows=64,
)


def _fig7_runner(operation: str):
    """Runner closure for the fuzzer: one fig-7-style GTC staging run."""
    from repro.experiments.runner import run_gtc

    def runner(tie_breaker, schedule_trace) -> str:
        res = run_gtc(
            512,
            "staging",
            operation,
            tie_breaker=tie_breaker,
            schedule_trace=schedule_trace,
            **_FIG7_KW,
        )
        return result_fingerprint(res.predata)

    return runner


def _run_fuzz(n: int, operation: str, base_seed: int) -> bool:
    print(f"== schedule-perturbation fuzz: {n} seeded run(s), "
          f"fig7 {operation} workload ==")
    t0 = time.time()
    report = ScheduleFuzzer(_fig7_runner(operation)).run(n, base_seed=base_seed)
    dt = time.time() - t0
    print(f"   {report.summary()}  [{dt:.1f}s wall]")
    for run in report.runs:
        print(
            f"   {run.label}: result {run.result_hash[:16]}... "
            f"schedule {run.schedule_hash[:16]}... ({run.nevents} events)"
        )
    if not report.result_invariant:
        for div in report.divergences:
            print("   DIVERGENCE:")
            for line in div.splitlines():
                print(f"     {line}")
        return False
    if report.distinct_schedules < 2 and n >= 1:
        print("   WARNING: every seed reproduced the baseline schedule — "
              "the fuzzer found nothing to perturb")
    return True


def _run_oracles(seeds: tuple) -> bool:
    print(f"== differential operator oracles: seeds {seeds} ==")
    results = run_differential(seeds=seeds)
    for r in results:
        print(f"   {r}")
    ok = all(r.ok for r in results)
    nops = len({r.operator for r in results})
    print(f"   {nops} operator(s) x {len(seeds)} seed(s): "
          f"{'all passed' if ok else 'FAILURES'}")
    return ok


def _run_invariants() -> bool:
    from repro.experiments.chaos import run_once

    print("== pipeline conservation invariants ==")
    ok = True

    chk = Checker()
    run = run_workload("sort", seed=1, check=chk)
    broken = chk.violations(run.predata)
    print(f"   clean pipeline: {chk.summary()}")
    for b in broken:
        print(f"     VIOLATION: {b}")
        ok = False
    if not broken:
        print("     all invariants hold")

    chk = Checker()
    chaos = run_once(check=chk)
    broken = chk.violations(chaos.predata)
    print(f"   chaos run (staging-node crash): {chk.summary()}")
    if not chaos.complete:
        print(f"     VIOLATION: steps {chaos.missing_steps} unreadable")
        ok = False
    for b in broken:
        print(f"     VIOLATION: {b}")
        ok = False
    if broken == [] and chaos.complete:
        print("     all invariants hold under failure + recovery")
    return ok


def main(argv=None) -> int:
    """Entry point for ``python -m repro check``; returns exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="PreDatA reproduction verification "
                    "(fuzzing, invariants, oracles)",
    )
    parser.add_argument(
        "--fuzz", type=int, default=10, metavar="N",
        help="number of seeded schedule perturbations (default 10; "
             "0 skips fuzzing)",
    )
    parser.add_argument(
        "--workload", default="sort",
        choices=["sort", "histogram", "histogram2d"],
        help="fig7 operation used by the fuzzer (default sort)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base tie-breaker seed for the fuzz runs (default 0)",
    )
    parser.add_argument(
        "--oracle-seeds", default="1,2,3", metavar="S1,S2,...",
        help="comma-separated workload seeds for the differential "
             "oracles (default 1,2,3)",
    )
    parser.add_argument(
        "--no-oracles", action="store_true",
        help="skip the differential operator oracles",
    )
    parser.add_argument(
        "--no-invariants", action="store_true",
        help="skip the pipeline conservation invariants",
    )
    args = parser.parse_args(argv)

    ok = True
    if args.fuzz > 0:
        ok &= _run_fuzz(args.fuzz, args.workload, args.seed)
    if not args.no_oracles:
        seeds = tuple(int(s) for s in args.oracle_seeds.split(",") if s)
        ok &= _run_oracles(seeds)
    if not args.no_invariants:
        ok &= _run_invariants()
    print()
    print("verification PASSED" if ok else "verification FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
