"""Self-contained seeded workloads for verification runs.

The fuzzer, the differential oracles and the ``repro check`` CLI all
need small end-to-end Staging-configuration pipelines that (a) live in
the library rather than the test tree, (b) are fully seeded, and
(c) capture a pristine copy of every rank's input *before* the write
path mutates it (filter/subsample/precision-reduce operators edit
their :class:`~repro.adios.OutputStep` in place on the compute node).

:func:`run_workload` runs one such pipeline and returns a
:class:`WorkloadRun` carrying the engine, the facade, the captured
inputs and the per-rank application-visible output times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.adios import ChunkMeta, GroupDef, OutputStep, VarDef, VarKind
from repro.core import PreDatA
from repro.machine import Machine, TESTING_TINY
from repro.mpi import World
from repro.sim import Engine

__all__ = [
    "WorkloadRun",
    "make_operators",
    "run_workload",
    "OPERATOR_KINDS",
]

# GTC-like particle group: (n, 8) rows; column 0 is the global label.
PARTICLE_GROUP = GroupDef(
    "particles",
    (VarDef("electrons", "float64", VarKind.LOCAL_ARRAY, ndim=2),),
)

# Pixie3D-like field group: 3-D global array, 1-D slab decomposition.
FIELD_GROUP = GroupDef(
    "fields",
    (VarDef("rho", "float64", VarKind.GLOBAL_ARRAY, ndim=3),),
)

#: every built-in operator the differential oracles cover
OPERATOR_KINDS = (
    "minmax",
    "histogram",
    "histogram2d",
    "sort",
    "bitmap",
    "array_merge",
    "filter",
    "subsample",
    "precision_reduce",
)

#: operator kinds that consume the field (global-array) workload
FIELD_KINDS = frozenset({"array_merge"})


def particle_step(rank, nprocs, rows, step=0, scale=1.0, seed=0):
    """Synthetic out-of-order GTC particles for one rank."""
    rng = np.random.default_rng(seed + 1000 * step + rank)
    data = np.empty((rows, 8))
    data[:, 0] = rng.permutation(nprocs * rows)[:rows]
    data[:, 1:4] = rng.uniform(-1, 1, size=(rows, 3))
    data[:, 4:7] = rng.normal(0, 1, size=(rows, 3))
    data[:, 7] = rng.uniform(0, 1, rows)
    return OutputStep(
        group=PARTICLE_GROUP,
        step=step,
        rank=rank,
        values={"electrons": data},
        volume_scale=scale,
    )


def field_step(rank, nprocs, local_n, step=0, scale=1.0, seed=0):
    """Seeded 3-D field chunk for one rank (1-D slab decomposition)."""
    gx = nprocs * local_n
    lo = rank * local_n
    rng = np.random.default_rng(seed + 7000 * step)
    base = rng.normal(0.0, 1.0, size=(gx, local_n, local_n))
    return OutputStep(
        group=FIELD_GROUP,
        step=step,
        rank=rank,
        values={"rho": base[lo : lo + local_n].copy()},
        chunks={"rho": ChunkMeta((gx, local_n, local_n), (lo, 0, 0))},
        volume_scale=scale,
    )


def make_operators(kind: str, *, bins: int = 16) -> list:
    """One built-in operator instance for *kind* (a fresh object)."""
    from repro.operators import (
        ArrayMergeOperator,
        BitmapIndexOperator,
        FilterOperator,
        Histogram2DOperator,
        HistogramOperator,
        MinMaxOperator,
        PrecisionReduceOperator,
        SampleSortOperator,
        SubsampleOperator,
    )

    if kind == "minmax":
        return [MinMaxOperator("electrons")]
    if kind == "histogram":
        return [HistogramOperator("electrons", column=1, bins=bins)]
    if kind == "histogram2d":
        return [Histogram2DOperator("electrons", columns=(1, 2), bins=(8, 8))]
    if kind == "sort":
        return [SampleSortOperator("electrons", key_column=0, samples_per_rank=8)]
    if kind == "bitmap":
        return [BitmapIndexOperator("electrons", column=2, bins=bins)]
    if kind == "array_merge":
        return [ArrayMergeOperator(["rho"])]
    if kind == "filter":
        return [FilterOperator("electrons", column=1, lo=-0.5, hi=0.5)]
    if kind == "subsample":
        return [SubsampleOperator("electrons", fraction=0.25, mode="stride")]
    if kind == "precision_reduce":
        return [PrecisionReduceOperator(["electrons"])]
    raise ValueError(f"unknown operator kind {kind!r}")


@dataclass
class WorkloadRun:
    """One finished verification workload."""

    kind: str
    seed: int
    engine: Engine
    machine: Machine
    predata: PreDatA
    operators: list
    #: pristine per-(rank, step) inputs captured before the write path
    inputs: dict = field(repr=False, default_factory=dict)
    #: chunk metadata per (rank, step) for global-array workloads
    chunks: dict = field(repr=False, default_factory=dict)
    #: per-rank application-visible output seconds
    visible: dict = field(default_factory=dict)
    nprocs: int = 0

    def results(self, op_index: int = 0) -> dict:
        """``{step: {rank: finalize output}}`` for one operator."""
        return self.predata.service.results[self.operators[op_index].name]


def run_workload(
    kind: str = "sort",
    *,
    seed: int = 0,
    nprocs: int = 8,
    rows: int = 40,
    local_n: int = 4,
    nsteps: int = 1,
    scale: float = 10.0,
    nstaging_nodes: int = 1,
    procs_per_staging_node: int = 2,
    io_interval: float = 2.0,
    operators: Optional[list] = None,
    make_step: Optional[Callable] = None,
    tie_breaker=None,
    schedule_trace=None,
    check=None,
    flow=None,
    resilience=None,
    fetch_pipeline_depth: int = 2,
) -> WorkloadRun:
    """Run one seeded end-to-end Staging pipeline to completion.

    ``tie_breaker``/``schedule_trace``/``check`` thread straight to the
    engine (all default off, keeping the run byte-identical with the
    plain pipeline); ``flow``/``resilience`` are the usual facade
    configs.
    """
    ops = operators if operators is not None else make_operators(kind)
    eng = Engine(tie_breaker=tie_breaker)
    if schedule_trace is not None:
        eng.schedule_trace = schedule_trace
    if check is not None:
        check.bind(eng)
    machine = Machine(eng, nprocs, nstaging_nodes, spec=TESTING_TINY)
    app_world = World(
        eng,
        machine.network,
        list(range(nprocs)),
        name="app",
        node_lookup=machine.node,
        wire_scale=scale,
    )
    group = FIELD_GROUP if kind in FIELD_KINDS else PARTICLE_GROUP
    predata = PreDatA(
        eng,
        machine,
        group,
        ops,
        ncompute_procs=nprocs,
        nsteps=nsteps,
        procs_per_staging_node=procs_per_staging_node,
        volume_scale=scale,
        flow=flow,
        resilience=resilience,
        fetch_pipeline_depth=fetch_pipeline_depth,
    )
    predata.start()

    if make_step is None:
        if kind in FIELD_KINDS:
            make_step = lambda rank, s: field_step(  # noqa: E731
                rank, nprocs, local_n, step=s, scale=scale, seed=seed
            )
        else:
            make_step = lambda rank, s: particle_step(  # noqa: E731
                rank, nprocs, rows, step=s, scale=scale, seed=seed
            )

    run = WorkloadRun(
        kind=kind,
        seed=seed,
        engine=eng,
        machine=machine,
        predata=predata,
        operators=ops,
        nprocs=nprocs,
    )

    def app_main(comm):
        total = 0.0
        for s in range(nsteps):
            step = make_step(comm.rank, s)
            # pristine copy before compute-side operators mutate it
            run.inputs[(comm.rank, s)] = {
                var: np.array(v, copy=True) for var, v in step.values.items()
            }
            if step.chunks:
                run.chunks[(comm.rank, s)] = dict(step.chunks)
            t = yield from predata.transport.write_step(comm, step)
            total += t
            yield from comm.sleep(io_interval)
        run.visible[comm.rank] = total

    app_world.spawn(app_main)
    eng.run()
    return run
