"""Schedule-perturbation fuzzer.

The simulation engine's event queue breaks ``(time, priority)`` ties by
insertion order.  Any place where the *physics* of a run accidentally
depends on that arbitrary order — one staging rank's fetch landing
before another's at the same instant, a reduce consuming its inputs in
queue order — is a hidden race.  The fuzzer hunts those: it re-runs a
workload N times, each time with a differently seeded
:class:`~repro.sim.engine.SeededTieBreaker` that randomises the order
of simultaneous same-priority events, and asserts the physics-level
result fingerprint (:func:`~repro.check.fingerprint.result_fingerprint`)
is identical to the unperturbed baseline.

Each run also records a :class:`~repro.check.trace.ScheduleTrace`; the
report keeps the executed-schedule hashes as proof that the fuzzer
explored genuinely different schedules rather than re-running one.  On
divergence the report carries a minimized event-trace diff pinpointing
the first reordered event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.check.trace import ScheduleTrace, minimized_trace_diff
from repro.sim import SeededTieBreaker, TieBreaker

__all__ = ["FuzzRun", "FuzzReport", "ScheduleFuzzer", "fuzz_schedule"]

#: ``runner(tie_breaker, schedule_trace) -> result fingerprint`` —
#: builds a fresh engine + workload per call, threading both hooks in.
Runner = Callable[[Optional[TieBreaker], ScheduleTrace], str]


@dataclass
class FuzzRun:
    """One perturbed execution."""

    seed: Optional[int]  # None marks the unperturbed baseline
    result_hash: str
    schedule_hash: str
    nevents: int
    trace: list = field(repr=False, default_factory=list)

    @property
    def label(self) -> str:
        return "baseline" if self.seed is None else f"seed {self.seed}"


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    baseline: FuzzRun
    runs: list[FuzzRun]
    #: human-readable divergence reports (empty on success)
    divergences: list[str] = field(default_factory=list)

    @property
    def result_invariant(self) -> bool:
        """True when every perturbed run reproduced the baseline result."""
        return not self.divergences

    @property
    def distinct_schedules(self) -> int:
        """How many genuinely different executed schedules were seen."""
        hashes = {self.baseline.schedule_hash}
        hashes.update(r.schedule_hash for r in self.runs)
        return len(hashes)

    def summary(self) -> str:
        """One-line verdict for CLI output."""
        verdict = "INVARIANT" if self.result_invariant else "DIVERGED"
        return (
            f"{verdict}: {len(self.runs)} perturbed run(s), "
            f"{self.distinct_schedules} distinct schedule(s), "
            f"{len(self.divergences)} divergence(s); "
            f"baseline fingerprint {self.baseline.result_hash[:16]}..."
        )


class ScheduleFuzzer:
    """Drives N seeded re-executions of one workload runner.

    Parameters
    ----------
    runner:
        Callable building and running a *fresh* workload; receives the
        tie-breaker (None for the baseline) and a ScheduleTrace to
        attach, returns the run's result fingerprint.
    keep_traces:
        Retain full event traces on each FuzzRun (needed for diffs;
        turn off to bound memory on very long runs).
    """

    def __init__(self, runner: Runner, *, keep_traces: bool = True):
        self.runner = runner
        self.keep_traces = keep_traces

    def _one(self, seed: Optional[int]) -> FuzzRun:
        trace = ScheduleTrace()
        tb = None if seed is None else SeededTieBreaker(seed)
        result_hash = self.runner(tb, trace)
        return FuzzRun(
            seed=seed,
            result_hash=result_hash,
            schedule_hash=trace.schedule_hash,
            nevents=trace.count,
            trace=trace.events if self.keep_traces else [],
        )

    def run(self, n: int, *, base_seed: int = 0) -> FuzzReport:
        """Baseline + ``n`` perturbed executions with seeds base_seed..+n-1."""
        if n < 1:
            raise ValueError("need at least one perturbed run")
        baseline = self._one(None)
        runs: list[FuzzRun] = []
        divergences: list[str] = []
        for i in range(n):
            run = self._one(base_seed + i)
            runs.append(run)
            if run.result_hash != baseline.result_hash:
                diff = minimized_trace_diff(
                    baseline.trace,
                    run.trace,
                    names=("baseline", run.label),
                )
                divergences.append(
                    f"{run.label}: result fingerprint "
                    f"{run.result_hash[:16]}... != baseline "
                    f"{baseline.result_hash[:16]}...\n{diff}"
                )
        return FuzzReport(baseline=baseline, runs=runs, divergences=divergences)


def fuzz_schedule(runner: Runner, n: int, *, base_seed: int = 0) -> FuzzReport:
    """One-shot convenience wrapper around :class:`ScheduleFuzzer`."""
    return ScheduleFuzzer(runner).run(n, base_seed=base_seed)
