"""Verification subsystem: is the reproduction computing the right thing?

Three independent pillars, usable as a library, a pytest plugin
(:mod:`repro.check.pytest_plugin`) and a CLI (``python -m repro check``):

- **Schedule-perturbation fuzzing** (:mod:`repro.check.fuzzer`) —
  re-run a workload under seeded randomized tie-breaking of
  simultaneous engine events and assert the physics-level result
  fingerprint is invariant; divergences come with a minimized
  event-trace diff.
- **Pipeline conservation invariants** (:mod:`repro.check.invariants`)
  — an off-by-default ``env.check`` sink recording chunk, byte, credit
  and memory ledgers plus the §IV.A scheduling rule, verified at
  drain.
- **Differential operator oracles** (:mod:`repro.check.oracle`) —
  every built-in operator's staged single-pass output compared against
  an offline numpy reference on the concatenated global data.
"""

from repro.check.fingerprint import digest_value, result_fingerprint
from repro.check.fuzzer import (
    FuzzReport,
    FuzzRun,
    ScheduleFuzzer,
    fuzz_schedule,
)
from repro.check.invariants import Checker, InvariantViolation
from repro.check.oracle import OracleResult, check_workload, run_differential
from repro.check.stream import StreamChecker
from repro.check.tenancy import MultiTenantChecker
from repro.check.trace import ScheduleTrace, minimized_trace_diff
from repro.check.workloads import (
    OPERATOR_KINDS,
    WorkloadRun,
    make_operators,
    run_workload,
)

__all__ = [
    "Checker",
    "FuzzReport",
    "FuzzRun",
    "InvariantViolation",
    "MultiTenantChecker",
    "OPERATOR_KINDS",
    "OracleResult",
    "ScheduleFuzzer",
    "ScheduleTrace",
    "StreamChecker",
    "WorkloadRun",
    "check_workload",
    "digest_value",
    "fuzz_schedule",
    "make_operators",
    "minimized_trace_diff",
    "result_fingerprint",
    "run_differential",
    "run_workload",
]
