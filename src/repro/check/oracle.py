"""Differential operator oracles.

Every built-in operator runs through the full staged pipeline
(compute-side first pass, allgather aggregation, streamed Map,
shuffle, Reduce, Finalize) on partial per-rank chunks.  The oracle for
each operator recomputes the *same answer the slow way*: an offline
single-process numpy reference over the concatenated global data
captured before the pipeline touched it.  Agreement means the staged
single-pass implementation computed the right physics; disagreement is
a correctness bug, not a scheduling artifact.

:func:`run_differential` runs every oracle on ``seeds`` independently
seeded workloads and returns one :class:`OracleResult` per
(operator, seed) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.check.workloads import OPERATOR_KINDS, WorkloadRun, run_workload

__all__ = ["OracleResult", "check_workload", "run_differential"]


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one operator oracle on one seeded workload."""

    operator: str
    seed: int
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        tag = "PASS" if self.ok else "FAIL"
        msg = f" — {self.detail}" if self.detail and not self.ok else ""
        return f"[{tag}] {self.operator} (seed {self.seed}){msg}"


class _OracleFailure(AssertionError):
    pass


def _fail(msg: str):
    raise _OracleFailure(msg)


def _concat_inputs(run: WorkloadRun, step: int, var: str) -> np.ndarray:
    """Global data: per-rank pristine chunks concatenated in rank order."""
    return np.concatenate(
        [run.inputs[(r, step)][var] for r in range(run.nprocs)], axis=0
    )


def _canon_rows(rows: np.ndarray) -> np.ndarray:
    """Rows in a canonical (lexicographic) order for multiset compare."""
    rows = np.atleast_2d(rows)
    if rows.shape[0] == 0:
        return rows
    order = np.lexsort(rows.T[::-1])
    return rows[order]


def _rows_multiset_equal(a: np.ndarray, b: np.ndarray, what: str) -> None:
    a, b = _canon_rows(a), _canon_rows(b)
    if a.shape != b.shape:
        _fail(f"{what}: shape {a.shape} vs reference {b.shape}")
    if not np.array_equal(a, b):
        _fail(f"{what}: row multiset differs from reference")


def _gather_rows(per_rank: Iterable) -> np.ndarray:
    """Concatenate possibly-empty per-rank row blocks."""
    blocks = [np.atleast_2d(v) for v in per_rank if np.asarray(v).size]
    if not blocks:
        return np.empty((0, 0))
    return np.concatenate(blocks, axis=0)


def _reference_edges(col: np.ndarray, bins: int) -> np.ndarray:
    lo, hi = float(col.min()), float(col.max())
    if lo == hi:
        hi = lo + 1.0
    return np.linspace(lo, hi, bins + 1)


# -- per-operator oracles --------------------------------------------------


def _oracle_minmax(run: WorkloadRun, step: int, results: dict) -> None:
    data = _concat_inputs(run, step, "electrons")
    ref_mins = data.min(axis=0)
    ref_maxs = data.max(axis=0)
    for rank, res in results.items():
        if res is None:
            _fail(f"rank {rank}: minmax result missing")
        if res.count != data.shape[0]:
            _fail(f"rank {rank}: count {res.count} != {data.shape[0]}")
        if not np.allclose(res.mins, ref_mins, rtol=0, atol=0):
            _fail(f"rank {rank}: mins differ from reference")
        if not np.allclose(res.maxs, ref_maxs, rtol=0, atol=0):
            _fail(f"rank {rank}: maxs differ from reference")


def _oracle_histogram(run: WorkloadRun, step: int, results: dict) -> None:
    op = run.operators[0]
    col = _concat_inputs(run, step, "electrons")[:, op.column]
    edges = _reference_edges(col, op.bins)
    ref_counts, _ = np.histogram(col, bins=edges)
    owners = {r: v for r, v in results.items() if v is not None}
    if len(owners) != 1:
        _fail(f"expected exactly one tag-owning rank, got {sorted(owners)}")
    (res,) = owners.values()
    if not np.allclose(res["edges"], edges):
        _fail("bin edges differ from reference linspace")
    if not np.array_equal(res["counts"], ref_counts.astype(np.int64)):
        _fail("histogram counts differ from np.histogram reference")
    if int(res["counts"].sum()) != col.size:
        _fail("histogram does not conserve row count")


def _oracle_histogram2d(run: WorkloadRun, step: int, results: dict) -> None:
    op = run.operators[0]
    data = _concat_inputs(run, step, "electrons")
    cx, cy = op.columns
    ex = _reference_edges(data[:, cx], op.bins[0])
    ey = _reference_edges(data[:, cy], op.bins[1])
    ref, _, _ = np.histogram2d(data[:, cx], data[:, cy], bins=(ex, ey))
    owners = {r: v for r, v in results.items() if v is not None}
    if len(owners) != 1:
        _fail(f"expected exactly one tag-owning rank, got {sorted(owners)}")
    (res,) = owners.values()
    if not (np.allclose(res["edges"][0], ex) and np.allclose(res["edges"][1], ey)):
        _fail("2-D bin edges differ from reference")
    if not np.array_equal(res["counts"], ref.astype(np.int64)):
        _fail("2-D histogram counts differ from np.histogram2d reference")


def _oracle_sort(run: WorkloadRun, step: int, results: dict) -> None:
    op = run.operators[0]
    data = _concat_inputs(run, step, "electrons")
    buckets = [np.atleast_2d(results[r]) for r in sorted(results)]
    _rows_multiset_equal(_gather_rows(buckets), data, "sort output")
    prev_max = -np.inf
    for r, bucket in zip(sorted(results), buckets):
        if bucket.shape[0] == 0:
            continue
        keys = bucket[:, op.key_column]
        if np.any(np.diff(keys) < 0):
            _fail(f"rank {r}: bucket not sorted on key column")
        if keys[0] < prev_max:
            _fail(f"rank {r}: bucket overlaps the previous rank's range")
        prev_max = keys[-1]


def _oracle_bitmap(run: WorkloadRun, step: int, results: dict) -> None:
    op = run.operators[0]
    col = _concat_inputs(run, step, "electrons")[:, op.column]
    edges = _reference_edges(col, op.bins)
    all_values = np.concatenate(
        [np.asarray(results[r].values) for r in sorted(results)]
    )
    if not np.array_equal(np.sort(all_values), np.sort(col)):
        _fail("union of indexed values differs from the input column")
    rng = np.random.default_rng(run.seed + 99)
    for r in sorted(results):
        if not np.allclose(results[r].edges, edges):
            _fail(f"rank {r}: index edges differ from global reference")
    for _ in range(8):
        lo, hi = np.sort(rng.uniform(col.min(), col.max(), size=2))
        got = sum(int(results[r].query(lo, hi).nrows) for r in sorted(results))
        want = int(np.count_nonzero((col >= lo) & (col <= hi)))
        if got != want:
            _fail(f"range query [{lo:.4f}, {hi:.4f}]: {got} rows != {want}")


def _oracle_array_merge(run: WorkloadRun, step: int, results: dict) -> None:
    meta = next(iter(run.chunks.values()))["rho"]
    gdims = tuple(meta.global_dims)
    expected = np.zeros(gdims)
    covered = np.zeros(gdims, dtype=bool)
    for (rank, s), vals in run.inputs.items():
        if s != step:
            continue
        lo = run.chunks[(rank, s)]["rho"].offsets[0]
        chunk = vals["rho"]
        expected[lo : lo + chunk.shape[0]] = chunk
        covered[lo : lo + chunk.shape[0]] = True
    if not covered.all():
        _fail("reference reconstruction incomplete (bad chunk metadata)")
    rebuilt = np.full(gdims, np.nan)
    for r in sorted(results):
        merged = results[r]
        if "rho" not in merged:
            continue
        s_lo, slab = merged["rho"]
        rebuilt[s_lo : s_lo + slab.shape[0]] = slab
    if np.isnan(rebuilt).any():
        _fail("merged slabs do not cover the global array")
    if not np.array_equal(rebuilt, expected):
        _fail("merged global array differs from concatenated chunks")


def _oracle_filter(run: WorkloadRun, step: int, results: dict) -> None:
    op = run.operators[0]
    data = _concat_inputs(run, step, "electrons")
    col = data[:, op.column]
    ref = data[(col >= op.lo) & (col <= op.hi)]
    got = _gather_rows(results[r]["rows"] for r in sorted(results))
    if ref.shape[0] == 0:
        if got.shape[0] != 0:
            _fail(f"filter kept {got.shape[0]} rows, reference kept none")
    else:
        _rows_multiset_equal(got, ref, "filter output")
    for r in sorted(results):
        if results[r]["global_kept"] != ref.shape[0]:
            _fail(
                f"rank {r}: global_kept {results[r]['global_kept']} "
                f"!= {ref.shape[0]}"
            )


def _oracle_subsample(run: WorkloadRun, step: int, results: dict) -> None:
    op = run.operators[0]
    stride = max(round(1.0 / op.fraction), 1)
    ref = np.concatenate(
        [run.inputs[(r, step)]["electrons"][::stride] for r in range(run.nprocs)],
        axis=0,
    )
    got = _gather_rows(results[r]["rows"] for r in sorted(results))
    _rows_multiset_equal(got, ref, "subsample output")
    for r in sorted(results):
        if results[r]["global_rows"] != ref.shape[0]:
            _fail(f"rank {r}: global_rows != {ref.shape[0]}")


def _oracle_precision_reduce(run: WorkloadRun, step: int, results: dict) -> None:
    saved = 0
    for r in range(run.nprocs):
        data = run.inputs[(r, step)]["electrons"]
        if data.dtype == np.float64:
            saved += data.nbytes - data.astype(np.float32).nbytes
    for r in sorted(results):
        if results[r]["global_bytes_saved"] != saved:
            _fail(
                f"rank {r}: global_bytes_saved "
                f"{results[r]['global_bytes_saved']} != {saved}"
            )


_ORACLES = {
    "minmax": _oracle_minmax,
    "histogram": _oracle_histogram,
    "histogram2d": _oracle_histogram2d,
    "sort": _oracle_sort,
    "bitmap": _oracle_bitmap,
    "array_merge": _oracle_array_merge,
    "filter": _oracle_filter,
    "subsample": _oracle_subsample,
    "precision_reduce": _oracle_precision_reduce,
}


def check_workload(run: WorkloadRun) -> OracleResult:
    """Apply the matching oracle to every step of a finished workload."""
    oracle = _ORACLES[run.kind]
    try:
        per_step = run.results()
        if not per_step:
            _fail("pipeline produced no results")
        for step in sorted(per_step):
            oracle(run, step, per_step[step])
    except _OracleFailure as exc:
        return OracleResult(run.kind, run.seed, False, str(exc))
    return OracleResult(run.kind, run.seed, True)


def run_differential(
    seeds: tuple = (1, 2, 3),
    kinds: Optional[Iterable[str]] = None,
    **workload_kwargs,
) -> list[OracleResult]:
    """Run every oracle on every seed; returns all results (no raise)."""
    out = []
    for kind in kinds or OPERATOR_KINDS:
        for seed in seeds:
            run = run_workload(kind, seed=seed, **workload_kwargs)
            out.append(check_workload(run))
    return out
