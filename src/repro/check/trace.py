"""Executed-schedule recording and minimized trace diffs.

A :class:`ScheduleTrace` attaches to ``Engine.schedule_trace`` and
records every event pop as ``(time, priority, label)``, maintaining a
running SHA-256 over the stream — the *schedule hash*.  Two runs with
the same tie-breaker seed produce the same hash (replay determinism);
two runs whose seeds actually reordered simultaneous events produce
different hashes, which is how the fuzzer proves it explored distinct
schedules and not just re-ran the same one N times.

The hash deliberately excludes the tie-breaker sub-key and the
insertion sequence number: it fingerprints *what executed when*, not
the random numbers that produced the order.

:func:`minimized_trace_diff` renders the difference between two traces
for divergence reports: the common prefix and suffix are trimmed, so a
hidden ordering race shows up as a short window around the first
reordered event instead of two full event logs.
"""

from __future__ import annotations

import hashlib
from typing import Optional

__all__ = ["ScheduleTrace", "minimized_trace_diff"]


def _label(event) -> str:
    """Stable human-readable identity of one queue entry."""
    kind = type(event).__name__
    name = getattr(event, "name", "")
    if name:
        return f"{kind}:{name}"
    delay = getattr(event, "delay", None)
    if delay is not None:
        return f"{kind}:{delay:g}"
    return kind


class ScheduleTrace:
    """Records event pops; exposes the executed-schedule hash.

    Parameters
    ----------
    max_events:
        Cap on retained ``(time, priority, label)`` tuples (the hash
        and the pop counter always cover the full run).  ``None``
        keeps everything — fine for the small fuzz workloads.
    """

    def __init__(self, max_events: Optional[int] = 200_000):
        self.max_events = max_events
        self.events: list[tuple[float, int, str]] = []
        self.count = 0
        self._hash = hashlib.sha256()

    def record(self, t: float, priority: int, sub: int, seq: int, event) -> None:
        """Engine callback: one event popped off the queue."""
        label = _label(event)
        self._hash.update(f"{t:.9f}|{priority}|{label};".encode())
        self.count += 1
        if self.max_events is None or len(self.events) < self.max_events:
            self.events.append((t, priority, label))

    @property
    def schedule_hash(self) -> str:
        """SHA-256 over every ``(time, priority, label)`` popped so far."""
        return self._hash.hexdigest()

    def __repr__(self) -> str:
        return (
            f"ScheduleTrace(count={self.count}, "
            f"hash={self.schedule_hash[:12]}...)"
        )


def _fmt(entry: tuple[float, int, str]) -> str:
    t, prio, label = entry
    return f"t={t:.6f} prio={prio} {label}"


def minimized_trace_diff(
    a: list[tuple[float, int, str]],
    b: list[tuple[float, int, str]],
    *,
    context: int = 3,
    max_lines: int = 40,
    names: tuple[str, str] = ("baseline", "perturbed"),
) -> str:
    """Minimal window where two event traces diverge, with context.

    Trims the common prefix and common suffix, then renders the
    remaining windows side by side (prefixed ``-``/``+``).  Returns
    ``"traces identical"`` when there is nothing to show.
    """
    if a == b:
        return "traces identical"
    lo = 0
    limit = min(len(a), len(b))
    while lo < limit and a[lo] == b[lo]:
        lo += 1
    hi = 0
    while (
        hi < limit - lo
        and a[len(a) - 1 - hi] == b[len(b) - 1 - hi]
    ):
        hi += 1
    a_win = a[max(0, lo - context) : len(a) - hi]
    b_win = b[max(0, lo - context) : len(b) - hi]
    lines = [
        f"first divergence at event #{lo} "
        f"({len(a)} vs {len(b)} events total, "
        f"{hi} common trailing events trimmed)"
    ]
    shared = a[max(0, lo - context) : lo]
    for e in shared:
        lines.append(f"  {_fmt(e)}")
    for e in a_win[len(shared) : len(shared) + max_lines]:
        lines.append(f"- [{names[0]}] {_fmt(e)}")
    if len(a_win) - len(shared) > max_lines:
        lines.append(f"- [{names[0]}] ... {len(a_win) - len(shared) - max_lines} more")
    for e in b_win[len(shared) : len(shared) + max_lines]:
        lines.append(f"+ [{names[1]}] {_fmt(e)}")
    if len(b_win) - len(shared) > max_lines:
        lines.append(f"+ [{names[1]}] ... {len(b_win) - len(shared) - max_lines} more")
    return "\n".join(lines)
