"""Stream conservation invariants (the pub/sub pillar).

Per (subscription, member) the :class:`StreamChecker` keeps four
ledgers — entitled, sent, delivered (first arrivals), deduped
(redundant arrivals) — plus the consumption log, and verifies at
drain:

- **wire conservation**: every send is accounted once,
  ``sent == delivered + deduped``;
- **exactly-once**: the delivered steps equal the entitled steps as
  sets with no step delivered twice — at-least-once transport plus
  client dedup yields exactly-once observation;
- **completion & order**: every delivered step is consumed, in
  entitlement order.

The checker is a passive recorder: hook methods only append to plain
lists/dicts, so binding one to a stream cannot perturb the schedule.
"""

from __future__ import annotations

from repro.check.invariants import InvariantViolation

__all__ = ["StreamChecker"]

Key = tuple[int, int]  # (subscription id, member)


class StreamChecker:
    """Conservation ledgers of one step stream."""

    def __init__(self):
        #: publish log, (var, step) in publish order
        self.published: list[tuple[str, int]] = []
        #: subscription id -> member count
        self.members: dict[int, int] = {}
        self.entitled: dict[Key, list[int]] = {}
        self.sent: dict[Key, int] = {}
        self.delivered: dict[Key, list[int]] = {}
        self.deduped: dict[Key, int] = {}
        self.consumed: dict[Key, list[int]] = {}

    # -- hooks (called by the stream) ---------------------------------------
    def on_published(self, var: str, step: int) -> None:
        """Record one publish of ``(var, step)``."""
        self.published.append((var, step))

    def on_subscribed(self, sub: int, nmembers: int, t: float) -> None:
        """Open the ledgers of subscription *sub* (*nmembers* readers)."""
        self.members[sub] = nmembers
        for m in range(nmembers):
            self.entitled.setdefault((sub, m), [])

    def on_entitled(self, sub: int, member: int, step: int) -> None:
        """Record that *member* became owed *step* (fed post-subscribe)."""
        self.entitled.setdefault((sub, member), []).append(step)

    def on_sent(self, sub: int, member: int, step: int) -> None:
        """Count one wire send (first transmission or redelivery)."""
        self.sent[(sub, member)] = self.sent.get((sub, member), 0) + 1

    def on_delivered(self, sub: int, member: int, step: int) -> None:
        """Record the first arrival of *step* at *member*."""
        self.delivered.setdefault((sub, member), []).append(step)

    def on_deduped(self, sub: int, member: int, step: int) -> None:
        """Count one redundant arrival absorbed by client dedup."""
        self.deduped[(sub, member)] = self.deduped.get((sub, member), 0) + 1

    def on_consumed(self, sub: int, member: int, step: int) -> None:
        """Record that *member* finished processing (acked) *step*."""
        self.consumed.setdefault((sub, member), []).append(step)

    # -- verification -------------------------------------------------------
    def violations(self) -> list[str]:
        """All conservation violations observed so far (empty = clean)."""
        out: list[str] = []
        keys = sorted(
            set(self.entitled)
            | set(self.delivered)
            | set(self.consumed)
            | set(self.sent)
        )
        for key in keys:
            sub, member = key
            tag = f"sub{sub}.m{member}"
            ent = self.entitled.get(key, [])
            dlv = self.delivered.get(key, [])
            dup = self.deduped.get(key, 0)
            snt = self.sent.get(key, 0)
            con = self.consumed.get(key, [])
            if snt != len(dlv) + dup:
                out.append(
                    f"{tag}: wire leak — sent {snt} != delivered "
                    f"{len(dlv)} + deduped {dup}"
                )
            if len(dlv) != len(set(dlv)):
                out.append(f"{tag}: step delivered twice (dedup escaped)")
            missing = sorted(set(ent) - set(dlv))
            extra = sorted(set(dlv) - set(ent))
            if missing:
                out.append(f"{tag}: entitled steps never delivered: {missing}")
            if extra:
                out.append(f"{tag}: delivered without entitlement: {extra}")
            if con != dlv:
                out.append(
                    f"{tag}: consumption mismatch — delivered {dlv}, "
                    f"consumed {con}"
                )
        return out

    def verify(self) -> None:
        """Raise :class:`InvariantViolation` on any dirty ledger."""
        problems = self.violations()
        if problems:
            raise InvariantViolation(
                "stream conservation violated:\n" + "\n".join(problems)
            )
