"""Pipeline conservation invariants (the ``env.check`` sink).

A :class:`Checker` binds to an engine exactly like the observability
sink: ``Checker().bind(engine)`` sets ``engine.check``, and every
accounting site across client/scheduler/staging/flow/faults guards on
``env.check is not None`` — off by default, byte-identical when
disabled, and a pure observer when enabled (hooks only mutate checker
state, never the simulation).

Invariants verified at drain:

1. **Chunk conservation** — every packed partial data chunk is
   fetched-and-mapped or degraded-replayed at least once; *exactly*
   once when no fault, restart or retry was recorded (failovers
   legitimately re-fetch).
2. **Byte ledger** — bytes packed == bytes mapped + bytes degraded,
   accounted per chunk key across failovers.
3. **Credit ledger** — every granted byte credit is released by drain
   (and, when the run's :class:`~repro.flow.FlowControl` is supplied,
   its banks and pools read zero).
4. **Memory ledger** — compute-side buffers all committed and node
   memory ledgers back to zero at drain.
5. **Scheduling rule** (§IV.A) — no RDMA fetch is admitted while its
   source compute node is inside a declared collective-communication
   window, except through the scheduler's explicit ``max_defer``
   anti-starvation override (recorded as *forced*).

Call :meth:`Checker.verify` after the run drains; it raises
:class:`InvariantViolation` listing every broken invariant.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

__all__ = ["Checker", "InvariantViolation"]

#: relative slack for float byte ledgers
_REL_TOL = 1e-9


class InvariantViolation(AssertionError):
    """One or more pipeline invariants failed; message lists them all."""


class Checker:
    """Conservation-invariant recorder for one simulation run."""

    def __init__(self):
        self.env = None
        #: chunk key -> packed logical bytes (write-path packing)
        self.packed: dict = {}
        #: chunk key -> completed RDMA fetches
        self.fetched: Counter = Counter()
        #: chunk key -> Map completions on the staging side
        self.mapped: Counter = Counter()
        #: chunk key -> degraded/synchronous-fallback dispositions
        self.degraded: Counter = Counter()
        #: chunk key -> commits (buffer releases)
        self.committed: Counter = Counter()
        #: outstanding credit grants: key -> (staging rank, nbytes)
        self.credits_open: dict = {}
        self.credit_grants = 0
        self.credit_releases = 0
        #: movement admissions: (node_id, in_comm_phase, forced)
        self.admissions: list[tuple[int, bool, bool]] = []
        self.forced_admissions = 0
        #: step re-executions forced by recovery, per staging rank
        self.restarts: Counter = Counter()
        #: injected faults: (kind, detail)
        self.faults: list[tuple[str, object]] = []
        #: fetch retries recorded by the resilient fetch path
        self.retries = 0
        #: set by an external actor (e.g. the jobs preemption governor)
        #: whose intervention legally duplicates or re-routes work
        self.external_perturbation = False

    # -- binding ----------------------------------------------------------
    def bind(self, env) -> "Checker":
        """Attach to *env* as its ``check`` sink; returns self."""
        self.env = env
        env.check = self
        return self

    # -- hook API (every call is a pure recording) ------------------------
    def on_packed(self, key, nbytes: float, node_id: int) -> None:
        """Client packed chunk *key* (*nbytes* logical) on *node_id*."""
        self.packed[key] = float(nbytes)

    def on_fetched(self, key, nbytes: float) -> None:
        """A staging-side RDMA fetch of chunk *key* completed."""
        self.fetched[key] += 1

    def on_mapped(self, key, nbytes: float) -> None:
        """Chunk *key* finished its Map pass on a staging process."""
        self.mapped[key] += 1

    def on_degraded(self, key, nbytes: float) -> None:
        """Chunk *key* took the synchronous fallback (degraded) path."""
        self.degraded[key] += 1

    def on_committed(self, key) -> None:
        """The compute-side buffer of chunk *key* was released."""
        self.committed[key] += 1

    def on_credit_granted(self, key, nbytes: float, rank: int) -> None:
        """Flow control granted *nbytes* of credit for *key* to *rank*."""
        self.credits_open[key] = (rank, float(nbytes))
        self.credit_grants += 1

    def on_credit_released(self, key, rank: int) -> None:
        """The credit grant for chunk *key* was returned to the bank."""
        self.credits_open.pop(key, None)
        self.credit_releases += 1

    def on_movement_admitted(
        self, node_id: int, *, in_phase: bool, forced: bool
    ) -> None:
        """Scheduler admitted a fetch from *node_id* (§IV.A rule)."""
        self.admissions.append((node_id, in_phase, forced))
        if forced:
            self.forced_admissions += 1

    def on_restart(self, rank: int, step: int) -> None:
        """Recovery forced staging rank *rank* to re-execute *step*."""
        self.restarts[rank] += 1

    def on_retry(self, key, attempt: int) -> None:
        """The resilient fetch path retried chunk *key* (*attempt*-th)."""
        self.retries += 1

    def on_fault(self, kind: str, detail) -> None:
        """The injector fired a fault of *kind* (run is now perturbed)."""
        self.faults.append((kind, detail))

    # -- verification ------------------------------------------------------
    @property
    def perturbed(self) -> bool:
        """True when faults/restarts/retries may legally duplicate work."""
        return (
            bool(self.faults)
            or bool(self.restarts)
            or self.retries > 0
            or self.external_perturbation
        )

    def violations(self, predata=None) -> list[str]:
        """Every broken invariant, as human-readable one-liners.

        ``predata`` (optional :class:`~repro.core.middleware.PreDatA`)
        adds live end-state checks: outstanding compute buffers, flow
        credit banks/pools, and node memory ledgers.
        """
        out: list[str] = []
        exact = not self.perturbed

        # 1 + 2: chunk and byte conservation ------------------------------
        bytes_packed = sum(self.packed.values())
        bytes_accounted = 0.0
        for key, nbytes in sorted(self.packed.items()):
            n_map = self.mapped.get(key, 0)
            n_deg = self.degraded.get(key, 0)
            if n_map + n_deg == 0:
                out.append(
                    f"chunk {key}: packed {nbytes:g} B but never mapped "
                    "nor degraded (lost dump)"
                )
                continue
            bytes_accounted += nbytes
            if exact and n_map + n_deg != 1:
                out.append(
                    f"chunk {key}: disposed {n_map + n_deg}x "
                    f"(mapped {n_map}, degraded {n_deg}) in a fault-free "
                    "run — expected exactly once"
                )
            if exact and self.fetched.get(key, 0) > 1:
                out.append(
                    f"chunk {key}: fetched {self.fetched[key]}x in a "
                    "fault-free run — expected exactly once"
                )
        if abs(bytes_packed - bytes_accounted) > _REL_TOL * max(bytes_packed, 1.0):
            out.append(
                f"byte ledger: {bytes_packed:g} B packed but only "
                f"{bytes_accounted:g} B mapped-or-degraded"
            )
        for key in sorted(self.mapped, key=repr):
            if key not in self.packed:
                out.append(f"chunk {key}: mapped but never packed")

        # 3: credit ledger -------------------------------------------------
        if self.credits_open:
            leaked = ", ".join(
                f"{k!r}->{rank}:{nb:g}B"
                for k, (rank, nb) in sorted(self.credits_open.items(), key=repr)
            )
            out.append(
                f"credit ledger: {len(self.credits_open)} grant(s) never "
                f"released at drain ({leaked})"
            )

        # 5: scheduling rule ----------------------------------------------
        for node_id, in_phase, forced in self.admissions:
            if in_phase and not forced:
                out.append(
                    f"scheduling: RDMA fetch admitted inside node "
                    f"{node_id}'s communication window without the "
                    "max_defer override"
                )

        # live end-state (needs the facade) -------------------------------
        if predata is not None:
            out.extend(self._end_state_violations(predata))
        return out

    def _end_state_violations(self, predata) -> list[str]:
        out: list[str] = []
        client = predata.client
        if client.outstanding_buffers:
            out.append(
                f"memory ledger: {client.outstanding_buffers} compute-side "
                "buffer(s) never released at drain"
            )
        flow = getattr(predata, "flow", None)
        if flow is not None:
            outstanding = flow.outstanding_credit_bytes()
            if outstanding > _REL_TOL:
                out.append(
                    f"credit ledger: flow banks still hold {outstanding:g} B "
                    "at drain"
                )
            for node_id, pool in sorted(flow.pools.items()):
                if pool.used > _REL_TOL * max(pool.capacity, 1.0):
                    out.append(
                        f"memory ledger: buffer pool of node {node_id} "
                        f"still holds {pool.used:g} B at drain"
                    )
        machine = getattr(predata, "machine", None)
        if machine is not None:
            for node_id in machine.staging_node_ids:
                node = machine.node(node_id)
                used = node.memory_used
                if used > _REL_TOL * node.config.memory_bytes:
                    out.append(
                        f"memory ledger: staging node {node_id} ledger "
                        f"reads {used:g} B at drain (expected 0)"
                    )
        return out

    def verify(self, predata=None) -> None:
        """Raise :class:`InvariantViolation` if any invariant is broken."""
        broken = self.violations(predata)
        if broken:
            raise InvariantViolation(
                f"{len(broken)} pipeline invariant(s) violated:\n  - "
                + "\n  - ".join(broken)
            )

    def summary(self) -> str:
        """One-line accounting overview for CLI output."""
        return (
            f"{len(self.packed)} chunk(s) packed, "
            f"{sum(self.mapped.values())} mapped, "
            f"{sum(self.degraded.values())} degraded, "
            f"{self.credit_grants} credit grant(s)/"
            f"{self.credit_releases} release(s), "
            f"{len(self.admissions)} movement admission(s) "
            f"({self.forced_admissions} forced), "
            f"{sum(self.restarts.values())} restart(s), "
            f"{len(self.faults)} fault(s)"
        )

    def __repr__(self) -> str:
        return f"Checker({self.summary()})"


def attach(env) -> Optional[Checker]:
    """Convenience: bind a fresh Checker to *env* and return it."""
    return Checker().bind(env)
