"""Pytest integration for the verification subsystem.

Registered from the repository-root ``conftest.py`` via
``pytest_plugins = ["repro.check.pytest_plugin"]``.  Provides:

- ``@pytest.mark.fuzz_schedule(n=..., base_seed=...)`` — parametrizes
  the test over ``n`` tie-breaker seeds; the test requests the
  ``fuzz_seed`` and/or ``tie_breaker`` fixtures and runs once per
  perturbed schedule.
- ``tie_breaker`` fixture — a :class:`~repro.sim.SeededTieBreaker`
  for the current ``fuzz_seed`` (or None outside a fuzz run, keeping
  the workload on the byte-identical default schedule).
- ``invariant_checker`` fixture — a fresh
  :class:`~repro.check.Checker` to bind to an engine; tests call
  ``checker.verify(predata)`` after drain.
- ``schedule_trace`` fixture — a fresh
  :class:`~repro.check.ScheduleTrace` to attach to an engine.
"""

from __future__ import annotations

import pytest

from repro.check.invariants import Checker
from repro.check.trace import ScheduleTrace
from repro.sim import SeededTieBreaker

_MARKER = "fuzz_schedule"


def pytest_configure(config):
    """Register the ``fuzz_schedule`` marker."""
    config.addinivalue_line(
        "markers",
        f"{_MARKER}(n=5, base_seed=0): run the test once per seeded "
        "schedule perturbation; request the fuzz_seed / tie_breaker "
        "fixtures to pick up the current seed.",
    )


def pytest_generate_tests(metafunc):
    """Parametrize ``fuzz_seed`` over the marker's seed range."""
    marker = metafunc.definition.get_closest_marker(_MARKER)
    if marker is None or "fuzz_seed" not in metafunc.fixturenames:
        return
    n = int(marker.kwargs.get("n", marker.args[0] if marker.args else 5))
    base = int(marker.kwargs.get("base_seed", 0))
    metafunc.parametrize(
        "fuzz_seed", range(base, base + n), ids=[f"seed{s}" for s in range(base, base + n)]
    )


@pytest.fixture
def fuzz_seed():
    """Current perturbation seed; overridden by @fuzz_schedule params."""
    return None


@pytest.fixture
def tie_breaker(fuzz_seed):
    """SeededTieBreaker for the current seed (None → default schedule)."""
    if fuzz_seed is None:
        return None
    return SeededTieBreaker(fuzz_seed)


@pytest.fixture
def invariant_checker():
    """Fresh conservation-invariant checker to bind to an engine."""
    return Checker()


@pytest.fixture
def schedule_trace():
    """Fresh executed-schedule recorder to attach to an engine."""
    return ScheduleTrace()
