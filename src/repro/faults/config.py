"""Resilience knobs for the staging pipeline.

All times are simulated seconds.  ``StagingConfig.resilience`` holds an
instance of :class:`ResilienceConfig` (or ``None``, which disables the
whole failure-handling path and preserves the exact pre-resilience
behaviour of the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Failure detection / recovery parameters.

    Attributes
    ----------
    heartbeat_interval:
        Period of the staging-rank heartbeats (and of the monitor's
        liveness sweep).
    heartbeat_timeout:
        Silence threshold after which a staging rank is declared dead.
        Detection latency is roughly this value plus one sweep.
    fetch_timeout:
        Per-attempt wall clock allowed for one RDMA fetch before it is
        abandoned and retried.
    fetch_retry_backoff:
        Initial delay before re-issuing a failed fetch; doubles on every
        further attempt (exponential backoff).
    fetch_max_attempts:
        Total fetch attempts before :class:`~repro.faults.errors.FetchTimeout`.
    min_survivors:
        When fewer than this many staging ranks remain alive, the
        staging transport degrades gracefully to synchronous
        in-compute-node writes (no dump is ever lost, at the price of
        synchronous I/O time in the main loop).
    """

    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    fetch_timeout: float = 10.0
    fetch_retry_backoff: float = 0.05
    fetch_max_attempts: int = 4
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat parameters must be positive")
        if self.heartbeat_timeout < self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must cover >= one interval")
        if self.fetch_timeout <= 0 or self.fetch_retry_backoff < 0:
            raise ValueError("fetch timing parameters must be positive")
        if self.fetch_max_attempts < 1:
            raise ValueError("need at least one fetch attempt")
        if self.min_survivors < 0:
            raise ValueError("min_survivors must be >= 0")
