"""Deterministic, seeded fault injection driven by the event engine.

The :class:`FaultInjector` schedules failures against the machine model
through the fault hooks added for resilience work:

- ``crash_node`` / ``crash_staging_node`` -> :meth:`Node.fail`
- ``degrade_link``                        -> :meth:`Network.degrade_link`
- ``stall_filesystem``                    -> :meth:`ParallelFileSystem.stall_window`
- ``drop_fetch`` / ``slow_fetch`` / ``random_fetch_faults``
                                          -> the staging client's fetch hook
- ``corrupt_chunk``    -> the fetch completes but delivers garbage bytes;
  the staging side detects the checksum mismatch and re-fetches (needs
  the resilient fetch path)
- ``withhold_fetch``   -> a *silent* non-answer: the RDMA get is posted
  but never completes, distinct from ``drop_fetch``'s error path — only
  the puller's per-attempt timeout ends the attempt
- ``partition_regions`` / ``slow_region`` -> extra cross-region latency
  windows on a :class:`~repro.machine.topology.RegionalTopology` network

Everything is driven either by explicit (time, target) plans or by a
seeded ``numpy`` generator, so a fixed seed reproduces the exact same
failure scenario event-for-event — the property the chaos benchmark
asserts.  Constructing an injector with ``enabled=False`` turns every
method into a no-op, guaranteeing bit-identical behaviour with a run
that has no injector at all.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules deterministic failures on a :class:`~repro.machine.machine.Machine`.

    Parameters
    ----------
    env: simulation engine.
    machine: machine model to break.
    seed: seed for all randomised choices.
    enabled: when False, every injection method is a no-op.
    """

    def __init__(self, env, machine, *, seed: int = 0, enabled: bool = True):
        self.env = env
        self.machine = machine
        self.seed = seed
        self.enabled = enabled
        self.rng = np.random.default_rng(seed)
        #: chronological record of faults actually fired: (kind, time, detail)
        self.injected: list[tuple[str, float, object]] = []
        # fetch fault plans: (compute_rank, step) -> list of per-attempt
        # (mode, delay) entries; attempt indexes into the list.
        self._fetch_plans: dict[tuple[int, int], list[tuple[str, float]]] = {}
        self._random_fetch: Optional[dict] = None

    def _record(self, kind: str, at: float, detail) -> None:
        """Log one fired fault (and notify the invariant checker)."""
        self.injected.append((kind, at, detail))
        if self.env.check is not None:
            self.env.check.on_fault(kind, detail)

    # -- scheduling helpers ----------------------------------------------
    def _at(self, at: float, fire) -> None:
        """Run ``fire()`` at simulated time *at* (now if already past)."""

        def body() -> Generator:
            delay = max(0.0, at - self.env.now)
            if delay > 0:
                yield self.env.timeout(delay)
            fire()
            return None

        self.env.process(body(), name=f"fault@{at:g}")

    # -- node crashes -----------------------------------------------------
    def crash_node(self, node_id: int, *, at: float) -> None:
        """Kill machine node *node_id* at time *at*."""
        if not self.enabled:
            return

        def fire() -> None:
            node = self.machine.node(node_id)
            if node.alive:
                node.fail()
                self._record("crash", self.env.now, node_id)

        self._at(at, fire)

    def crash_staging_node(self, *, at: float, index: Optional[int] = None) -> int:
        """Kill one staging node at *at*; seeded-random when no index.

        Returns the chosen node id (even when disabled, so experiment
        code can report the plan).
        """
        ids = list(self.machine.staging_node_ids)
        if not ids:
            raise ValueError("machine has no staging nodes")
        if index is None:
            index = int(self.rng.integers(0, len(ids)))
        node_id = ids[index % len(ids)]
        self.crash_node(node_id, at=at)
        return node_id

    # -- link / filesystem degradation ------------------------------------
    def degrade_link(
        self, node_id: int, *, at: float, duration: float, factor: float
    ) -> None:
        """NIC of *node_id* runs at *factor* of peak during the window."""
        if not self.enabled:
            return
        self.machine.network.degrade_link(node_id, at, at + duration, factor)
        self._record("degrade_link", at, (node_id, duration, factor))

    def stall_filesystem(
        self, *, at: float, duration: float, floor: float = 0.05
    ) -> None:
        """File system bandwidth clamped to *floor* of peak in the window."""
        if not self.enabled:
            return
        self.machine.filesystem.stall_window(at, at + duration, floor)
        self._record("fs_stall", at, (duration, floor))

    # -- fetch faults ------------------------------------------------------
    def drop_fetch(
        self, compute_rank: int, step: int, *, attempts: int = 1, delay: float = 0.0
    ) -> None:
        """Drop the first *attempts* fetch attempts of (rank, step).

        ``delay`` models how long the puller waits before the transport
        reports the descriptor failed.  Requires the resilient fetch
        path (retry + timeout) to make progress afterwards.
        """
        if not self.enabled:
            return
        plan = self._fetch_plans.setdefault((compute_rank, step), [])
        plan.extend([("drop", delay)] * attempts)

    def slow_fetch(self, compute_rank: int, step: int, *, delay: float) -> None:
        """Add *delay* seconds to the next fetch attempt of (rank, step)."""
        if not self.enabled:
            return
        self._fetch_plans.setdefault((compute_rank, step), []).append(
            ("slow", delay)
        )

    def corrupt_chunk(
        self, compute_rank: int, step: int, *, attempts: int = 1
    ) -> None:
        """Deliver garbage bytes for the first *attempts* fetches of
        (rank, step).

        The transfer itself succeeds — the staging side must notice via
        the pack-time checksum, reject the chunk and re-fetch, so this
        primitive requires the resilient fetch path (retry budget >
        *attempts*) to make progress.
        """
        if not self.enabled:
            return
        plan = self._fetch_plans.setdefault((compute_rank, step), [])
        plan.extend([("corrupt", 0.0)] * attempts)

    def withhold_fetch(
        self, compute_rank: int, step: int, *, attempts: int = 1
    ) -> None:
        """Silently withhold the first *attempts* fetch responses of
        (rank, step).

        Unlike :meth:`drop_fetch` (the transport *reports* the failed
        descriptor), a withheld fetch simply never answers: the attempt
        hangs until the puller's per-attempt timeout interrupts it, so
        progress requires the resilient fetch path.
        """
        if not self.enabled:
            return
        plan = self._fetch_plans.setdefault((compute_rank, step), [])
        plan.extend([("withhold", 0.0)] * attempts)

    # -- regional faults ---------------------------------------------------
    def partition_regions(
        self,
        region_a: str,
        region_b: str,
        *,
        at: float,
        duration: float,
        extra: float,
    ) -> None:
        """Cross-``(region_a, region_b)`` transfers posted during the
        window pay *extra* seconds of latency (a partition when *extra*
        exceeds the fetch timeout; schedule several short windows for a
        flapping link).  Requires a :class:`RegionalTopology` network.
        """
        if not self.enabled:
            return
        self.machine.network.region_extra_window(
            region_a, region_b, at, at + duration, extra
        )
        self._record("region_partition", at, (region_a, region_b, duration, extra))

    def slow_region(
        self, region: str, *, at: float, duration: float, extra: float
    ) -> None:
        """Every transfer into/out of *region* posted during the window
        pays *extra* seconds (a congested or distant site)."""
        if not self.enabled:
            return
        net = self.machine.network
        for other in net.topology.regions:
            if other != region:
                net.region_extra_window(region, other, at, at + duration, extra)
        self._record("slow_region", at, (region, duration, extra))

    def random_fetch_faults(
        self,
        *,
        drop_prob: float = 0.0,
        slow_prob: float = 0.0,
        slow_seconds: float = 0.5,
        drop_delay: float = 0.0,
    ) -> None:
        """Seeded per-attempt random fetch faults (first attempt only).

        Retries are never re-faulted, so a finite retry budget always
        converges; determinism comes from the injector seed plus the
        engine's deterministic event ordering.
        """
        if not self.enabled:
            return
        if drop_prob + slow_prob > 1.0:
            raise ValueError("drop_prob + slow_prob must be <= 1")
        self._random_fetch = {
            "drop_prob": drop_prob,
            "slow_prob": slow_prob,
            "slow_seconds": slow_seconds,
            "drop_delay": drop_delay,
        }

    def fetch_fault(
        self, compute_rank: int, step: int, attempt: int
    ) -> Optional[tuple[str, float]]:
        """The hook installed on the staging client.

        Returns ``None`` (no fault), ``("drop", delay)`` or
        ``("slow", delay)`` for this fetch attempt.
        """
        if not self.enabled:
            return None
        plan = self._fetch_plans.get((compute_rank, step))
        if plan and attempt < len(plan):
            mode, delay = plan[attempt]
            self._record(
                f"fetch_{mode}", self.env.now, (compute_rank, step, attempt)
            )
            return (mode, delay)
        if self._random_fetch and attempt == 0:
            rf = self._random_fetch
            u = float(self.rng.random())
            if u < rf["drop_prob"]:
                self._record(
                    "fetch_drop", self.env.now, (compute_rank, step, attempt)
                )
                return ("drop", rf["drop_delay"])
            if u < rf["drop_prob"] + rf["slow_prob"]:
                self._record(
                    "fetch_slow", self.env.now, (compute_rank, step, attempt)
                )
                return ("slow", rf["slow_seconds"])
        return None

    def arm(self, client) -> None:
        """Install the fetch-fault hook on a :class:`StagingClient`."""
        if self.enabled:
            client.fault_hook = self.fetch_fault

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, enabled={self.enabled}, "
            f"fired={len(self.injected)})"
        )
