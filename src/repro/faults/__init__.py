"""Deterministic fault injection + staging failure recovery.

The resilience subsystem: seeded failure scenarios scheduled on the
event engine (:class:`FaultInjector`), sim-time heartbeat liveness
(:class:`FailureDetector`), and the staging recovery/degradation
protocol (:class:`ResilienceController`), configured through
:class:`ResilienceConfig` on :class:`~repro.core.staging.StagingConfig`.

Injection primitives span node crashes, link/filesystem degradation,
and four fetch fault modes: ``drop`` (the transport reports a failed
descriptor), ``slow`` (delayed completion), ``corrupt_chunk`` (a
successful-looking completion carrying garbage bytes — detected by the
staging side's pack-time sha256 and re-fetched), and ``withhold_fetch``
(a *silent* non-answer that only the puller's per-attempt deadline
ends, distinct from ``drop``'s error path).  Regional primitives
(``partition_regions``/``slow_region``) need a
:class:`~repro.machine.topology.RegionalTopology` machine.  The
adversarial scenario library (:mod:`repro.scenarios`, THREATS.md)
composes these into named, seeded threat scenarios.
"""

from repro.faults.config import ResilienceConfig
from repro.faults.detector import FailureDetector
from repro.faults.errors import (
    FetchDropped,
    FetchTimeout,
    NoLiveStagers,
    RecoveryRestart,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import ResilienceController
from repro.machine.node import NodeFailure

__all__ = [
    "ResilienceConfig",
    "FailureDetector",
    "FaultInjector",
    "ResilienceController",
    "FetchDropped",
    "FetchTimeout",
    "NoLiveStagers",
    "RecoveryRestart",
    "NodeFailure",
]
