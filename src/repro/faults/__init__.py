"""Deterministic fault injection + staging failure recovery.

The resilience subsystem: seeded failure scenarios scheduled on the
event engine (:class:`FaultInjector`), sim-time heartbeat liveness
(:class:`FailureDetector`), and the staging recovery/degradation
protocol (:class:`ResilienceController`), configured through
:class:`ResilienceConfig` on :class:`~repro.core.staging.StagingConfig`.
"""

from repro.faults.config import ResilienceConfig
from repro.faults.detector import FailureDetector
from repro.faults.errors import (
    FetchDropped,
    FetchTimeout,
    NoLiveStagers,
    RecoveryRestart,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import ResilienceController
from repro.machine.node import NodeFailure

__all__ = [
    "ResilienceConfig",
    "FailureDetector",
    "FaultInjector",
    "ResilienceController",
    "FetchDropped",
    "FetchTimeout",
    "NoLiveStagers",
    "RecoveryRestart",
    "NodeFailure",
]
