"""Staging-area failure recovery: detection wiring + restart protocol.

The :class:`ResilienceController` ties the pieces together:

1. **Crash**: a staging node's ``fail()`` listener immediately kills the
   staging processes hosted on it (their work is lost); the rest of the
   world only learns of the death through heartbeats.
2. **Detection**: when the :class:`~repro.faults.detector.FailureDetector`
   declares ranks dead, the controller deactivates them in the staging
   world (pending collectives complete among survivors), remaps their
   compute clients onto survivors via the client's failover routing, and
   computes the globally agreed *restart step* — the minimum uncommitted
   step across survivors.
3. **Restart**: survivors are interrupted with
   :class:`~repro.faults.errors.RecoveryRestart` and re-run the step
   from the top in a fresh collective epoch.  Because compute-side
   buffers are only released at the per-step *commit barrier*, every
   uncommitted dump is still fetchable; the controller purges the dead
   ranks' request mailboxes and re-delivers all uncommitted dump notices
   to their new owners.
4. **Degradation**: when survivors drop below
   ``ResilienceConfig.min_survivors`` the client enters degraded mode —
   subsequent dumps go through the synchronous fallback transport
   (In-Compute-Node writes).  If *no* stager survives, the controller
   replays every uncommitted buffered dump through the fallback as
   well, so no dump is ever lost.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.adios.group import OutputStep
from repro.faults.config import ResilienceConfig
from repro.faults.detector import FailureDetector
from repro.faults.errors import RecoveryRestart
from repro.machine.node import NodeFailure

__all__ = ["ResilienceController"]


class _EnvComm:
    """Minimal communicator stand-in for fallback replay writes."""

    def __init__(self, env, rank: int = 0):
        self.env = env
        self.rank = rank


class ResilienceController:
    """Orchestrates failure detection and staging recovery.

    Parameters (duck-typed to avoid layering cycles)
    ------------------------------------------------
    env: simulation engine.
    machine: the :class:`~repro.machine.machine.Machine`.
    service: the :class:`~repro.core.staging.StagingService`.
    config: :class:`ResilienceConfig` timing/threshold knobs.
    fallback: :class:`~repro.adios.io.IOMethod` used for degraded and
        replayed writes (typically ``SyncMPIIO``).
    """

    def __init__(self, env, machine, service, config: ResilienceConfig, *, fallback=None):
        self.env = env
        self.machine = machine
        self.service = service
        self.world = service.world
        self.client = service.client
        self.config = config
        self.fallback = fallback
        self.detector = FailureDetector(
            env,
            interval=config.heartbeat_interval,
            timeout=config.heartbeat_timeout,
        )
        #: chronological protocol events: (kind, sim_time, detail)
        self.timeline: list[tuple[str, float, object]] = []
        self.epoch = 0
        self._armed = False

    def _event(self, kind: str, detail: object) -> None:
        """Record a protocol event on the timeline (and, when an
        observability sink is bound, mirror it as a trace instant)."""
        self.timeline.append((kind, self.env.now, detail))
        obs = self.env.obs
        if obs is not None:
            obs.instant(kind, "recovery", tid="controller", detail=repr(detail))
            obs.metrics.inc(f"recovery_{kind}")

    # -- wiring -----------------------------------------------------------
    def arm(self) -> None:
        """Install crash listeners + heartbeats (after ``service.start()``)."""
        if self._armed:
            return
        self._armed = True
        watched_nodes = set()
        for rank in range(self.world.size):
            node = self.machine.node(self.world.rank_nodes[rank])
            self.detector.watch(rank, lambda n=node: n.alive)
            if node.id not in watched_nodes:
                watched_nodes.add(node.id)
                node.add_failure_listener(self._on_node_crash)
        self.detector.on_failure(self._on_detected)
        self.detector.start()
        self.client._orphan_sink = self._replay_one
        self.env.process(self._supervisor(), name="resilience-supervisor")

    def _supervisor(self) -> Generator:
        """Stop the heartbeats once the staging service has wound down."""
        for proc in self.service._procs:
            if not proc.triggered:
                try:
                    yield proc
                except Exception:
                    pass  # a failed rank proc is still 'wound down'
        # If the service wound down *because* nodes crashed (e.g. every
        # stager died at once), detection must still run its course so
        # degradation/replay can salvage the uncommitted dumps — don't
        # silence the heartbeats while a death is pending detection.
        while self._undetected_dead_ranks():
            yield self.env.timeout(self.detector.interval)
        self.detector.stop()
        return None

    def _undetected_dead_ranks(self) -> list[int]:
        """Watched ranks whose node is down but not yet declared failed."""
        return [
            r
            for r in range(self.world.size)
            if not self.machine.node(self.world.rank_nodes[r]).alive
            and r not in self.detector.failed
        ]

    # -- crash-time action -------------------------------------------------
    def _on_node_crash(self, node) -> None:
        """Instantly kill staging processes hosted on the dead node."""
        self._event("crash", node.id)
        for rank in range(self.world.size):
            if self.world.rank_nodes[rank] != node.id:
                continue
            proc = self._rank_proc(rank)
            if proc is not None and proc.is_alive:
                proc.interrupt(NodeFailure(node.id))

    def _rank_proc(self, rank: int):
        procs = self.service._procs
        return procs[rank] if rank < len(procs) else None

    # -- detection-time recovery -------------------------------------------
    def _on_detected(self, ranks: list[int]) -> None:
        self._event("detected", list(ranks))
        for rank in ranks:
            self.world.deactivate_rank(rank)
            self.client.mark_stager_failed(rank)
        if self.client.flow is not None:
            # Move the dead ranks' outstanding byte credits to the
            # failover owners (routing already excludes the dead), so
            # adopted chunks release cleanly and budgets don't leak.
            for rank in ranks:
                self.client.flow.on_stager_failed(rank, self._flow_reroute)
        survivors = [
            r for r in self.world.active_ranks if r not in self.detector.failed
        ]
        if len(survivors) < self.config.min_survivors:
            self.client.enter_degraded_mode()
            self._event("degraded", len(survivors))
        if survivors:
            self._restart_survivors(survivors)
        else:
            self._purge_boxes()
            self.env.process(self._replay_all(), name="fallback-replay")

    def _restart_survivors(self, survivors: list[int]) -> None:
        alive_procs = {
            r: p
            for r in survivors
            if (p := self._rank_proc(r)) is not None and p.is_alive
        }
        if not alive_procs:
            # service already finished; only routing/degradation applies
            return
        self.epoch += 1
        restart_step = min(
            self.service._rank_step.get(r, 0) for r in alive_procs
        )
        self._event("recovery", {"step": restart_step, "epoch": self.epoch})
        for r in sorted(alive_procs):
            alive_procs[r].interrupt(RecoveryRestart(restart_step, self.epoch))
        self.world.reset_collectives()
        self._purge_boxes()
        # Dumps from steps that committed globally before the crash only
        # miss their release; uncommitted ones are re-delivered to the
        # failover owners for re-fetch.
        for (crank, step), request in sorted(self.client._requests_log.items()):
            if step < restart_step:
                self.client.commit(crank, step)
            else:
                self.env.process(
                    self._redeliver(crank, step, request),
                    name=f"redeliver c{crank}s{step}",
                )

    def _flow_reroute(self, compute_rank: int):
        """Surviving owner of one compute rank (None = nobody left)."""
        try:
            return self.client.route(compute_rank)
        except Exception:
            return None

    def _purge_boxes(self) -> None:
        for box in self.client._request_boxes.values():
            box.purge()

    def _redeliver(self, crank: int, step: int, request) -> Generator:
        """Re-send one logged dump notice to its current owner."""
        target = self.client.route(crank)
        nbytes = 256.0 if request is not None else 64.0
        src_node = (
            request.compute_node
            if request is not None
            else self.client.machine.compute_node_ids[
                crank % len(self.client.machine.compute_node_ids)
            ]
        )
        yield from self.machine.network.transfer(
            src_node,
            self.client.staging_nodes[target % len(self.client.staging_nodes)],
            nbytes,
        )
        target = self.client.route(crank)  # owner may have died meanwhile
        self.client.request_box(target).deliver(crank, step, request)
        return None

    # -- zero-survivor replay ----------------------------------------------
    def _replay_one(self, crank: int, step: int) -> Generator:
        """Write one uncommitted buffered dump through the fallback."""
        payload = self.client.buffer_payload(crank, step)
        if payload is None or self.fallback is None:
            self.client.commit(crank, step)
            return None
        step_obj = OutputStep.unpack(self.service.group, payload)
        yield from self.fallback.write_step(_EnvComm(self.env, crank), step_obj)
        if self.env.check is not None:
            # the packed chunk lands through the fallback, not via Map
            self.env.check.on_degraded((crank, step), step_obj.nbytes_logical)
        self.client.commit(crank, step)
        self._event("replayed", (crank, step))
        return None

    def _replay_all(self) -> Generator:
        """All stagers died: salvage every uncommitted dump synchronously."""
        for (crank, step) in sorted(self.client._requests_log):
            yield from self._replay_one(crank, step)
        return None

    # -- reporting ----------------------------------------------------------
    def detection_latency(self) -> Optional[float]:
        """Seconds from first crash to its detection (None if no crash)."""
        crash = next((t for k, t, _ in self.timeline if k == "crash"), None)
        det = next((t for k, t, _ in self.timeline if k == "detected"), None)
        if crash is None or det is None:
            return None
        return det - crash
