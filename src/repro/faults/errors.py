"""Failure signals exchanged between the fault/recovery layers.

These are deliberately dependency-free so that ``repro.core`` and
``repro.machine`` can both raise/catch them without import cycles.
:class:`~repro.machine.node.NodeFailure` lives with the node model; it
is re-exported from :mod:`repro.faults` for convenience.
"""

from __future__ import annotations

__all__ = ["FetchDropped", "FetchTimeout", "RecoveryRestart", "NoLiveStagers"]


class FetchDropped(RuntimeError):
    """An RDMA fetch was dropped by fault injection (retryable)."""

    def __init__(self, compute_rank: int, step: int, attempt: int):
        super().__init__(
            f"fetch of (compute {compute_rank}, step {step}) dropped "
            f"on attempt {attempt}"
        )
        self.compute_rank = compute_rank
        self.step = step
        self.attempt = attempt


class FetchTimeout(RuntimeError):
    """A fetch exhausted its retry budget without completing."""

    def __init__(self, compute_rank: int, step: int, attempts: int):
        super().__init__(
            f"fetch of (compute {compute_rank}, step {step}) failed "
            f"after {attempts} attempts"
        )
        self.compute_rank = compute_rank
        self.step = step
        self.attempts = attempts


class RecoveryRestart(Exception):
    """Interrupt cause telling a surviving stager to re-run a step.

    Carries the globally agreed restart step (the minimum uncommitted
    step across survivors) so every survivor re-enters the pipeline in
    lockstep with a fresh collective epoch.
    """

    def __init__(self, restart_step: int, epoch: int):
        super().__init__(f"recovery: restart from step {restart_step} (epoch {epoch})")
        self.restart_step = restart_step
        self.epoch = epoch


class NoLiveStagers(RuntimeError):
    """Every staging rank has failed; staged writes are impossible."""
