"""Sim-time heartbeat failure detector for the staging area.

Each watched staging rank runs a tiny *beat* process that stamps a
liveness time while its node is up; a monitor process sweeps the stamps
every ``interval`` and declares any rank silent for longer than
``timeout`` dead, firing the registered callbacks once per rank.

This mirrors the membership service a real staging deployment would run
over its control channel: detection is *delayed* (roughly the timeout
plus one sweep), so the pipeline observes a realistic window in which
survivors block on collectives with a dead peer before recovery kicks
in — that window is part of the measured recovery latency.
"""

from __future__ import annotations

from typing import Callable, Generator

__all__ = ["FailureDetector"]


class FailureDetector:
    """Heartbeat-based liveness monitor.

    Parameters
    ----------
    env: simulation engine.
    interval: heartbeat period and monitor sweep period.
    timeout: silence threshold before a rank is declared failed.
    """

    def __init__(self, env, *, interval: float = 0.5, timeout: float = 2.0):
        if interval <= 0 or timeout < interval:
            raise ValueError("need 0 < interval <= timeout")
        self.env = env
        self.interval = interval
        self.timeout = timeout
        self._watched: dict[int, Callable[[], bool]] = {}
        self.last_beat: dict[int, float] = {}
        self.failed: set[int] = set()
        self.detected_at: dict[int, float] = {}
        self._callbacks: list[Callable[[list[int]], None]] = []
        self._stopped = False
        self._started = False

    # -- wiring -----------------------------------------------------------
    def watch(self, rank: int, alive_fn: Callable[[], bool]) -> None:
        """Track *rank*; ``alive_fn()`` tells whether its node is up."""
        self._watched[rank] = alive_fn
        self.last_beat[rank] = self.env.now

    def on_failure(self, callback: Callable[[list[int]], None]) -> None:
        """Register ``callback(newly_failed_ranks)``."""
        self._callbacks.append(callback)

    def start(self) -> None:
        """Spawn heartbeat + monitor processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for rank in sorted(self._watched):
            self.env.process(self._beat(rank), name=f"heartbeat[{rank}]")
        self.env.process(self._monitor(), name="failure-monitor")

    def stop(self) -> None:
        """Wind down all detector processes at their next wake-up."""
        self._stopped = True

    # -- processes --------------------------------------------------------
    def _beat(self, rank: int) -> Generator:
        alive = self._watched[rank]
        while not self._stopped and alive():
            self.last_beat[rank] = self.env.now
            yield self.env.timeout(self.interval)
        return None

    def _monitor(self) -> Generator:
        while not self._stopped:
            yield self.env.timeout(self.interval)
            now = self.env.now
            newly = [
                r
                for r in sorted(self._watched)
                if r not in self.failed and now - self.last_beat[r] > self.timeout
            ]
            if newly:
                self.failed.update(newly)
                for r in newly:
                    self.detected_at[r] = now
                for cb in list(self._callbacks):
                    cb(newly)
        return None
