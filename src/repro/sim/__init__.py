"""Discrete-event simulation kernel underpinning the machine model.

This package provides a small, deterministic, generator-based
discrete-event engine in the style of SimPy.  Simulation *processes* are
Python generators that ``yield`` :class:`~repro.sim.engine.Event` objects
(timeouts, other processes, composite events) and are resumed by the
:class:`~repro.sim.engine.Engine` when those events fire.

The engine is the single source of simulated time for the whole
reproduction: the machine model (:mod:`repro.machine`), the simulated MPI
layer (:mod:`repro.mpi`) and the PreDatA middleware (:mod:`repro.core`)
all run as processes on one engine instance.

Example
-------
>>> from repro.sim import Engine
>>> eng = Engine()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = eng.process(hello(eng))
>>> eng.run()
>>> proc.value
5.0
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SeededTieBreaker,
    SimulationError,
    TieBreaker,
    Timeout,
)
from repro.sim.resources import (
    Mailbox,
    PreemptionError,
    Resource,
    SharedBandwidth,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Mailbox",
    "PreemptionError",
    "Process",
    "Resource",
    "SeededTieBreaker",
    "SharedBandwidth",
    "SimulationError",
    "Store",
    "TieBreaker",
    "Timeout",
]
