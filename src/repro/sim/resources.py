"""Shared resources for simulation processes.

Provides the synchronisation primitives used throughout the machine
model:

``Resource``
    Counted, FIFO-queued capacity (e.g. CPU cores, file-system service
    slots).

``Store``
    A FIFO buffer of Python objects with blocking get (e.g. message
    queues, staging-node chunk queues).

``Mailbox``
    Tag- and source-addressable message store used by the simulated MPI
    point-to-point layer.

``SharedBandwidth``
    A processor-sharing bandwidth pipe: *n* concurrent transfers each
    progress at ``rate / n``.  Used for network links and the parallel
    file system's aggregate bandwidth.  Transfer completion times are
    recomputed exactly on every membership change, so the model is a
    precise fluid-flow approximation rather than a per-packet one.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["Resource", "Store", "Mailbox", "SharedBandwidth", "PreemptionError"]


class PreemptionError(Exception):
    """Raised inside a process whose resource grant was revoked."""


class Resource:
    """Counted capacity with FIFO granting.

    Usage::

        req = resource.request()
        yield req
        ...  # hold
        resource.release()
    """

    def __init__(self, env: Engine, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[tuple[Event, int]] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self, n: int = 1) -> Event:
        """Return an event that fires when *n* units are granted atomically.

        Multi-unit requests are granted all-or-nothing in FIFO order, so
        two processes each needing several units can never deadlock by
        holding partial grants.
        """
        if not 1 <= n <= self.capacity:
            raise ValueError(f"cannot grant {n} units of capacity {self.capacity}")
        ev = self.env.event()
        if not self._waiters and self._in_use + n <= self.capacity:
            self._in_use += n
            ev.succeed()
        else:
            self._waiters.append((ev, n))
        return ev

    def release(self, n: int = 1) -> None:
        """Return *n* units; grants queued waiters FIFO."""
        if n < 1 or self._in_use < n:
            raise SimulationError(f"release({n}) without matching grant")
        self._in_use -= n
        while self._waiters:
            ev, need = self._waiters[0]
            if self._in_use + need > self.capacity:
                break  # FIFO head-of-line: preserves fairness
            self._waiters.popleft()
            self._in_use += need
            ev.succeed()

    def cancel(self, ev: Event, n: int = 1) -> None:
        """Withdraw a pending or granted request (interrupted holder).

        If *ev* is still queued it is removed; if the grant already went
        through, the units are released.  Needed when a process waiting
        on a grant is interrupted (e.g. a staging-node crash), so the
        abandoned request cannot leak capacity.
        """
        for i, (wev, _need) in enumerate(self._waiters):
            if wev is ev:
                del self._waiters[i]
                return
        if ev.triggered:
            self.release(n)

    def use(self, duration: float, n: int = 1) -> Generator:
        """Convenience process body: acquire, hold *duration*, release."""
        req = self.request(n)
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(n)


class Store:
    """Unbounded-or-bounded FIFO of items with blocking get/put."""

    def __init__(self, env: Engine, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit *item*; blocks (unfired event) when full."""
        ev = self.env.event()
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return event yielding the oldest item."""
        ev = self.env.event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev


class Mailbox:
    """Source/tag addressable message store (MPI-style matching).

    Messages are matched FIFO within a ``(source, tag)`` class, with
    wildcard support on both fields for receivers.
    """

    ANY = object()

    def __init__(self, env: Engine):
        self.env = env
        self._messages: Deque[tuple[Any, Any, Any]] = deque()  # (src, tag, payload)
        self._receivers: Deque[tuple[Any, Any, Event]] = deque()

    def deliver(self, source: Any, tag: Any, payload: Any) -> None:
        """Deposit a message; wakes a matching receiver if one waits."""
        for i, (rsrc, rtag, ev) in enumerate(self._receivers):
            if (rsrc is Mailbox.ANY or rsrc == source) and (
                rtag is Mailbox.ANY or rtag == tag
            ):
                del self._receivers[i]
                ev.succeed((source, tag, payload))
                return
        self._messages.append((source, tag, payload))

    def receive(self, source: Any = ANY, tag: Any = ANY) -> Event:
        """Return event yielding ``(source, tag, payload)`` of a match."""
        for i, (msrc, mtag, payload) in enumerate(self._messages):
            if (source is Mailbox.ANY or msrc == source) and (
                tag is Mailbox.ANY or mtag == tag
            ):
                del self._messages[i]
                ev = self.env.event()
                ev.succeed((msrc, mtag, payload))
                return ev
        ev = self.env.event()
        self._receivers.append((source, tag, ev))
        return ev

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending ``receive``.

        A process interrupted while blocked on a mailbox must withdraw
        its receiver, otherwise the stale entry would silently consume
        (and lose) the next matching message.
        """
        for i, (_src, _tag, rev) in enumerate(self._receivers):
            if rev is ev:
                del self._receivers[i]
                return

    def purge(self, source: Any = ANY, tag: Any = ANY) -> list[tuple[Any, Any, Any]]:
        """Remove and return all queued messages matching source/tag.

        Used by the recovery protocol to flush requests addressed to a
        staging rank that died before serving them; the controller then
        re-delivers them to the failover target.
        """
        kept: Deque[tuple[Any, Any, Any]] = deque()
        removed = []
        for msrc, mtag, payload in self._messages:
            if (source is Mailbox.ANY or msrc == source) and (
                tag is Mailbox.ANY or mtag == tag
            ):
                removed.append((msrc, mtag, payload))
            else:
                kept.append((msrc, mtag, payload))
        self._messages = kept
        return removed

    @property
    def pending(self) -> int:
        return len(self._messages)


class _Transfer:
    __slots__ = ("size", "remaining", "event", "last_update", "weight")

    def __init__(self, size: float, event: Event, now: float, weight: float):
        self.size = float(size)
        self.remaining = float(size)
        self.event = event
        self.last_update = now
        self.weight = weight


class SharedBandwidth:
    """Processor-sharing fluid pipe.

    ``transfer(nbytes)`` returns an event that fires when the transfer
    completes; concurrent transfers share ``rate`` proportionally to
    their weights.  An optional ``degradation`` callable lets callers
    inject time-varying capacity (e.g. file-system interference):
    it receives the current simulated time and returns a multiplier in
    ``(0, 1]``, sampled at every membership change.
    """

    def __init__(
        self,
        env: Engine,
        rate: float,
        *,
        degradation: Optional[Callable[[float], float]] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = float(rate)
        self.degradation = degradation
        self._active: list[_Transfer] = []
        self._wakeup: Optional[Event] = None
        self._busy_until = 0.0
        self._bytes_moved = 0.0

    # -- public ----------------------------------------------------------
    @property
    def active_transfers(self) -> int:
        return len(self._active)

    @property
    def bytes_moved(self) -> float:
        """Total bytes that have completed through this pipe."""
        return self._bytes_moved

    def effective_rate(self) -> float:
        """Current capacity after the degradation multiplier."""
        mult = self.degradation(self.env.now) if self.degradation else 1.0
        if not (0.0 < mult <= 1.0):
            raise SimulationError(f"degradation multiplier {mult} outside (0,1]")
        return self.rate * mult

    def transfer(self, nbytes: float, *, weight: float = 1.0) -> Event:
        """Begin moving *nbytes*; event fires at completion."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        done = self.env.event()
        if nbytes == 0:
            done.succeed(0.0)
            return done
        self._advance()
        self._active.append(_Transfer(nbytes, done, self.env.now, weight))
        self._reschedule()
        return done

    # -- internals ---------------------------------------------------------
    def _per_transfer_rates(self) -> list[float]:
        total_w = sum(t.weight for t in self._active)
        rate = self.effective_rate()
        return [rate * t.weight / total_w for t in self._active]

    # Residual work below this many seconds (at current rate) counts as
    # done; prevents float-precision spins where the next wakeup cannot
    # advance the clock.
    _EPS_SECONDS = 1e-12

    def _advance(self) -> None:
        """Account progress of all active transfers up to `now`."""
        now = self.env.now
        if not self._active:
            return
        rates = self._per_transfer_rates()
        done_idx = []
        for i, (t, r) in enumerate(zip(self._active, rates)):
            dt = now - t.last_update
            if dt > 0:
                t.remaining = max(0.0, t.remaining - r * dt)
            t.last_update = now
            if t.remaining <= r * self._EPS_SECONDS:
                done_idx.append(i)
        if done_idx:
            finished = [self._active[i] for i in done_idx]
            self._active = [
                t for i, t in enumerate(self._active) if i not in set(done_idx)
            ]
            for t in finished:
                self._bytes_moved += t.size
                t.event.succeed(now)

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest projected completion."""
        if self._wakeup is not None and not self._wakeup.triggered:
            # Cancel stale wakeup by letting it no-op: mark generation.
            self._wakeup._stale = True  # type: ignore[attr-defined]
        if not self._active:
            self._wakeup = None
            return
        rates = self._per_transfer_rates()
        eta = min(t.remaining / r for t, r in zip(self._active, rates))
        # Guarantee the clock actually advances past `now` in floats.
        floor = max(self.env.now * 1e-12, self._EPS_SECONDS)
        ev = self.env.timeout(max(eta, floor))
        self._wakeup = ev
        ev._add_callback(self._on_wakeup)

    def _on_wakeup(self, ev: Event) -> None:
        if getattr(ev, "_stale", False):
            return
        self._advance()
        self._reschedule()
