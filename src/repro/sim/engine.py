"""Generator-based discrete-event simulation engine.

The engine keeps a priority queue of ``(time, priority, sub, seq,
event)`` entries.  :class:`Process` objects wrap generators; each time
the event a process is waiting on fires, the engine advances the
generator, obtaining the next event to wait on.

Two queue backends share the exact pop order ``(time, priority, sub,
seq)`` — schedules are byte-identical under either:

- ``calendar`` (default) — a bucketed calendar queue: one small heap of
  ``(priority, sub, seq, event)`` per distinct timestamp plus a heap of
  distinct timestamps.  Staged pipelines fire large bursts of
  same-time events (every ``succeed()`` lands at ``now``), so most
  pushes are O(log burst) into a small bucket instead of O(log total)
  into one big heap, and the timestamp heap stays tiny.
- ``heap`` — the single binary heap the engine always had, kept as the
  reference backend.

Select with ``Engine(queue=...)`` or the ``REPRO_ENGINE_QUEUE``
environment variable.

Determinism: ties in the event queue are broken first by an optional
pluggable :class:`TieBreaker` sub-key and finally by a monotonically
increasing sequence number, so a simulation with a fixed seed replays
identically.  The default tie-breaker assigns every entry sub-key 0 —
pure insertion order, byte-identical to the engine before tie-breaking
became pluggable.  A :class:`SeededTieBreaker` instead permutes the
order of same-``(time, priority)`` events deterministically per seed,
which is how the schedule-perturbation fuzzer in :mod:`repro.check`
hunts for hidden ordering races.  Nothing in the engine consults
wall-clock time.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "TieBreaker",
    "SeededTieBreaker",
    "Engine",
]

# Scheduling priorities: URGENT entries at the same timestamp run before
# NORMAL ones.  Used so that resource releases propagate before new
# acquisitions at the same instant.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for structural errors in simulation programs."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the
    interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait on.

    An event is *triggered* with either a value (:meth:`succeed`) or an
    exception (:meth:`fail`).  Callbacks registered before triggering are
    invoked, in order, when the engine pops the event off the queue.
    """


    def __init__(self, env: "Engine"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, *, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._enqueue(0.0, priority, self)
        return self

    def fail(self, exc: BaseException, *, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._enqueue(0.0, NORMAL, self)
        return self

    # -- internals -----------------------------------------------------
    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately via a fresh queue entry so
            # ordering guarantees still hold.
            proxy = Event(self.env)
            proxy._value, proxy._ok, proxy._triggered = self._value, self._ok, True
            proxy.callbacks.append(cb)
            self.env._enqueue(0.0, URGENT, proxy)
        else:
            self.callbacks.append(cb)

    def _run_callbacks(self) -> None:
        self._triggered = True  # timeouts trigger at pop, not at schedule
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""


    def __init__(self, env: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._value = value
        self._ok = True
        env._enqueue(self.delay, NORMAL, self)


class Initialize(Event):
    """Internal event used to start a process at creation time."""


    def __init__(self, env: "Engine", process: "Process"):
        super().__init__(env)
        self._value = None
        self._ok = True
        self._triggered = True
        self.callbacks.append(process._resume)
        env._enqueue(0.0, URGENT, self)


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event: it triggers (with the generator's
    return value) when the generator finishes, so processes can wait on
    each other simply by yielding the other :class:`Process`.
    """


    def __init__(self, env: "Engine", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(f"process requires a generator, got {gen!r}")
        super().__init__(env)
        self._gen = gen
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return  # interrupting a dead process is a no-op
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        env = self.env
        kick = Event(env)
        kick._interrupt_for = self  # type: ignore[attr-defined]

        def deliver(_ev: Event, proc: "Process" = self, cause: Any = cause) -> None:
            if proc._triggered:
                return
            # Detach from whatever the process was waiting on.
            target = proc._target
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(proc._resume)
                except ValueError:
                    pass
            proc._target = None
            proc._step(Interrupt(cause), throw=True)

        kick.callbacks.append(deliver)
        kick._value, kick._ok, kick._triggered = None, True, True
        env._enqueue(0.0, URGENT, kick)

    # -- stepping ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, *, throw: bool) -> None:
        env = self.env
        env._active_process = self
        try:
            if throw:
                target = self._gen.throw(value)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            env._active_process = None
            self._triggered = True
            self._ok = True
            self._value = stop.value
            env._enqueue(0.0, NORMAL, self)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process with failure.
            env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            env._enqueue(0.0, NORMAL, self)
            return
        except BaseException as exc:
            env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            env._enqueue(0.0, NORMAL, self)
            if not env._catch_errors:
                raise
            return
        env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
        if target.env is not env:
            raise SimulationError("yielded event belongs to a different engine")
        self._target = target
        target._add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""


    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different engines")
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed(self._collect())
        else:
            for ev in self._events:
                ev._add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev._triggered}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires; value maps fired events."""


    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all constituent events have fired."""


    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class TieBreaker:
    """Policy assigning the heap sub-key of same-``(time, priority)`` events.

    The engine orders queue entries by ``(time, priority, sub, seq)``.
    The base class returns ``sub = 0`` for every entry, so ordering
    falls through to the insertion sequence number — byte-identical to
    the engine's historical hard-coded behaviour.  Subclasses may
    return any integer to reorder ties; the final ``seq`` component
    keeps the sort total and the replay deterministic regardless.
    """

    def sub_key(self, time: float, priority: int, seq: int, event: "Event") -> int:
        """Sub-key of one queue entry (called once, at enqueue)."""
        return 0


class SeededTieBreaker(TieBreaker):
    """Deterministic pseudo-random permutation of event-queue ties.

    Hashes the insertion sequence number with the seed (a splitmix64
    round — no dependence on ``PYTHONHASHSEED`` or any global RNG), so
    two runs with the same seed replay identically while different
    seeds explore different legal orderings of simultaneous events.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int):
        self.seed = int(seed)

    def sub_key(self, time: float, priority: int, seq: int, event: "Event") -> int:
        z = (seq * 0x9E3779B97F4A7C15 + self.seed * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return (z ^ (z >> 31)) & self._MASK

    def __repr__(self) -> str:
        return f"SeededTieBreaker(seed={self.seed})"


class _HeapQueue:
    """Reference event queue: one binary heap of full entries."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, int, Event]] = []

    def push(self, t: float, prio: int, sub: int, seq: int, event: Event) -> None:
        heapq.heappush(self._heap, (t, prio, sub, seq, event))

    def pop(self) -> tuple[float, int, int, int, Event]:
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        return len(self._heap)


class _CalendarQueue:
    """Bucketed calendar queue: per-timestamp heaps + a timestamp heap.

    ``_buckets`` maps each distinct pending timestamp to its pending
    entries ``(priority, sub, seq, event)``: a bare tuple while the
    bucket holds exactly one entry (the overwhelmingly common case for
    spread-out timeouts — no list allocation), a heap list once a
    second same-time entry arrives, or ``None`` after the last entry is
    popped.  ``_times`` is a heap of the keys of ``_buckets``, each
    exactly once.  A drained bucket is *not* removed eagerly:
    same-time cascades (a popped event's callback scheduling more work
    at ``now``) refill the current bucket over and over, and eager
    removal would re-sift ``now`` to the top of the timestamp heap on
    every refill.  Instead drained buckets linger and are reaped when
    ``pop``/``peek_time`` finds one at the front — i.e. once the
    simulation has truly moved past that instant.  ``seq`` is globally
    unique, so bucket-heap comparisons terminate before reaching the
    event, and the global pop order ``(time, priority, sub, seq)`` is
    identical to :class:`_HeapQueue`.

    :meth:`drain_bucket` removes the whole front bucket in one pop for
    the engine's batched run loop.  ``urgent_pushes`` counts URGENT
    pushes so the batch loop can detect an urgent entry scheduled *at
    the drained instant* by one of the drained callbacks and requeue
    the not-yet-run remainder (pop order stays identical to
    :class:`_HeapQueue`; see :meth:`Engine.run`).
    """

    __slots__ = ("_buckets", "_times", "_len", "urgent_pushes")

    _ABSENT: Any = object()

    def __init__(self) -> None:
        self._buckets: dict[float, Any] = {}
        self._times: list[float] = []
        self._len = 0
        self.urgent_pushes = 0

    def push(self, t: float, prio: int, sub: int, seq: int, event: Event) -> None:
        entry = (prio, sub, seq, event)
        if prio == URGENT:
            self.urgent_pushes += 1
        buckets = self._buckets
        bucket = buckets.get(t, self._ABSENT)
        if bucket is self._ABSENT:
            buckets[t] = entry
            heapq.heappush(self._times, t)
        elif bucket is None:  # drained, timestamp still in _times
            buckets[t] = entry
        elif type(bucket) is list:
            heapq.heappush(bucket, entry)
        else:  # singleton -> two-entry heap
            buckets[t] = [bucket, entry] if bucket < entry else [entry, bucket]
        self._len += 1

    def pop(self) -> tuple[float, int, int, int, Event]:
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            if not bucket:  # None or drained list: reap and advance
                del buckets[heapq.heappop(times)]
                continue
            if type(bucket) is list:
                prio, sub, seq, event = heapq.heappop(bucket)
            else:
                prio, sub, seq, event = bucket
                buckets[t] = None
            self._len -= 1
            return t, prio, sub, seq, event
        raise IndexError("pop from an empty calendar queue")

    def drain_bucket(self) -> tuple[float, list[tuple[int, int, int, Event]]]:
        """Pop every entry of the front bucket, sorted, in one call.

        Returns ``(t, entries)`` with entries in pop order
        ``(priority, sub, seq)``.  The bucket is left drained (``None``)
        so same-time pushes from the entries' callbacks refill it
        without touching the timestamp heap.
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            if not bucket:  # None or drained list: reap and advance
                del buckets[heapq.heappop(times)]
                continue
            buckets[t] = None
            if type(bucket) is list:
                bucket.sort()  # heap -> total order; seq is unique
                entries = bucket
            else:
                entries = [bucket]
            self._len -= len(entries)
            return t, entries
        raise IndexError("drain from an empty calendar queue")

    def peek_time(self) -> float:
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            if buckets[t]:
                return t
            del buckets[heapq.heappop(times)]
        return float("inf")

    def __len__(self) -> int:
        return self._len


_QUEUE_BACKENDS = {"heap": _HeapQueue, "calendar": _CalendarQueue}


def _default_queue_backend() -> str:
    env = os.environ.get("REPRO_ENGINE_QUEUE", "").strip()
    if not env:
        return "calendar"
    if env not in _QUEUE_BACKENDS:
        raise ValueError(
            f"REPRO_ENGINE_QUEUE={env!r} is not a queue backend; "
            f"expected one of {sorted(_QUEUE_BACKENDS)}"
        )
    return env


class Engine:
    """The discrete-event simulation engine.

    Parameters
    ----------
    catch_errors:
        When True (default), an exception escaping a process marks the
        process failed instead of aborting the whole run; waiting on the
        failed process re-raises.  Set False to debug tracebacks.
    tie_breaker:
        Optional :class:`TieBreaker` supplying the sub-key that orders
        same-``(time, priority)`` events.  ``None`` (default) assigns
        sub-key 0 to every entry — insertion order, byte-identical to
        the engine before tie-breaking became pluggable.
    queue:
        Event-queue backend: ``"calendar"`` (bucketed per-timestamp
        heaps, the fast path) or ``"heap"`` (one binary heap, the
        reference).  ``None`` (default) resolves the
        ``REPRO_ENGINE_QUEUE`` environment variable, falling back to
        ``"calendar"``.  Pop order — and therefore every schedule — is
        identical under both.

    Attributes
    ----------
    obs:
        Optional :class:`repro.obs.Observability` sink.  ``None`` by
        default — every instrumentation site across the codebase guards
        on ``env.obs is not None``, so the disabled pipeline carries no
        tracing overhead beyond one attribute read.  Attach one with
        ``Observability().bind(engine)``.
    check:
        Optional :class:`repro.check.Checker` invariant sink, ``None``
        by default with the same guard discipline as ``obs``: every
        conservation-accounting site across client/scheduler/staging/
        flow/faults tests ``env.check is not None`` first, so the
        disabled pipeline is byte-identical.
    schedule_trace:
        Optional :class:`repro.check.ScheduleTrace` recording every
        event pop (time, priority, sub-key, label).  ``None`` by
        default; the fuzzer attaches one to hash the executed schedule.
    """

    def __init__(
        self,
        *,
        catch_errors: bool = True,
        tie_breaker: Optional[TieBreaker] = None,
        queue: Optional[str] = None,
    ):
        if queue is None:
            queue = _default_queue_backend()
        if queue not in _QUEUE_BACKENDS:
            raise ValueError(
                f"unknown queue backend {queue!r}; "
                f"expected one of {sorted(_QUEUE_BACKENDS)}"
            )
        self._now = 0.0
        self.queue_backend = queue
        self._queue = _QUEUE_BACKENDS[queue]()
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._catch_errors = catch_errors
        self._tie_breaker = tie_breaker
        #: observability sink (see class docstring); set via bind()
        self.obs = None
        #: invariant-checker sink (see class docstring); set via bind()
        self.check = None
        #: schedule-trace sink recording event pops (see class docstring)
        self.schedule_trace = None

    # -- public API ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event firing *delay* seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh untriggered event."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start *gen* as a new process at the current time."""
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any constituent fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every constituent has fired."""
        return AllOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*.

        With the calendar backend and no tie-breaker the loop drains
        whole same-timestamp buckets in one pop
        (:meth:`_CalendarQueue.drain_bucket`) instead of re-sifting the
        bucket heap per event.  Pop order is provably unchanged: new
        entries scheduled by a drained callback carry a larger ``seq``
        than everything drained, so NORMAL/URGENT entries landing at the
        same instant sort after the batch — except a *new URGENT entry
        vs the batch's remaining NORMAL entries* (URGENT beats NORMAL
        regardless of seq).  The loop watches the queue's
        ``urgent_pushes`` counter for exactly that case and requeues the
        unran remainder, falling back to a fresh drain.  A custom
        tie-breaker may order a new entry *before* older ones at the
        same ``(time, priority)``, so batching is disabled whenever one
        is attached.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        queue = self._queue
        if self._tie_breaker is None and type(queue) is _CalendarQueue:
            self._run_batched(queue, until)
            return
        while queue:
            t = queue.peek_time()
            if until is not None and t > until:
                self._now = until
                return
            t, prio, sub, seq, event = queue.pop()
            if t < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self._now = max(self._now, t)
            if self.schedule_trace is not None:
                self.schedule_trace.record(t, prio, sub, seq, event)
            event._run_callbacks()
        if until is not None:
            self._now = max(self._now, until)

    def _run_batched(self, queue: _CalendarQueue, until: Optional[float]) -> None:
        """Batched run loop over whole calendar buckets (see :meth:`run`)."""
        while queue:
            t = queue.peek_time()
            if until is not None and t > until:
                self._now = until
                return
            t, entries = queue.drain_bucket()
            if t < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self._now = max(self._now, t)
            mark = queue.urgent_pushes
            for i, (prio, sub, seq, event) in enumerate(entries):
                if prio != URGENT and queue.urgent_pushes != mark:
                    # A callback scheduled a new URGENT entry at this
                    # instant: it must run before the batch's remaining
                    # NORMAL entries.  Requeue them and re-drain.
                    for p2, s2, q2, e2 in entries[i:]:
                        queue.push(t, p2, s2, q2, e2)
                    break
                if self.schedule_trace is not None:
                    self.schedule_trace.record(t, prio, sub, seq, event)
                try:
                    event._run_callbacks()
                except BaseException:
                    # Keep queue state identical to the per-pop loop:
                    # everything not yet run goes back before raising.
                    for p2, s2, q2, e2 in entries[i + 1 :]:
                        queue.push(t, p2, s2, q2, e2)
                    raise
        if until is not None:
            self._now = max(self._now, until)

    def run_until_process(self, proc: Process) -> Any:
        """Run until *proc* completes; return its value or raise its error."""
        while not proc._triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: queue empty but process {proc.name!r} alive"
                )
            t, prio, sub, seq, event = self._queue.pop()
            self._now = max(self._now, t)
            if self.schedule_trace is not None:
                self.schedule_trace.record(t, prio, sub, seq, event)
            event._run_callbacks()
        if not proc._ok:
            raise proc._value
        return proc._value

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue.peek_time()

    # -- internals -------------------------------------------------------
    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        if event._scheduled and not isinstance(event, Timeout):
            return
        event._scheduled = True
        self._seq += 1
        t = self._now + delay
        sub = (
            self._tie_breaker.sub_key(t, priority, self._seq, event)
            if self._tie_breaker is not None
            else 0
        )
        self._queue.push(t, priority, sub, self._seq, event)
