"""Wire-size estimation for simulated message payloads.

The timing model needs a byte count for every payload.  Numpy arrays
report exactly; containers are summed recursively; everything else gets
a conservative flat estimate (the simulated layer's analogue of pickle
overhead).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["nbytes_of"]

_SCALAR_BYTES = 8
_CONTAINER_OVERHEAD = 16


def nbytes_of(obj: Any) -> float:
    """Estimated wire bytes of *obj*."""
    if obj is None:
        return 0.0
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return float(len(obj))
    if isinstance(obj, str):
        return float(len(obj.encode("utf-8")))
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return float(_SCALAR_BYTES)
    if isinstance(obj, dict):
        return _CONTAINER_OVERHEAD + sum(
            nbytes_of(k) + nbytes_of(v) for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(nbytes_of(v) for v in obj)
    if hasattr(obj, "nbytes"):
        try:
            return float(obj.nbytes)
        except TypeError:
            return float(obj.nbytes())
    if hasattr(obj, "__dict__"):
        return _CONTAINER_OVERHEAD + sum(
            nbytes_of(v) for v in vars(obj).values()
        )
    return float(_SCALAR_BYTES)
