"""Simulated MPI on the discrete-event machine model.

Because the evaluation machine (Cray XT) and a real MPI stack are not
available, this package provides an MPI-like layer whose *data plane is
real* — numpy arrays and Python objects actually move between rank
address spaces — while the *time plane* comes from the
:mod:`repro.machine` interconnect model.

A :class:`~repro.mpi.world.World` is one MPI job: a list of ranks, each
mapped to a machine node (several ranks may share a node, like the
staging area's 2 processes/node configuration in §V.B).  Rank code is
written as generators that ``yield from`` communicator calls::

    def main(comm):
        data = np.arange(100.0) * comm.rank
        total = yield from comm.allreduce(data.sum())
        ...

    world = World(env, network, rank_nodes=[0, 1, 2, 3])
    world.spawn(main)
    env.run()

Matching the paper, the staging area runs as a *separate* World from
the simulation (§IV.C: "The staging area is running as a separate MPI
program launched independently from the simulation").
"""

from repro.mpi.ops import MAX, MIN, PROD, SUM, Op
from repro.mpi.request import Request
from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.world import World
from repro.mpi.datasize import nbytes_of

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MAX",
    "MIN",
    "Op",
    "PROD",
    "Request",
    "SUM",
    "World",
    "nbytes_of",
]
