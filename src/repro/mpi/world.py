"""The :class:`World`: one simulated MPI job.

A world owns the rank-to-node mapping, per-rank mailboxes, and the
collective matching engine.  Collective timing comes from the network
model; set ``contended=True`` (default) to realise collective wire
volume through NIC pipes so concurrent traffic (asynchronous staging
fetches) slows collectives down — the §V.B.2 interference effect.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from repro.machine.network import Network
from repro.mpi.communicator import Communicator
from repro.mpi.datasize import nbytes_of
from repro.mpi.ops import Op
from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.resources import Mailbox

__all__ = ["World"]


class _CollectiveState:
    """Matching state for one collective sequence index."""

    __slots__ = ("kind", "payloads", "kwargs", "done", "started")

    def __init__(self, kind: str, kwargs: dict, done: Event):
        self.kind = kind
        self.payloads: dict[int, Any] = {}
        self.kwargs = kwargs
        self.done = done
        self.started = False


class World:
    """A set of MPI ranks mapped onto machine nodes.

    Parameters
    ----------
    env: simulation engine.
    network: interconnect model shared with other worlds on the machine.
    rank_nodes: machine node id for each rank (index = rank).
    name: label for diagnostics.
    contended: realise collective bandwidth through NIC pipes.
    node_lookup: optional ``node_id -> Node`` resolver enabling
        :meth:`Communicator.compute` to use real node core resources
        (pass ``machine.node`` when running on a :class:`Machine`).
    wire_scale: multiplier applied to payload sizes for *timing* —
        used when functional payloads are scaled-down stand-ins for
        larger logical data (see ``OutputStep.volume_scale``).
    model_size: effective process count used by the collective *cost
        models* when the world's ranks are representatives of a larger
        job (e.g. 64 simulated ranks standing in for 16,384).  Latency
        terms scale with ``model_size`` while per-rank wire volume stays
        faithful.  Defaults to the actual size.
    """

    def __init__(
        self,
        env: Engine,
        network: Network,
        rank_nodes: Sequence[int],
        *,
        name: str = "world",
        contended: bool = True,
        node_lookup: Optional[Callable[[int], Any]] = None,
        wire_scale: float = 1.0,
        model_size: Optional[int] = None,
    ):
        if wire_scale <= 0:
            raise ValueError("wire_scale must be positive")
        if model_size is not None and model_size < len(rank_nodes):
            raise ValueError("model_size cannot be below the actual size")
        if len(rank_nodes) < 1:
            raise ValueError("world needs at least one rank")
        self.env = env
        self.network = network
        self.rank_nodes = list(rank_nodes)
        self.name = name
        self.contended = contended
        self.wire_scale = wire_scale
        self.model_size = model_size or len(rank_nodes)
        self._node_lookup = node_lookup
        self._mailboxes: dict[int, Mailbox] = {}
        self._collectives: dict[int, _CollectiveState] = {}
        self._comms = [Communicator(self, r) for r in range(len(rank_nodes))]
        self._procs: list = []
        self._active: set[int] = set(range(len(rank_nodes)))

    # -- structure ---------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.rank_nodes)

    @property
    def active_ranks(self) -> list[int]:
        """Ranks not deactivated by failure, in rank order."""
        return sorted(self._active)

    def is_active(self, rank: int) -> bool:
        """Whether *rank* still participates in collectives."""
        return rank in self._active

    # -- failure support ----------------------------------------------------
    def deactivate_rank(self, rank: int) -> None:
        """Remove *rank* from collective matching (its node died).

        Pending collectives that were only waiting on deactivated ranks
        complete among the survivors, so a crash cannot deadlock the
        world.  Payloads already contributed by the dead rank are
        discarded from the functional result (its data is lost).
        """
        if rank not in self._active:
            return
        self._active.discard(rank)
        for seq, state in list(self._collectives.items()):
            self._maybe_complete(seq, state)

    def reset_collectives(self) -> None:
        """Drop all pending collective state and restart sequencing.

        Recovery hook: after a failure is detected, surviving staging
        ranks are interrupted mid-step and re-run it from the top, so
        every in-flight collective is abandoned and all ranks must agree
        on a fresh sequence numbering (a new 'epoch').
        """
        self._collectives.clear()
        for c in self._comms:
            c._coll_seq = 0

    def comm(self, rank: int) -> Communicator:
        """The :class:`Communicator` endpoint of *rank*."""
        return self._comms[rank]

    def node_of(self, rank: int):
        """The machine Node hosting *rank* (None without a lookup)."""
        if self._node_lookup is None:
            return None
        return self._node_lookup(self.rank_nodes[rank])

    def mailbox(self, rank: int) -> Mailbox:
        """The (lazily created) point-to-point mailbox of *rank*."""
        mb = self._mailboxes.get(rank)
        if mb is None:
            mb = Mailbox(self.env)
            self._mailboxes[rank] = mb
        return mb

    # -- program launch ------------------------------------------------------
    def spawn(self, main: Callable[[Communicator], Generator], *args, **kwargs):
        """Start ``main(comm, *args, **kwargs)`` on every rank.

        Returns the list of rank processes (each is awaitable).
        """
        self._procs = [
            self.env.process(
                main(self._comms[r], *args, **kwargs),
                name=f"{self.name}[{r}]",
            )
            for r in range(self.size)
        ]
        return self._procs

    def join(self) -> Generator:
        """Process body: wait until every spawned rank finishes."""
        if not self._procs:
            raise SimulationError("join() before spawn()")
        yield self.env.all_of(self._procs)
        return [p.value for p in self._procs]

    # -- collective engine ------------------------------------------------------
    def collective(
        self, seq: int, kind: str, rank: int, payload: Any, **kwargs
    ) -> Generator:
        """Process body used by :class:`Communicator`; matches calls."""
        state = self._collectives.get(seq)
        if state is None:
            state = _CollectiveState(kind, kwargs, self.env.event())
            self._collectives[seq] = state
        else:
            if state.kind != kind:
                raise SimulationError(
                    f"collective mismatch at seq {seq}: rank {rank} called "
                    f"{kind!r} but earlier ranks called {state.kind!r}"
                )
        if rank in state.payloads:
            raise SimulationError(
                f"rank {rank} called collective seq {seq} twice"
            )
        state.payloads[rank] = payload
        self._maybe_complete(seq, state)
        results = yield state.done
        return results[rank]

    def _maybe_complete(self, seq: int, state: _CollectiveState) -> None:
        """Spawn the exchange once every *active* rank has arrived."""
        if state.started or not state.payloads or not self._active:
            return
        if self._active <= state.payloads.keys():
            state.started = True
            self.env.process(
                self._complete_collective(seq, state),
                name=f"{self.name}.{state.kind}#{seq}",
            )

    def _complete_collective(self, seq: int, state: _CollectiveState) -> Generator:
        kind, payloads, kwargs = state.kind, state.payloads, state.kwargs
        per_rank_bytes = self._wire_bytes(
            kind, payloads, kwargs.get("wire_scale")
        )
        contributors = sorted(r for r in payloads if r in self._active)
        if self.contended and len(contributors) > 1 and kind != "barrier":
            yield from self.network.contended_collective(
                _model_kind(kind),
                [self.rank_nodes[r] for r in contributors],
                per_rank_bytes,
                model_nprocs=self.model_size,
            )
        else:
            yield self.env.timeout(
                self.network.collective_time(
                    _model_kind(kind), self.model_size, per_rank_bytes
                )
            )
        # Identity-guarded: reset_collectives() may have replaced this
        # seq slot with a fresh epoch while the exchange was in flight.
        if self._collectives.get(seq) is state:
            del self._collectives[seq]
        if state.done.triggered:
            return
        try:
            results = self._apply(kind, payloads, kwargs)
        except Exception as exc:
            # Propagate semantic errors (bad scatter length, unknown op)
            # into every waiting rank instead of deadlocking the world.
            state.done.fail(exc)
            return
        state.done.succeed(results)

    # -- functional semantics ------------------------------------------------------
    def _apply(self, kind: str, payloads: dict[int, Any], kwargs: dict) -> dict:
        # Results are computed over the *active* contributors only, so a
        # collective completed after a failure yields survivor-only data.
        # With no failures this is exactly range(size).
        ranks = sorted(r for r in payloads if r in self._active)
        p = len(ranks)
        if kind == "barrier":
            return {r: None for r in ranks}
        if kind == "bcast":
            root = kwargs.get("root", 0)
            value = payloads[root]
            return {r: value for r in ranks}
        if kind in ("reduce", "allreduce"):
            op: Op = kwargs["op"]
            ordered = [payloads[r] for r in ranks]
            result = op.reduce_all(ordered)
            if kind == "allreduce":
                return {r: result for r in ranks}
            root = kwargs.get("root", 0)
            return {r: (result if r == root else None) for r in ranks}
        if kind in ("gather", "allgather"):
            ordered = [payloads[r] for r in ranks]
            if kind == "allgather":
                return {r: list(ordered) for r in ranks}
            root = kwargs.get("root", 0)
            return {r: (list(ordered) if r == root else None) for r in ranks}
        if kind == "scatter":
            root = kwargs.get("root", 0)
            values = payloads[root]
            if values is None or len(values) != p:
                raise SimulationError(
                    f"scatter root must supply {p} values, got "
                    f"{None if values is None else len(values)}"
                )
            return {r: values[i] for i, r in enumerate(ranks)}
        if kind == "alltoall":
            return {
                r: [payloads[src][r] for src in ranks] for r in ranks
            }
        if kind in ("scan", "exscan"):
            op: Op = kwargs["op"]
            out: dict[int, Any] = {}
            acc = None
            for r in ranks:
                if kind == "exscan":
                    out[r] = acc
                acc = payloads[r] if acc is None else op(acc, payloads[r])
                if kind == "scan":
                    out[r] = acc
            return out
        raise SimulationError(f"unknown collective kind {kind!r}")

    def _wire_bytes(
        self,
        kind: str,
        payloads: dict[int, Any],
        wire_scale: Optional[float] = None,
    ) -> float:
        """Per-rank wire volume used for timing."""
        scale = self.wire_scale if wire_scale is None else wire_scale
        return self._raw_wire_bytes(kind, payloads) * scale

    def _raw_wire_bytes(self, kind: str, payloads: dict[int, Any]) -> float:
        if kind == "barrier":
            return 0.0
        if kind == "alltoall":
            # per-pair bytes at model scale: the largest per-rank total
            # divided by the effective process count.
            per_rank_totals = [
                sum(nbytes_of(el) for el in row) for row in payloads.values()
            ]
            return max(per_rank_totals) / max(self.model_size, 1)
        if kind == "scatter":
            root_payload = next(
                (v for v in payloads.values() if v is not None), None
            )
            if root_payload is None:
                return 0.0
            return sum(nbytes_of(el) for el in root_payload) / max(self.size, 1)
        return max(nbytes_of(v) for v in payloads.values())

    def __repr__(self) -> str:
        return f"World(name={self.name!r}, size={self.size})"


def _model_kind(kind: str) -> str:
    """Map functional kinds onto network cost-model kinds."""
    return {
        "barrier": "barrier",
        "bcast": "bcast",
        "reduce": "reduce",
        "allreduce": "allreduce",
        "gather": "gather",
        "allgather": "allgather",
        "scatter": "scatter",
        "alltoall": "alltoall",
        "scan": "allreduce",  # same tree-structured cost shape
        "exscan": "allreduce",
    }[kind]
