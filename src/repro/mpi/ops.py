"""Reduction operators for simulated-MPI collectives.

Each :class:`Op` combines two values elementwise; values may be Python
scalars or numpy arrays (mirroring mpi4py's lowercase API, which
reduces arbitrary Python objects).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["Op", "SUM", "MIN", "MAX", "PROD"]


class Op:
    """A binary, associative, commutative reduction operator."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self._fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self._fn(a, b)

    def reduce_all(self, values: Sequence[Any]) -> Any:
        """Fold *values* left-to-right (order-stable for determinism)."""
        if not values:
            raise ValueError("cannot reduce an empty sequence")
        acc = values[0]
        for v in values[1:]:
            acc = self._fn(acc, v)
        return acc

    def __repr__(self) -> str:
        return f"Op({self.name})"


SUM = Op("sum", lambda a, b: np.add(a, b) if _arrayish(a, b) else a + b)
PROD = Op("prod", lambda a, b: np.multiply(a, b) if _arrayish(a, b) else a * b)
MIN = Op("min", lambda a, b: np.minimum(a, b) if _arrayish(a, b) else min(a, b))
MAX = Op("max", lambda a, b: np.maximum(a, b) if _arrayish(a, b) else max(a, b))


def _arrayish(a: Any, b: Any) -> bool:
    return isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
