"""Rank-side communicator API for the simulated MPI layer.

One :class:`Communicator` instance exists per rank (an *endpoint* onto
the shared :class:`~repro.mpi.world.World`).  All communication calls
are generators intended for ``yield from`` inside rank processes.

Collective semantics: the *n*-th collective call made by each rank of a
world is matched with the *n*-th call of every other rank (SPMD
discipline).  A rank calling a different collective kind at the same
sequence index is reported as a :class:`~repro.sim.engine.SimulationError`
— the simulated analogue of an MPI mismatch hang.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.mpi.datasize import nbytes_of
from repro.mpi.ops import Op, SUM
from repro.mpi.request import Request
from repro.sim.engine import SimulationError
from repro.sim.resources import Mailbox

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = Mailbox.ANY
ANY_TAG = Mailbox.ANY


class Communicator:
    """The per-rank face of a :class:`~repro.mpi.world.World`."""

    def __init__(self, world: "World", rank: int):  # noqa: F821
        self.world = world
        self.rank = rank
        self._coll_seq = 0

    # -- identity -------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def env(self):
        return self.world.env

    @property
    def node_id(self) -> int:
        return self.world.rank_nodes[self.rank]

    @property
    def node(self):
        """Machine node this rank runs on (None without node lookup)."""
        return self.world.node_of(self.rank)

    # -- local work -------------------------------------------------------
    def compute(self, flops: float, *, cores: int = 1) -> Generator:
        """Process body: burn *flops* on this rank's node cores."""
        node = self.node
        if node is None:
            # No node model attached: charge time at a nominal 1 Gflop/s.
            yield self.env.timeout(flops / 1e9)
            return flops / 1e9
        t = yield from node.compute(flops, cores=cores)
        return t

    def sleep(self, seconds: float) -> Generator:
        """Process body: idle for *seconds* of simulated time."""
        yield self.env.timeout(seconds)

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> Generator:
        """Process body: blocking send (completes when data is delivered)."""
        self._check_peer(dest)
        size = nbytes_of(obj)
        yield from self.world.network.transfer(
            self.node_id, self.world.rank_nodes[dest], size
        )
        self.world.mailbox(dest).deliver(self.rank, tag, obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; returns a :class:`Request`."""
        proc = self.env.process(
            self.send(obj, dest, tag), name=f"isend {self.rank}->{dest}"
        )
        return Request(proc)

    def recv(
        self, source: Any = ANY_SOURCE, tag: Any = ANY_TAG
    ) -> Generator:
        """Process body: blocking receive; returns the payload."""
        _src, _tag, payload = yield self.world.mailbox(self.rank).receive(
            source=source, tag=tag
        )
        return payload

    def recv_with_status(
        self, source: Any = ANY_SOURCE, tag: Any = ANY_TAG
    ) -> Generator:
        """Like :meth:`recv` but returns ``(payload, source, tag)``."""
        src, tg, payload = yield self.world.mailbox(self.rank).receive(
            source=source, tag=tag
        )
        return payload, src, tg

    def irecv(self, source: Any = ANY_SOURCE, tag: Any = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()`` returns the payload."""

        def body():
            payload = yield from self.recv(source, tag)
            return payload

        return Request(self.env.process(body(), name=f"irecv @{self.rank}"))

    # -- collectives --------------------------------------------------------
    def barrier(self) -> Generator:
        """Process body: block until every rank has arrived."""
        yield from self._collective("barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Generator:
        """Process body: returns root's object on every rank."""
        result = yield from self._collective("bcast", obj, root=root)
        return result

    def reduce(self, value: Any, op: Op = SUM, root: int = 0) -> Generator:
        """Process body: returns reduction on *root*, None elsewhere."""
        result = yield from self._collective("reduce", value, op=op, root=root)
        return result

    def allreduce(self, value: Any, op: Op = SUM) -> Generator:
        """Process body: reduction whose result lands on every rank."""
        result = yield from self._collective("allreduce", value, op=op)
        return result

    def scan(self, value: Any, op: Op = SUM) -> Generator:
        """Process body: inclusive prefix reduction — rank *r* receives
        ``op(v_0, ..., v_r)`` (the 'prefix sums' of §IV.B's aggregated
        results, e.g. global array offsets from local sizes)."""
        result = yield from self._collective("scan", value, op=op)
        return result

    def exscan(self, value: Any, op: Op = SUM) -> Generator:
        """Exclusive prefix reduction; rank 0 receives None."""
        result = yield from self._collective("exscan", value, op=op)
        return result

    def sendrecv(
        self, obj: Any, dest: int, source: Any = ANY_SOURCE,
        sendtag: int = 0, recvtag: Any = ANY_TAG,
    ) -> Generator:
        """Process body: concurrent send + receive (deadlock-free pairwise
        exchange)."""
        req = self.isend(obj, dest, sendtag)
        payload = yield from self.recv(source, recvtag)
        yield from req.wait()
        return payload

    def gather(self, value: Any, root: int = 0) -> Generator:
        """Process body: root receives ``[v_0 .. v_{p-1}]``, others None."""
        result = yield from self._collective("gather", value, root=root)
        return result

    def allgather(
        self, value: Any, *, wire_scale: Optional[float] = None
    ) -> Generator:
        """Process body: every rank receives [v_0 .. v_{p-1}]."""
        result = yield from self._collective(
            "allgather", value, wire_scale=wire_scale
        )
        return result

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Generator:
        """Process body: rank *i* receives ``values[i]`` supplied by root."""
        result = yield from self._collective("scatter", values, root=root)
        return result

    def alltoall(
        self, values: Sequence[Any], *, wire_scale: Optional[float] = None
    ) -> Generator:
        """Process body: personalised exchange.

        Each rank passes a length-``size`` sequence; rank *i* receives
        ``[values_0[i], values_1[i], ...]``.  ``wire_scale`` overrides
        the world's wire inflation for this call (used when a payload's
        logical-to-functional ratio differs from the world default).
        """
        if len(values) != self.size:
            raise ValueError(
                f"alltoall needs {self.size} payloads, got {len(values)}"
            )
        result = yield from self._collective(
            "alltoall", list(values), wire_scale=wire_scale
        )
        return result

    # alltoallv is semantically identical here (payloads may be ragged
    # numpy arrays); provided for API familiarity.
    alltoallv = alltoall

    def _collective(self, kind: str, payload: Any, **kwargs) -> Generator:
        seq = self._coll_seq
        self._coll_seq += 1
        result = yield from self.world.collective(
            seq, kind, self.rank, payload, **kwargs
        )
        return result

    # -- misc -----------------------------------------------------------------
    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise SimulationError(
                f"peer rank {rank} outside world of size {self.size}"
            )

    def __repr__(self) -> str:
        return f"Communicator(world={self.world.name!r}, rank={self.rank})"
