"""Nonblocking-communication request handles."""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Event

__all__ = ["Request"]


class Request:
    """Handle for a nonblocking send/receive.

    Mirrors mpi4py's ``Request``: :meth:`wait` blocks the calling
    process (``yield from req.wait()``), :meth:`test` polls.
    """

    def __init__(self, event: Event):
        self._event = event

    @property
    def event(self) -> Event:
        return self._event

    def test(self) -> bool:
        """True once the operation has completed."""
        return self._event.triggered

    def wait(self) -> Generator:
        """Process body: wait for completion and return the result."""
        result = yield self._event
        return result

    @staticmethod
    def wait_all(env, requests: list["Request"]) -> Generator:
        """Process body: wait for every request; returns list of results."""
        results = []
        for req in requests:
            value = yield req._event
            results.append(value)
        return results
