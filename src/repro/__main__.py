"""Command-line entry point: ``python -m repro <command>``.

Commands map to the experiment harness:

- ``run-all``        — every figure + headline numbers
- ``fig7``           — individual operations (sort/hist/2-D hist)
- ``fig8``           — GTC simulation performance
- ``fig9``           — DataSpaces query service
- ``fig10``          — Pixie3D simulation performance
- ``fig11``          — merged vs unmerged reads
- ``headline``       — §V prose numbers, paper vs measured
- ``utilization``    — staging-node headroom between dumps
- ``chaos``          — staging-node crash recovery (resilience)
- ``check``          — verification: schedule fuzzing, pipeline
  invariants, differential operator oracles (``--fuzz N`` etc.; see
  ``python -m repro check --help``)
- ``perf``           — hot-path micro-benchmarks: kernel variants
  (naive/vectorized/parallel), FFS packing, event-queue backends, and
  the 10k/50k/100k-rank weak-scaling sweep (``--scale``); writes
  ``BENCH_*.json`` sidecars and guards ratio metrics against the
  committed baseline (see ``python -m repro perf --help``)
- ``jobs``           — multi-tenant pipeline service: run N tenants
  concurrently on one shared staging fleet with fair-share carves,
  per-tenant ledgers and solo-vs-contended isolation cross-checks
  (``run``/``fuzz``; see ``python -m repro jobs --help``)
- ``serve``          — query-serving subsystem: offered-load sweep of
  point/range/aggregation queries with result caching, Hilbert-sharded
  index ownership and credit/CoDel admission; writes
  ``BENCH_query.json`` (see ``python -m repro serve --help``)
- ``stream``         — pub/sub step streaming: the coupled-workflow
  scenario (in-transit analysis + mid-run follower + slow consumer
  under credit backpressure) over DataSpaces continuous queries;
  writes ``BENCH_stream.json`` (see ``python -m repro stream --help``)
- ``scenarios``      — adversarial scenario library: named, seeded
  chaos scenarios (hot-spot skew, stragglers, corrupt/withheld
  fetches, regional partitions, kitchen sink) mapped in THREATS.md to
  the invariants that must survive them; ``list``/``run``/``sweep``
  with the ``BENCH_chaos_matrix.json`` guard (see
  ``python -m repro scenarios --help``)

``fig7``, ``headline`` and ``chaos`` accept ``--trace [PATH]`` to dump
a Chrome ``trace_event`` file (viewable in https://ui.perfetto.dev), a
``.jsonl`` span sidecar and a metrics summary table.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    """Parse arguments and dispatch to the chosen experiment."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PreDatA (IPDPS 2010) reproduction harness",
    )
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # the verification CLI owns its own argument set
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "perf":
        # the perf CLI owns its own argument set
        from repro.perf.bench import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "jobs":
        # the multi-tenant jobs CLI owns its own argument set
        from repro.jobs.cli import main as jobs_main

        return jobs_main(argv[1:])
    if argv and argv[0] == "serve":
        # the query-serving CLI owns its own argument set
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "stream":
        # the streaming CLI owns its own argument set
        from repro.stream.cli import main as stream_main

        return stream_main(argv[1:])
    if argv and argv[0] == "scenarios":
        # the scenario-library CLI owns its own argument set
        from repro.scenarios.cli import main as scenarios_main

        return scenarios_main(argv[1:])
    parser.add_argument(
        "command",
        choices=["run-all", "fig7", "fig8", "fig9", "fig10", "fig11",
                 "headline", "utilization", "chaos", "check", "perf",
                 "jobs", "serve", "stream", "scenarios"],
        help="experiment to run",
    )
    parser.add_argument("--fast", action="store_true",
                        help="trimmed simulated runs")
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="PATH",
        help="(fig7/headline/chaos) write a Chrome trace + metrics "
             "summary; PATH defaults to <command>_trace.json",
    )
    parser.add_argument(
        "--flow", nargs="?", const=0.25, default=None, type=float,
        metavar="FRACTION",
        help="(fig7/chaos) enable flow control: cap each staging "
             "node's buffer pool at FRACTION of its per-step working "
             "set (default 0.25)",
    )
    args = parser.parse_args(argv)
    trace = None
    if args.trace is not None:
        trace = args.trace or f"{args.command}_trace.json"

    fast_fig7 = dict(ndumps=1, iterations_per_dump=2,
                     compute_seconds_per_iteration=10.0)
    fast_fig8 = dict(ndumps=1, iterations_per_dump=4,
                     compute_seconds_per_iteration=27.0)

    if args.command == "run-all":
        from repro.experiments.run_all import run_all

        run_all(fast=args.fast)
    elif args.command == "fig7":
        from repro.experiments import fig7

        kw = dict(fast_fig7) if args.fast else {}
        if args.flow is not None:
            kw["flow_fraction"] = args.flow
        fig7.main(trace=trace, **kw)
    elif args.command == "fig8":
        from repro.experiments import fig8

        fig8.main(**(fast_fig8 if args.fast else {}))
    elif args.command == "fig9":
        from repro.experiments import fig9

        fig9.main()
    elif args.command == "fig10":
        from repro.experiments import fig10

        fig10.main()
    elif args.command == "fig11":
        from repro.experiments import fig11

        fig11.main()
    elif args.command == "headline":
        from repro.experiments import headline

        headline.main(trace=trace, fast=args.fast)
    elif args.command == "utilization":
        from repro.experiments import utilization

        utilization.main()
    elif args.command == "chaos":
        from repro.experiments import chaos

        chaos.main(trace=trace, flow_fraction=args.flow)
    return 0


if __name__ == "__main__":
    sys.exit(main())
