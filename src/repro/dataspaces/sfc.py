"""Space-filling curves for DataSpaces' index hashing.

Two curves:

- a 2-D Hilbert curve (the locality-preserving order DataSpaces uses
  to linearise domains so that rectangular regions map to few,
  contiguous curve intervals);
- Morton (Z-order) encoding for arbitrary dimensionality, used as the
  fallback for 3-D and higher domains.

Both are exact bijections on their domains; tests verify this by
property.
"""

from __future__ import annotations

__all__ = [
    "hilbert_xy2d",
    "hilbert_d2xy",
    "hilbert_owner",
    "morton_encode",
    "morton_decode",
]


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Map (x, y) in a ``2^order x 2^order`` grid to its Hilbert index."""
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"point ({x},{y}) outside 2^{order} grid")
    rx = ry = 0
    d = 0
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Inverse of :func:`hilbert_xy2d`."""
    n = 1 << order
    if not 0 <= d < n * n:
        raise ValueError(f"index {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_owner(order: int, x: int, y: int, nowners: int) -> int:
    """Owner of grid cell ``(x, y)`` among *nowners* curve segments.

    The ``2^order x 2^order`` grid is linearised along the Hilbert
    curve and cut into *nowners* equal contiguous segments, so each
    owner holds one locality-preserving region of the key space — the
    hashing DataSpaces uses to spread index blocks over its servers,
    reused by :mod:`repro.serve` to assign index shards to staging
    nodes.
    """
    if nowners < 1:
        raise ValueError("need at least one owner")
    ncells = 1 << (2 * order)
    return hilbert_xy2d(order, x, y) * nowners // ncells


def _part1by_n(v: int, ndims: int, nbits: int) -> int:
    """Spread the low *nbits* of v, inserting ndims-1 zeros between bits."""
    out = 0
    for i in range(nbits):
        out |= ((v >> i) & 1) << (i * ndims)
    return out


def morton_encode(coords: tuple[int, ...], nbits: int = 21) -> int:
    """Interleave *coords* bitwise into a Z-order index."""
    ndims = len(coords)
    if ndims < 1:
        raise ValueError("need at least one coordinate")
    code = 0
    for axis, c in enumerate(coords):
        if c < 0 or c >= (1 << nbits):
            raise ValueError(f"coordinate {c} outside {nbits}-bit range")
        code |= _part1by_n(int(c), ndims, nbits) << axis
    return code


def morton_decode(code: int, ndims: int, nbits: int = 21) -> tuple[int, ...]:
    """Inverse of :func:`morton_encode`."""
    if code < 0:
        raise ValueError("negative Morton code")
    coords = []
    for axis in range(ndims):
        v = 0
        for i in range(nbits):
            v |= ((code >> (i * ndims + axis)) & 1) << i
        coords.append(v)
    return tuple(coords)
