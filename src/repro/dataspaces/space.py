"""The DataSpaces shared-space service (§IV.D).

Functional model: every ``put()`` really stores numpy data on the
simulated servers; every ``get()`` really reassembles the requested
sub-region from the stored pieces, whatever decomposition produced
them (data redistribution).  The timing model charges index hashing,
one-time query setup (discovery + routing), per-server wire transfers
through the machine network, and server-side scan work for aggregation
queries.

Index structure: the declared n-D domain is carved into a power-of-two
grid of *blocks*; blocks are ordered along a Hilbert curve (2-D
domains) or Morton order (otherwise) and contiguous runs of blocks are
assigned to servers — the locality-preserving linearisation that keeps
a rectangular query touching few servers.  Load balancing is two-level
(§IV.D): data is spread evenly by block at declare time, and
:meth:`DataSpaces.rebalance` redistributes index metadata by observed
per-block load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.dataspaces.sfc import hilbert_xy2d, morton_encode
from repro.machine.machine import Machine
from repro.sim.engine import Engine, Event

__all__ = ["Region", "DSQueryStats", "DataSpaces"]


@dataclass(frozen=True)
class Region:
    """An axis-aligned n-D box: inclusive ``lb``, exclusive ``ub``."""

    lb: tuple[int, ...]
    ub: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lb) != len(self.ub):
            raise ValueError("lb/ub rank mismatch")
        object.__setattr__(self, "lb", tuple(int(v) for v in self.lb))
        object.__setattr__(self, "ub", tuple(int(v) for v in self.ub))
        for lo, hi in zip(self.lb, self.ub):
            if hi <= lo:
                raise ValueError(f"empty region {self.lb}..{self.ub}")

    @property
    def ndim(self) -> int:
        return len(self.lb)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in zip(self.lb, self.ub))

    @property
    def cells(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def intersect(self, other: "Region") -> Optional["Region"]:
        """The overlapping box with *other*, or None when disjoint."""
        lb = tuple(max(a, b) for a, b in zip(self.lb, other.lb))
        ub = tuple(min(a, b) for a, b in zip(self.ub, other.ub))
        if any(hi <= lo for lo, hi in zip(lb, ub)):
            return None
        return Region(lb, ub)

    def slice_within(self, outer: "Region") -> tuple[slice, ...]:
        """Numpy selection of *self* inside an array covering *outer*."""
        return tuple(
            slice(lo - olo, hi - olo)
            for lo, hi, olo in zip(self.lb, self.ub, outer.lb)
        )


@dataclass
class DSQueryStats:
    """Timing breakdown of one client's interaction (Fig. 9 series)."""

    setup_seconds: float = 0.0  # first-query discovery/routing
    hashing_seconds: float = 0.0  # index hashing at the servers
    query_seconds: float = 0.0  # data retrieval
    servers_contacted: int = 0
    bytes_moved: float = 0.0


@dataclass
class _StoredPiece:
    version: int
    region: Region
    data: np.ndarray


@dataclass
class _ContinuousQuery:
    name: str
    region: Region
    client_node: int
    callback: Callable[[Region, int], None]


class _DomainIndex:
    """Block partition of one declared domain across servers."""

    def __init__(self, dims: tuple[int, ...], nservers: int, blocks_per_server: int):
        self.dims = tuple(int(d) for d in dims)
        self.nservers = nservers
        ndim = len(self.dims)
        # power-of-two block grid with ~blocks_per_server*nservers blocks
        target = max(nservers * blocks_per_server, 1)
        per_dim = max(1, round(target ** (1.0 / ndim)))
        order = max(1, int(np.ceil(np.log2(per_dim))))
        self.order = order
        self.grid = tuple(min(1 << order, d) for d in self.dims)
        self.block_shape = tuple(
            int(np.ceil(d / g)) for d, g in zip(self.dims, self.grid)
        )
        blocks = list(np.ndindex(*self.grid))
        # order blocks along the SFC for locality
        if ndim == 2:
            key = lambda b: hilbert_xy2d(self.order, b[0], b[1])  # noqa: E731
        else:
            key = lambda b: morton_encode(b, nbits=self.order)  # noqa: E731
        blocks.sort(key=key)
        self.blocks = blocks
        # contiguous runs of the SFC order to servers (even split)
        self.owner: dict[tuple[int, ...], int] = {}
        per = int(np.ceil(len(blocks) / nservers))
        for i, b in enumerate(blocks):
            self.owner[b] = min(i // per, nservers - 1)
        self.load_bytes: dict[tuple[int, ...], float] = {b: 0.0 for b in blocks}

    def block_region(self, b: tuple[int, ...]) -> Region:
        lb = tuple(bi * s for bi, s in zip(b, self.block_shape))
        ub = tuple(
            min((bi + 1) * s, d)
            for bi, s, d in zip(b, self.block_shape, self.dims)
        )
        return Region(lb, ub)

    def blocks_for(self, region: Region) -> list[tuple[int, ...]]:
        lo = tuple(l // s for l, s in zip(region.lb, self.block_shape))
        hi = tuple(
            min((u - 1) // s, g - 1)
            for u, s, g in zip(region.ub, self.block_shape, self.grid)
        )
        out = []
        for b in np.ndindex(*[h - l + 1 for l, h in zip(lo, hi)]):
            out.append(tuple(l + o for l, o in zip(lo, b)))
        return out

    def servers_for(self, region: Region) -> dict[int, list[tuple[int, ...]]]:
        by_server: dict[int, list[tuple[int, ...]]] = {}
        for b in self.blocks_for(region):
            by_server.setdefault(self.owner[b], []).append(b)
        return by_server

    def rebalance(self) -> int:
        """Reassign blocks so per-server stored bytes even out.

        Returns the number of blocks whose ownership moved (index
        metadata redistribution — the second load-balancing level).
        """
        order = self.blocks
        total = sum(self.load_bytes.values())
        if total <= 0:
            return 0
        target = total / self.nservers
        moved = 0
        server = 0
        acc = 0.0
        for b in order:
            if server < self.nservers - 1 and acc >= target:
                server += 1
                acc = 0.0
            if self.owner[b] != server:
                moved += 1
                self.owner[b] = server
            acc += self.load_bytes[b]
        return moved


class DataSpaces:
    """The distributed shared-space service on the staging area.

    Parameters
    ----------
    env: simulation engine.
    machine: machine hosting the servers.
    server_nodes: machine node id per DataSpaces server process.
    blocks_per_server: index granularity.
    hash_seconds_per_block: index-hash cost charged per block touched.
    setup_rounds: discovery round-trips on a client's first query.
    """

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        server_nodes: list[int],
        *,
        blocks_per_server: int = 8,
        hash_seconds_per_block: float = 2e-5,
        setup_rounds: int = 3,
        wire_scale: float = 1.0,
        serve_bandwidth: Optional[float] = None,
        setup_server_seconds: float = 0.0,
        reply_overhead_seconds: float = 0.0,
    ):
        """``wire_scale`` multiplies transferred byte counts for timing
        when stored functional data stands in for a larger logical
        volume (cf. ``OutputStep.volume_scale``).

        ``serve_bandwidth`` (bytes/s, logical) caps each server
        process's retrieval rate — index traversal plus scatter/gather
        copies are far slower than the NIC.  One core per concurrent
        request is occupied for the serve duration, so bursts of
        clients queue on the server node's cores.

        ``setup_server_seconds`` is the CPU time a first-contact
        discovery request costs on the bootstrap server; concurrent
        new clients serialise on its cores (the reason first-query
        setup grows with the number of querying cores, Fig. 9)."""
        if not server_nodes:
            raise ValueError("need at least one server node")
        if wire_scale <= 0:
            raise ValueError("wire_scale must be positive")
        if serve_bandwidth is not None and serve_bandwidth <= 0:
            raise ValueError("serve_bandwidth must be positive")
        if setup_server_seconds < 0:
            raise ValueError("setup_server_seconds must be non-negative")
        if reply_overhead_seconds < 0:
            raise ValueError("reply_overhead_seconds must be non-negative")
        self.env = env
        self.machine = machine
        self.server_nodes = list(server_nodes)
        self.blocks_per_server = blocks_per_server
        self.hash_seconds_per_block = hash_seconds_per_block
        self.setup_rounds = setup_rounds
        self.wire_scale = wire_scale
        self.serve_bandwidth = serve_bandwidth
        self.setup_server_seconds = setup_server_seconds
        #: client-side cost of posting/assembling each server's reply;
        #: queries spanning more servers pay more (the paper's Fig. 9
        #: growth with querying-core count — a bigger weak-scaled
        #: domain maps each query onto more staging cores)
        self.reply_overhead_seconds = reply_overhead_seconds
        self._indexes: dict[str, _DomainIndex] = {}
        #: per server: name -> list of stored pieces
        self._storage: dict[int, dict[str, list[_StoredPiece]]] = {
            s: {} for s in range(len(self.server_nodes))
        }
        self._versions: dict[str, int] = {}
        self._writers: dict[str, int] = {}
        self._write_clear: dict[str, Event] = {}
        self._continuous: dict[int, _ContinuousQuery] = {}
        self._next_subscription_id = 0
        self._client_setup_done: set[int] = set()
        self.bytes_stored = 0.0
        #: incrementally maintained stored bytes per server (kept in
        #: lockstep with ``_storage`` by ``put``)
        self._server_bytes: list[float] = [0.0] * len(self.server_nodes)

    # -- declaration -----------------------------------------------------
    def declare(self, name: str, dims: tuple[int, ...]) -> None:
        """Declare a named domain before any put/get."""
        if name in self._indexes:
            raise ValueError(f"domain {name!r} already declared")
        self._indexes[name] = _DomainIndex(
            dims, len(self.server_nodes), self.blocks_per_server
        )
        self._versions[name] = 0
        self._writers[name] = 0

    def index(self, name: str) -> _DomainIndex:
        """The block index of the declared domain *name*."""
        if name not in self._indexes:
            raise KeyError(f"domain {name!r} not declared")
        return self._indexes[name]

    def version(self, name: str) -> int:
        """Current committed version of the declared domain *name*."""
        if name not in self._versions:
            raise KeyError(f"domain {name!r} not declared")
        return self._versions[name]

    # -- coherency helpers ----------------------------------------------------
    def _begin_write(self, name: str) -> None:
        self._writers[name] += 1

    def _end_write(self, name: str) -> None:
        self._writers[name] -= 1
        if self._writers[name] == 0:
            ev = self._write_clear.pop(name, None)
            if ev is not None and not ev.triggered:
                ev.succeed()

    def _wait_writers(self, name: str) -> Generator:
        while self._writers[name] > 0:
            ev = self._write_clear.get(name)
            if ev is None or ev.triggered:
                ev = self.env.event()
                self._write_clear[name] = ev
            yield ev

    # -- put ----------------------------------------------------------------------
    def put(
        self,
        client_node: int,
        name: str,
        region: Region,
        data: np.ndarray,
        *,
        stats: Optional[DSQueryStats] = None,
    ) -> Generator:
        """Process body: insert *data* covering *region*.

        The data is split along index blocks and shipped to the owning
        servers; the object version is bumped atomically at completion
        (writers exclude overlapping readers until then).
        """
        idx = self.index(name)
        data = np.asarray(data)
        if tuple(data.shape) != region.shape:
            raise ValueError(
                f"data shape {data.shape} != region shape {region.shape}"
            )
        self._begin_write(name)
        try:
            by_server = idx.servers_for(region)
            yield self.env.timeout(
                self.hash_seconds_per_block
                * sum(len(bs) for bs in by_server.values())
            )
            version = self._versions[name] + 1
            events = []
            staged: list[tuple[int, list[_StoredPiece], float]] = []
            for server, blocks in by_server.items():
                nbytes = 0.0
                pieces = []
                for b in blocks:
                    cut = idx.block_region(b).intersect(region)
                    if cut is None:
                        continue
                    piece = data[cut.slice_within(region)]
                    pieces.append(_StoredPiece(version, cut, piece.copy()))
                    nbytes += piece.nbytes
                    idx.load_bytes[b] += piece.nbytes
                staged.append((server, pieces, nbytes))
                if stats is not None:
                    stats.bytes_moved += nbytes
                events.append(
                    self.machine.network.transfer_event(
                        client_node,
                        self.server_nodes[server],
                        nbytes * self.wire_scale,
                        rdma=True,
                    )
                )
            if events:
                yield self.env.all_of(events)
            # commit: pieces become visible only once every server has
            # the data — readers never observe a half-landed put
            for server, pieces, nbytes in staged:
                self._storage[server].setdefault(name, []).extend(pieces)
                self.bytes_stored += nbytes
                self._server_bytes[server] += nbytes
            self._versions[name] = version
        finally:
            self._end_write(name)
        # notifications for continuous queries (snapshot: a callback may
        # register or unregister without disturbing this round)
        for cq in list(self._continuous.values()):
            if cq.name == name and cq.region.intersect(region) is not None:
                yield from self.machine.network.transfer(
                    self.server_nodes[0], cq.client_node, 64.0
                )
                cq.callback(region, self._versions[name])

    # -- get -----------------------------------------------------------------------
    def get(
        self,
        client_node: int,
        name: str,
        region: Region,
        *,
        stats: Optional[DSQueryStats] = None,
    ) -> Generator:
        """Process body: retrieve the sub-array covering *region*.

        Returns a numpy array of ``region.shape``; raises if any cell
        has never been written.
        """
        idx = self.index(name)
        yield from self._wait_writers(name)
        stats = stats if stats is not None else DSQueryStats()
        t0 = self.env.now
        if client_node not in self._client_setup_done:
            # one-time discovery: metadata exchange round-trips plus
            # registration work on the bootstrap server; concurrent
            # first-time clients serialise on its cores.
            for _ in range(self.setup_rounds):
                yield from self.machine.network.transfer(
                    client_node, self.server_nodes[0], 512.0
                )
                yield from self.machine.network.transfer(
                    self.server_nodes[0], client_node, 4096.0
                )
            if self.setup_server_seconds > 0:
                boot = self.machine.node(self.server_nodes[0])
                yield from boot.compute(
                    self.setup_server_seconds * boot.config.core_flops
                )
            self._client_setup_done.add(client_node)
            stats.setup_seconds += self.env.now - t0
        t0 = self.env.now
        by_server = idx.servers_for(region)
        hash_t = self.hash_seconds_per_block * sum(
            len(bs) for bs in by_server.values()
        )
        yield self.env.timeout(hash_t)
        stats.hashing_seconds += self.env.now - t0

        t0 = self.env.now
        out = np.zeros(region.shape)
        filled = np.zeros(region.shape, dtype=bool)
        events = []
        for server in by_server:
            pieces = self._storage[server].get(name, [])
            nbytes = 0.0
            for piece in sorted(pieces, key=lambda p: p.version):
                cut = piece.region.intersect(region)
                if cut is None:
                    continue
                out[cut.slice_within(region)] = piece.data[
                    cut.slice_within(piece.region)
                ]
                filled[cut.slice_within(region)] = True
                nbytes += piece.data[cut.slice_within(piece.region)].nbytes
            stats.bytes_moved += nbytes
            events.append(
                self.env.process(
                    self._serve_and_ship(server, client_node, nbytes),
                    name="ds-serve",
                )
            )
        stats.servers_contacted += len(by_server)
        if events:
            yield self.env.all_of(events)
        if self.reply_overhead_seconds > 0:
            yield self.env.timeout(
                self.reply_overhead_seconds * len(by_server)
            )
        stats.query_seconds += self.env.now - t0
        if not filled.all():
            raise KeyError(
                f"{name!r}: {int((~filled).sum())} cells of {region} unwritten"
            )
        return out

    def _serve_and_ship(self, server: int, client_node: int, nbytes: float):
        """Process body: server-side gather (core-occupied, rate-capped)
        then the wire transfer to the client."""
        logical = nbytes * self.wire_scale
        if self.serve_bandwidth is not None and logical > 0:
            node = self.machine.node(self.server_nodes[server])
            serve_seconds = logical / self.serve_bandwidth
            yield from node.compute(serve_seconds * node.config.core_flops)
        yield from self.machine.network.transfer(
            self.server_nodes[server], client_node, logical, rdma=True
        )

    # -- aggregation queries -------------------------------------------------------
    def query_reduce(
        self,
        client_node: int,
        name: str,
        region: Region,
        *,
        stats: Optional[DSQueryStats] = None,
    ) -> Generator:
        """Process body: server-side min/max/avg over *region*.

        Only scalars cross the network (the servers scan locally).
        """
        idx = self.index(name)
        yield from self._wait_writers(name)
        by_server = idx.servers_for(region)
        yield self.env.timeout(
            self.hash_seconds_per_block * sum(len(b) for b in by_server.values())
        )
        mins, maxs, total, count = [], [], 0.0, 0
        events = []
        for server in by_server:
            # overlay ascending versions so the scan sees one coherent
            # snapshot (latest write wins per cell), exactly like get()
            overlay = np.zeros(region.shape)
            filled = np.zeros(region.shape, dtype=bool)
            scanned = 0.0
            for piece in sorted(
                self._storage[server].get(name, []), key=lambda p: p.version
            ):
                cut = piece.region.intersect(region)
                if cut is None:
                    continue
                vals = piece.data[cut.slice_within(piece.region)]
                overlay[cut.slice_within(region)] = vals
                filled[cut.slice_within(region)] = True
                scanned += vals.nbytes
            vals = overlay[filled]
            if vals.size:
                mins.append(float(vals.min()))
                maxs.append(float(vals.max()))
                total += float(vals.sum())
                count += vals.size
            # server-side scan cost
            node = self.machine.node(self.server_nodes[server])
            events.append(
                self.env.process(node.compute(2.0 * scanned), name="ds-scan")
            )
            events.append(
                self.machine.network.transfer_event(
                    self.server_nodes[server], client_node, 24.0
                )
            )
        if events:
            yield self.env.all_of(events)
        if stats is not None:
            stats.servers_contacted += len(by_server)
        if count == 0:
            raise KeyError(f"no data in {region} of {name!r}")
        return {
            "min": min(mins),
            "max": max(maxs),
            "avg": total / count,
            "count": count,
        }

    # -- continuous queries ------------------------------------------------------------
    def register_continuous(
        self,
        name: str,
        region: Region,
        client_node: int,
        callback: Callable[[Region, int], None],
    ) -> int:
        """Notify *callback* whenever a put intersects *region*.

        Returns a durable subscription id accepted by
        :meth:`unregister_continuous`.
        """
        self.index(name)  # validates declaration
        sid = self._next_subscription_id
        self._next_subscription_id += 1
        self._continuous[sid] = _ContinuousQuery(name, region, client_node, callback)
        return sid

    def unregister_continuous(self, subscription_id: int) -> None:
        """Drop the continuous query *subscription_id*; its callback
        never fires again (a departed reader stops costing puts)."""
        if self._continuous.pop(subscription_id, None) is None:
            raise KeyError(f"unknown subscription id {subscription_id}")

    # -- load balancing ------------------------------------------------------------------
    def server_load(self) -> list[float]:
        """Stored bytes per server (level-1 balance view).

        O(nservers): the totals are maintained incrementally by
        :meth:`put` instead of re-walking every stored piece.
        """
        return list(self._server_bytes)

    def rebalance(self, name: str) -> int:
        """Redistribute index metadata of *name* by observed load."""
        return self.index(name).rebalance()
