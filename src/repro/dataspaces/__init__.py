"""DataSpaces: the global data knowledge service (§IV.D).

A virtual, semantically-specialised shared space layered over the
staging area, providing:

1. **data sharing** — ``put()`` / ``get()`` operators agnostic of data
   location or distribution;
2. **data redistribution** — producers and consumers may use different
   domain decompositions and process counts;
3. **data indexing** — n-D domains are linearised along a Hilbert
   space-filling curve and block-partitioned across the DataSpaces
   servers (:mod:`repro.dataspaces.sfc`);
4. **data querying** — point/region retrieval, aggregation queries
   (min/max/avg over a sub-region), and *continuous* queries whose
   registrants are notified on every intersecting insert.

The storage service keeps versioned in-memory copies with a coherency
protocol (writers exclude overlapping readers), and load balancing
operates at two levels: data is spread evenly across servers by SFC
blocks, and index metadata redistributes by observed load
(:mod:`repro.dataspaces.space`).
"""

from repro.dataspaces.sfc import (
    hilbert_d2xy,
    hilbert_owner,
    hilbert_xy2d,
    morton_decode,
    morton_encode,
)
from repro.dataspaces.space import (
    DataSpaces,
    DSQueryStats,
    Region,
)

__all__ = [
    "DataSpaces",
    "DSQueryStats",
    "Region",
    "hilbert_d2xy",
    "hilbert_owner",
    "hilbert_xy2d",
    "morton_decode",
    "morton_encode",
]
