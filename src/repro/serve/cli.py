"""``python -m repro serve`` — offered-load sweep of the query service.

Runs the seeded open-loop workload at each requested load level,
prints the latency/hit-rate table, writes the ``BENCH_query.json``
sidecar, and (with ``--baseline``) guards the sweep against the
committed baseline via the perf-regression harness.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path
from typing import Optional

from repro.experiments.report import format_table, fmt_pct
from repro.perf.bench import compare, default_baseline_dir, write_record
from repro.serve.bench import BENCH_CONFIG, DEFAULT_LOADS, bench_query
from repro.serve.config import ServeConfig

__all__ = ["main"]


def main(argv: Optional[list] = None) -> int:
    """Run the offered-load sweep CLI; returns a process exit code."""
    ap = argparse.ArgumentParser(
        prog="repro serve",
        description="query-serving subsystem: offered-load sweep",
    )
    ap.add_argument(
        "--loads", type=float, nargs="+", default=list(DEFAULT_LOADS),
        metavar="QPS", help="offered-load levels to sweep (queries/s)",
    )
    ap.add_argument(
        "--duration", type=float, default=2.0,
        help="sim seconds of arrivals per load point (default 2.0)",
    )
    ap.add_argument("--seed", type=int, default=20260808)
    ap.add_argument(
        "--nshards", type=int, default=ServeConfig.nshards,
        help="index shards (staging-node owners)",
    )
    ap.add_argument(
        "--out", type=Path, default=Path("."),
        help="directory for the BENCH_query.json sidecar",
    )
    ap.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline dir to guard against ('default' for the "
        "committed benchmarks/perf/baselines)",
    )
    ap.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional guard regression (default 0.2)",
    )
    args = ap.parse_args(argv)

    # same pressure config the committed baseline was recorded with,
    # so `--baseline default` compares like with like
    config = dataclasses.replace(BENCH_CONFIG, nshards=args.nshards)
    record = bench_query(
        loads=tuple(args.loads), duration=args.duration,
        seed=args.seed, config=config,
    )
    rows = [
        [
            f"{p['offered_qps']:g}",
            p["issued"],
            p["completed"],
            p["degraded"],
            p["shed"],
            f"{p['p50'] * 1e3:.3f}",
            f"{p['p99'] * 1e3:.3f}",
            fmt_pct(p["hit_rate"]),
        ]
        for p in record["points"]
    ]
    print(
        format_table(
            ["offered q/s", "issued", "done", "degraded", "shed",
             "p50 ms", "p99 ms", "hit rate"],
            rows,
            title=f"query serving sweep ({config.nshards} shards, "
            f"seed {args.seed})",
        )
    )
    path = write_record("query", record, args.out)
    print(f"[serve] wrote {path}")
    if args.baseline is not None:
        base_dir = (
            default_baseline_dir()
            if str(args.baseline) == "default"
            else args.baseline
        )
        base_path = base_dir / "BENCH_query.json"
        if not base_path.exists():
            print(f"[serve] no baseline at {base_path}; skipping guard")
            return 0
        problems = compare(
            record, json.loads(base_path.read_text()), args.tolerance
        )
        for p in problems:
            print(f"[serve] REGRESSION {p}")
        if problems:
            return 1
        print("[serve] all guards clean")
    return 0
