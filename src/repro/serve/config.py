"""Knobs of the query-serving subsystem.

All sizes are bytes and all times simulated seconds, matching the
conventions of :mod:`repro.flow`.  The service-time constants model a
staging node answering index queries: a fixed per-shard dispatch
overhead plus per-row costs for candidate checks and result shipping,
with scatter/gather network hops around the shard work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flow.config import FlowConfig

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Query-serving parameters.

    Attributes
    ----------
    nshards:
        Index shards (one per owning staging node).  Partitions are
        assigned to shards by Hilbert-SFC hashing of their key
        interval; queries scatter to owning shards and gather.
    sfc_order:
        Hilbert curve order: the key space is hashed on a
        ``2^sfc_order`` x ``2^sfc_order`` grid.
    cache_entries:
        Capacity (entries) of the front result/index cache, LRU-evicted.
    stale_bound:
        How many versions stale a *degraded* cache read may be.  Fresh
        reads always require the current version; a commit removes the
        step's entries outright, so no post-commit stale read exists.
    credit_bytes:
        Admission budget: byte credits outstanding across in-flight
        queries (each query charges ``query_cost_bytes``).
    query_cost_bytes:
        Admission charge per query — the modelled buffer/result
        footprint a query pins while being served.
    codel_target:
        CoDel sojourn target for the admission queue: a query waiting
        longer than the (shrinking) allowance degrades to a
        stale-but-bounded cache read instead of queueing unboundedly.
        ``None`` disables degradation (queries block for admission).
    codel_interval:
        Recovery window of the CoDel control law (see
        :class:`repro.flow.config.FlowConfig`).
    route_seconds:
        One scatter or gather network hop to/from a shard owner.
    cache_hit_seconds:
        Time to answer straight from the front cache.
    shard_overhead_seconds:
        Fixed dispatch cost of one shard executing one sub-query.
    row_check_seconds:
        Per candidate row examined against raw values on a shard.
    row_emit_seconds:
        Per result row shipped back to the gatherer.
    """

    nshards: int = 4
    sfc_order: int = 5
    cache_entries: int = 512
    stale_bound: int = 1
    credit_bytes: float = 2 * 2**20
    query_cost_bytes: float = 64e3
    codel_target: Optional[float] = 0.02
    codel_interval: float = 0.1
    route_seconds: float = 2e-4
    cache_hit_seconds: float = 5e-5
    shard_overhead_seconds: float = 2e-4
    row_check_seconds: float = 5e-7
    row_emit_seconds: float = 1e-7

    def __post_init__(self) -> None:
        if self.nshards < 1:
            raise ValueError("nshards must be >= 1")
        if not 1 <= self.sfc_order <= 15:
            raise ValueError("sfc_order must be in [1, 15]")
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be >= 1")
        if self.stale_bound < 0:
            raise ValueError("stale_bound must be >= 0")
        if self.credit_bytes <= 0 or self.query_cost_bytes <= 0:
            raise ValueError("credit and query-cost bytes must be positive")
        if self.codel_target is not None and self.codel_target <= 0:
            raise ValueError("codel_target must be positive")
        if self.codel_interval <= 0:
            raise ValueError("codel_interval must be positive")
        for name in (
            "route_seconds",
            "cache_hit_seconds",
            "shard_overhead_seconds",
            "row_check_seconds",
            "row_emit_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def flow_config(self) -> FlowConfig:
        """The :class:`FlowConfig` behind the admission credit bank."""
        return FlowConfig(
            credit_bytes=self.credit_bytes,
            codel_target=self.codel_target,
            codel_interval=self.codel_interval,
        )
