"""Seeded open-loop client workload against the query service.

The driver models *offered load*: client queries arrive by a Poisson
process at a configured rate regardless of how fast the service
answers (open loop — the hallmark of latency benchmarking, since a
closed loop self-throttles exactly when the service degrades).  Query
arrival times, the query pool, and the popularity skew all come from
one seeded :class:`random.Random`, and latencies are simulated time,
so every load point is exactly reproducible.

A background producer keeps the data plane moving mid-run: it lands
chunks of a new step while clients query (exercising the in-flight
path) and commits the step partway through (exercising hard cache
invalidation under traffic).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.serve.config import ServeConfig
from repro.serve.service import Query, QueryService
from repro.sim.engine import Engine

__all__ = ["LoadPoint", "WorkloadDriver", "quantile"]


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of *values* (0 for an empty sequence)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@dataclass
class LoadPoint:
    """Outcome of one offered-load level."""

    offered_qps: float
    duration: float
    issued: int
    completed: int
    degraded: int
    stale_served: int
    shed: int
    partial_answers: int
    p50: float
    p99: float
    mean: float
    hit_rate: float
    cache_hits: int
    cache_misses: int
    #: raw per-query completion latencies (not serialised)
    latencies: list[float] = field(default_factory=list, repr=False)

    def slo_fraction(self, slo_seconds: float) -> float:
        """Share of served queries completing within *slo_seconds*."""
        if not self.latencies:
            return 0.0
        return sum(1 for v in self.latencies if v <= slo_seconds) / len(self.latencies)

    def to_dict(self) -> dict:
        """JSON-ready summary (raw latencies excluded)."""
        return {
            "offered_qps": self.offered_qps,
            "duration": self.duration,
            "issued": self.issued,
            "completed": self.completed,
            "degraded": self.degraded,
            "stale_served": self.stale_served,
            "shed": self.shed,
            "partial_answers": self.partial_answers,
            "p50": self.p50,
            "p99": self.p99,
            "mean": self.mean,
            "hit_rate": self.hit_rate,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass
class WorkloadDriver:
    """Open-loop query traffic generator.

    Each :meth:`run` builds a fresh engine, service, and dataset, so
    load points are independent and order-insensitive.
    """

    seed: int = 20260808
    config: ServeConfig = field(default_factory=ServeConfig)
    var: str = "rho"
    nclients: int = 8
    pool_size: int = 48
    hot_fraction: float = 0.25  # share of the pool that is "popular"
    hot_probability: float = 0.8  # chance a query draws from the hot set
    nparts: int = 8
    rows_per_part: int = 512
    ncols: int = 4
    bins: int = 32
    produce_inflight: bool = True  # land + commit a second step mid-run

    # -- dataset ------------------------------------------------------------
    def make_partitions(self, step: int) -> list[np.ndarray]:
        """Deterministic per-step particle partitions."""
        rng = np.random.default_rng(self.seed + 7919 * step)
        parts = []
        for i in range(self.nparts):
            # give each partition a distinct key neighbourhood on the
            # routing column so Hilbert sharding actually spreads them
            centre = (i + 0.5) / self.nparts * 100.0
            block = rng.normal(loc=centre, scale=4.0,
                               size=(self.rows_per_part, self.ncols))
            parts.append(block)
        return parts

    def make_pool(self, rng: random.Random) -> list[Query]:
        """The query pool clients draw from (range/point/agg mix)."""
        pool: list[Query] = []
        for i in range(self.pool_size):
            lo = rng.uniform(0.0, 90.0)
            hi = lo + rng.uniform(2.0, 25.0)
            kind = i % 3
            if kind == 0:
                pool.append(Query.range(self.var, {0: (lo, hi)}))
            elif kind == 1:
                # point probe plus a secondary range condition
                pool.append(
                    Query.range(
                        self.var,
                        {0: (lo, hi), 1: (rng.uniform(0, 50), 100.0)},
                    )
                )
            else:
                pool.append(
                    Query.aggregate(self.var, {0: (lo, hi)}, agg_col=self.ncols - 1)
                )
        return pool

    def _draw(self, rng: random.Random, pool: list[Query]) -> Query:
        hot = max(1, int(len(pool) * self.hot_fraction))
        if rng.random() < self.hot_probability:
            return pool[rng.randrange(hot)]
        return pool[rng.randrange(len(pool))]

    # -- one load point -----------------------------------------------------
    def run(self, offered_qps: float, duration: float = 2.0) -> LoadPoint:
        """Drive *offered_qps* for *duration* sim seconds, then drain."""
        if offered_qps <= 0 or duration <= 0:
            raise ValueError("offered_qps and duration must be positive")
        rng = random.Random(self.seed * 1_000_003 + int(round(offered_qps * 1000)))
        env = Engine()
        service = QueryService(
            env, self.config, indexed_columns=(0,), bins=self.bins
        )
        service.commit_step(self.var, 0, partitions=self.make_partitions(0))
        pool = self.make_pool(rng)
        issued = [0]

        def arrivals():
            while env.now < duration:
                yield env.timeout(rng.expovariate(offered_qps))
                if env.now >= duration:
                    break
                query = self._draw(rng, pool)
                client = issued[0] % self.nclients
                env.process(service.serve(client, issued[0], query))
                issued[0] += 1

        def producer():
            # land step-1 chunks across the first 60% of the run, then
            # commit — queries in between exercise the in-flight path
            # and the commit exercises hard invalidation under traffic
            step1 = self.make_partitions(1)
            service.begin_step(self.var, 1)
            gap = duration * 0.6 / max(1, len(step1))
            for part in step1:
                yield env.timeout(gap)
                service.land_chunk(self.var, 1, part)
            service.commit_step(self.var, 1)

        env.process(arrivals())
        if self.produce_inflight:
            env.process(producer())
        env.run()  # drain: arrivals stop at `duration`, queries finish

        stats = service.cache.stats
        return LoadPoint(
            offered_qps=offered_qps,
            duration=duration,
            issued=issued[0],
            completed=service.served,
            degraded=service.degraded,
            stale_served=service.stale_served,
            shed=service.shed,
            partial_answers=service.partial_served,
            p50=quantile(service.latencies, 0.50),
            p99=quantile(service.latencies, 0.99),
            mean=(
                sum(service.latencies) / len(service.latencies)
                if service.latencies
                else 0.0
            ),
            hit_rate=stats.hit_rate,
            cache_hits=stats.hits,
            cache_misses=stats.misses,
            latencies=list(service.latencies),
        )

    def sweep(self, loads: Sequence[float], duration: float = 2.0) -> list[LoadPoint]:
        """One independent :meth:`run` per offered load, in order."""
        return [self.run(qps, duration) for qps in loads]
