"""The query-serving service: cache, admission, scatter/gather.

:class:`QueryService` answers point/range/aggregation queries against
the steps the staging pipeline has produced — both *committed* steps
(served from the Hilbert-sharded bitmap indexes) and *in-flight* steps
whose chunks are still landing (served by scanning the landed
partitions, answers marked partial).

The serve path:

1. **admission** — every query charges ``query_cost_bytes`` against a
   :class:`~repro.flow.credits.CreditBank`.  With a CoDel target set,
   a query whose admission wait exceeds the shrinking allowance is not
   dropped but *degraded*: it falls back to a stale-but-bounded read
   of the result cache, and is shed only when no bounded entry exists.
2. **cache** — admitted queries probe the versioned LRU cache
   (:class:`~repro.serve.cache.QueryCache`); a fresh hit answers in
   ``cache_hit_seconds``.
3. **scatter/gather** — on a miss against a committed step the query
   routes to the owning shards (:meth:`ShardedStepIndex.owners_for`),
   each shard serialising its work on a FIFO
   :class:`~repro.sim.resources.Resource`, and the partials gather
   back (rows concatenated, aggregates merged).

Versioning makes cache coherence exact: chunk landings and commits
bump the step's build version, commits additionally hard-invalidate
the step's cache entries, and a result computed while the version
moved underneath it is never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.flow.credits import CreditBank
from repro.serve.cache import QueryCache
from repro.serve.config import ServeConfig
from repro.serve.shard import ShardedStepIndex, merge_aggregates, partial_aggregate
from repro.sim.engine import Engine
from repro.sim.resources import Resource

__all__ = ["Answer", "Query", "QueryService"]


@dataclass(frozen=True)
class Query:
    """One client query against ``(var, step)``.

    ``step=None`` targets the newest step of the variable (committed or
    in-flight).  Conditions are stored sorted so that equal queries
    share one cache shape.
    """

    var: str
    kind: str  # "range" | "point" | "agg"
    conditions: tuple[tuple[int, float, float], ...]
    step: Optional[int] = None
    agg_col: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("range", "point", "agg"):
            raise ValueError(f"unknown query kind {self.kind!r}")
        if not self.conditions:
            raise ValueError("query needs at least one condition")
        if self.kind == "agg" and self.agg_col is None:
            raise ValueError("aggregation query needs agg_col")

    @classmethod
    def range(cls, var, ranges: dict, step: Optional[int] = None) -> "Query":
        conds = tuple(sorted((c, float(lo), float(hi)) for c, (lo, hi) in ranges.items()))
        return cls(var=var, kind="range", conditions=conds, step=step)

    @classmethod
    def point(cls, var, col: int, value: float, step: Optional[int] = None) -> "Query":
        v = float(value)
        return cls(var=var, kind="point", conditions=((col, v, v),), step=step)

    @classmethod
    def aggregate(
        cls, var, ranges: dict, agg_col: int, step: Optional[int] = None
    ) -> "Query":
        conds = tuple(sorted((c, float(lo), float(hi)) for c, (lo, hi) in ranges.items()))
        return cls(var=var, kind="agg", conditions=conds, step=step, agg_col=agg_col)

    def shape(self) -> tuple:
        """Cache-key component identifying the query's work, not its target."""
        return (self.kind, self.conditions, self.agg_col)

    def ranges(self) -> dict:
        """Conditions as the ``{col: (lo, hi)}`` mapping engines expect."""
        return {col: (lo, hi) for col, lo, hi in self.conditions}


@dataclass
class _Result:
    """Cached payload of an executed query."""

    rows: Optional[np.ndarray]
    aggregate: Optional[dict]
    partial: bool
    shards: int


@dataclass
class Answer:
    """What the client gets back."""

    query: Query
    source: str  # "fresh" | "cache" | "stale" | "shed" | "no_data"
    latency: float
    step: Optional[int] = None
    rows: Optional[np.ndarray] = None
    aggregate: Optional[dict] = None
    partial: bool = False
    shards: int = 0

    @property
    def served(self) -> bool:
        return self.source in ("fresh", "cache", "stale")


@dataclass
class _StepState:
    """One ``(var, step)`` the service knows about."""

    var: str
    step: int
    committed: bool = False
    #: build version — bumped by every chunk landing and by commit
    version: int = 0
    partitions: list[np.ndarray] = field(default_factory=list)
    index: Optional[ShardedStepIndex] = None


class QueryService:
    """Serve queries against committed and in-flight steps."""

    def __init__(
        self,
        env: Engine,
        config: Optional[ServeConfig] = None,
        *,
        indexed_columns=(0,),
        bins: int = 64,
    ):
        self.env = env
        self.config = config or ServeConfig()
        self.indexed_columns = tuple(indexed_columns)
        self.bins = bins
        self.cache = QueryCache(self.config.cache_entries)
        self.bank = CreditBank(
            env, rank=0,
            capacity=self.config.credit_bytes,
            config=self.config.flow_config(),
        )
        self._shards = [Resource(env, 1) for _ in range(self.config.nshards)]
        self._steps: dict[tuple[str, int], _StepState] = {}
        self._latest: dict[str, int] = {}
        # -- always-on stats --------------------------------------------
        self.served = 0
        self.degraded = 0
        self.stale_served = 0
        self.shed = 0
        self.partial_served = 0
        #: completion latency (sim seconds) of every served query
        self.latencies: list[float] = []

    # -- data plane: steps arriving from the pipeline -----------------------
    def begin_step(self, var: str, step: int) -> None:
        """Announce an in-flight step whose chunks will land."""
        key = (var, step)
        if key not in self._steps:
            self._steps[key] = _StepState(var=var, step=step)
            if step >= self._latest.get(var, step):
                self._latest[var] = step

    def land_chunk(self, var: str, step: int, partition: np.ndarray) -> None:
        """A chunk of an in-flight step arrived on the staging area."""
        self.begin_step(var, step)
        state = self._steps[(var, step)]
        if state.committed:
            raise ValueError(f"step {step} of {var!r} is already committed")
        state.partitions.append(np.atleast_2d(np.asarray(partition)))
        state.version += 1
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("serve_chunks_landed")

    def commit_step(self, var: str, step: int, partitions=None) -> None:
        """Seal a step: build the sharded index, hard-invalidate cache.

        *partitions* may deliver the full data in one call for steps
        never announced in-flight.
        """
        self.begin_step(var, step)
        state = self._steps[(var, step)]
        if state.committed:
            return
        if partitions is not None:
            for p in partitions:
                state.partitions.append(np.atleast_2d(np.asarray(p)))
        if not any(len(p) for p in state.partitions):
            raise ValueError(f"committing empty step {step} of {var!r}")
        state.index = ShardedStepIndex(
            state.partitions,
            self.indexed_columns,
            nshards=self.config.nshards,
            bins=self.bins,
            order=self.config.sfc_order,
        )
        state.committed = True
        state.version += 1
        # partial in-flight answers must not outlive the commit, not
        # even as stale-bounded degraded reads
        self.cache.invalidate(var, step)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("serve_steps_committed")

    def latest_step(self, var: str) -> Optional[int]:
        """Newest step announced for *var*, or ``None`` if unknown."""
        return self._latest.get(var)

    def known_steps(self, var: str) -> list[int]:
        """All steps (committed or in-flight) known for *var*, sorted."""
        return sorted(s for v, s in self._steps if v == var)

    # -- serve path ---------------------------------------------------------
    def serve(self, client, qid, query: Query):
        """Process body answering *query* for *client*; returns an Answer."""
        t0 = self.env.now
        state = self._resolve(query)
        if state is None or not state.partitions:
            return self._finish(Answer(query=query, source="no_data", latency=0.0), t0)
        version = state.version
        key = self.cache.key(query.var, state.step, query.shape())
        cost = self.config.query_cost_bytes
        can_degrade = self.config.codel_target is not None
        granted = yield from self.bank.request(
            (client, qid), cost, can_degrade=can_degrade
        )
        if not granted:
            # degraded: a bounded-staleness cache read or nothing
            self.degraded += 1
            self._obs_inc("serve_degraded")
            cached = self.cache.get(
                key, state.version,
                allow_stale=True, stale_bound=self.config.stale_bound,
            )
            if cached is None:
                self.shed += 1
                self._obs_inc("serve_shed")
                return self._finish(
                    Answer(query=query, source="shed", latency=0.0, step=state.step),
                    t0,
                )
            yield self.env.timeout(self.config.cache_hit_seconds)
            self.stale_served += 1
            return self._finish(
                self._answer(query, state.step, cached, "stale"), t0
            )
        try:
            cached = self.cache.get(key, version)
            if cached is not None:
                self._obs_inc("serve_cache_hits")
                yield self.env.timeout(self.config.cache_hit_seconds)
                return self._finish(
                    self._answer(query, state.step, cached, "cache"), t0
                )
            self._obs_inc("serve_cache_misses")
            result = yield from self._execute(state, query)
            # cache only when the step did not change underneath the
            # execution: a result computed against partial data that a
            # landing or commit has since superseded must not be stored
            if state.version == version:
                self.cache.put(key, result, version)
            return self._finish(
                self._answer(query, state.step, result, "fresh"), t0
            )
        finally:
            self.bank.release((client, qid))

    # -- execution ----------------------------------------------------------
    def _resolve(self, query: Query) -> Optional[_StepState]:
        if query.step is not None:
            return self._steps.get((query.var, query.step))
        # "latest" means the newest step with data: an announced step
        # whose first chunk has not landed must not hide older steps
        for step in sorted(
            (s for v, s in self._steps if v == query.var), reverse=True
        ):
            state = self._steps[(query.var, step)]
            if state.partitions:
                return state
        return None

    def _execute(self, state: _StepState, query: Query):
        ranges = query.ranges()
        if state.committed:
            index = state.index
            owners = index.owners_for(ranges)
            yield self.env.timeout(self.config.route_seconds)  # scatter
            reports: dict[int, object] = {}
            if owners:
                procs = [
                    self.env.process(
                        self._shard_exec(shard, index.engines[shard], ranges, reports)
                    )
                    for shard in owners
                ]
                yield self.env.all_of(procs)
            yield self.env.timeout(self.config.route_seconds)  # gather
            if query.kind == "agg":
                # each shard ships only its aggregation partial; the
                # gatherer merges them without moving rows
                agg = merge_aggregates(
                    [partial_aggregate(reports[s].rows, query.agg_col) for s in owners]
                    or [partial_aggregate(self._empty_rows(state), query.agg_col)]
                )
                return _Result(
                    rows=None, aggregate=agg, partial=False, shards=len(owners)
                )
            row_blocks = [reports[s].rows for s in owners]
            rows = (
                np.concatenate(row_blocks)
                if row_blocks
                else self._empty_rows(state)
            )
            return self._package(query, rows, partial=False, shards=len(owners))
        # in-flight: no index yet — scan the landed partitions at the
        # coordinator and mark the answer partial
        yield self.env.timeout(self.config.route_seconds)
        rows, nchecked = self._scan(state.partitions, ranges, state)
        service = (
            self.config.shard_overhead_seconds
            + nchecked * self.config.row_check_seconds
            + rows.shape[0] * self.config.row_emit_seconds
        )
        yield self.env.timeout(service)
        self._obs_inc("serve_inflight_scans")
        return self._package(query, rows, partial=True, shards=0)

    def _shard_exec(self, shard: int, engine, ranges: dict, reports: dict):
        """One shard's sub-query: FIFO on the shard, then indexed work."""
        lock = self._shards[shard]
        req = lock.request()
        yield req
        try:
            report = engine.query(ranges)
            service = (
                self.config.shard_overhead_seconds
                + report.rows_checked * self.config.row_check_seconds
                + report.rows.shape[0] * self.config.row_emit_seconds
            )
            yield self.env.timeout(service)
        finally:
            lock.release()
        reports[shard] = report
        obs = self.env.obs
        if obs is not None:
            obs.metrics.observe("serve_shard_seconds", service, shard=shard)
            obs.metrics.inc("serve_shard_queries", shard=shard)

    def _scan(self, partitions, ranges: dict, state: _StepState):
        """Brute scan of landed partitions; returns (rows, rows_checked)."""
        out = []
        checked = 0
        for part in partitions:
            if not len(part):
                continue
            checked += part.shape[0]
            mask = np.ones(part.shape[0], dtype=bool)
            for col, (lo, hi) in ranges.items():
                mask &= (part[:, col] >= lo) & (part[:, col] <= hi)
            out.append(part[mask])
        rows = np.concatenate(out) if out else self._empty_rows(state)
        return rows, checked

    def _empty_rows(self, state: _StepState) -> np.ndarray:
        ref = state.partitions[0]
        return np.empty((0, ref.shape[1]), dtype=ref.dtype)

    def _package(
        self, query: Query, rows: np.ndarray, *, partial: bool, shards: int
    ) -> _Result:
        if query.kind == "agg":
            agg = merge_aggregates([partial_aggregate(rows, query.agg_col)])
            return _Result(rows=None, aggregate=agg, partial=partial, shards=shards)
        return _Result(rows=rows, aggregate=None, partial=partial, shards=shards)

    def _answer(self, query: Query, step: int, result: _Result, source: str) -> Answer:
        return Answer(
            query=query,
            source=source,
            latency=0.0,
            step=step,
            rows=result.rows,
            aggregate=result.aggregate,
            partial=result.partial,
            shards=result.shards,
        )

    def _finish(self, answer: Answer, t0: float) -> Answer:
        answer.latency = self.env.now - t0
        if answer.served:
            self.served += 1
            if answer.partial:
                self.partial_served += 1
            self.latencies.append(answer.latency)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.observe(
                "serve_latency_seconds", answer.latency, source=answer.source
            )
        return answer

    def _obs_inc(self, name: str) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc(name)

    # -- introspection ------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    def shard_queue_depths(self) -> list[int]:
        """Current request-queue depth of each index shard."""
        return [r.queued for r in self._shards]
