"""Query serving against completed and in-flight steps (§IV.D–E).

PreDatA's staging area is not only a pipeline: once chunks are
indexed, clients query the staged data *while the simulation still
runs*.  This package models that serving side under heavy client
traffic:

- :mod:`repro.serve.cache` — a versioned LRU result cache keyed by
  ``(var, step, query-shape)``, invalidated when a step commits or an
  in-flight step's chunks land;
- :mod:`repro.serve.shard` — index ownership sharded across staging
  nodes by Hilbert-SFC hashing (:mod:`repro.dataspaces.sfc`), queries
  scatter/gathered over the owners;
- :mod:`repro.serve.service` — the serve path: credit-based admission
  with a CoDel-style latency bound (reusing :mod:`repro.flow`) that
  degrades to stale-but-bounded cache reads under pressure;
- :mod:`repro.serve.workload` — a seeded open-loop client driver;
- :mod:`repro.serve.bench` — the offered-load sweep behind
  ``BENCH_query.json``.

The subsystem is strictly additive: nothing in the staging pipeline
imports it, and runs without a :class:`QueryService` are byte-identical
to pre-serve builds (the flag matrix asserts this).
"""

from repro.serve.cache import CacheStats, QueryCache
from repro.serve.config import ServeConfig
from repro.serve.service import Answer, Query, QueryService
from repro.serve.shard import (
    ShardedStepIndex,
    merge_aggregates,
    partial_aggregate,
)
from repro.serve.workload import LoadPoint, WorkloadDriver, quantile

__all__ = [
    "Answer",
    "CacheStats",
    "LoadPoint",
    "Query",
    "QueryCache",
    "QueryService",
    "ServeConfig",
    "ShardedStepIndex",
    "WorkloadDriver",
    "merge_aggregates",
    "partial_aggregate",
    "quantile",
]
