"""Hilbert-sharded index ownership across staging nodes.

The serving layer does not hold one monolithic
:class:`~repro.query.range_query.RangeQueryEngine`: index partitions
are owned by shards (staging nodes), and a query scatters to the
owning shards and gathers their partial results.  Ownership reuses the
DataSpaces hashing (:func:`repro.dataspaces.sfc.hilbert_owner`): a
partition's key interval ``[lo, hi]`` on the routing column maps to
the grid point ``(cell(lo), cell(hi))``, and the Hilbert index of that
point — cut into ``nshards`` equal curve segments — names the owner.
Nearby intervals land on nearby curve positions, so range queries
touch few shards.

All shards share the *global* bin edges (computed across every
partition), exactly as the staging pipeline's aggregation step aligns
histogram bins, so per-shard answers concatenate into the same rows a
monolithic engine would return.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dataspaces.sfc import hilbert_owner
from repro.query.range_query import RangeQueryEngine

__all__ = [
    "ShardedStepIndex",
    "merge_aggregates",
    "partial_aggregate",
]


def partial_aggregate(rows: np.ndarray, col: int) -> dict:
    """One shard's aggregation partial over its matching *rows*."""
    if rows.shape[0] == 0:
        return {"count": 0, "sum": 0.0, "min": None, "max": None}
    vals = rows[:, col]
    return {
        "count": int(rows.shape[0]),
        "sum": float(vals.sum()),
        "min": float(vals.min()),
        "max": float(vals.max()),
    }


def merge_aggregates(partials: Sequence[dict]) -> dict:
    """Gather-side merge of per-shard partials (count/sum/min/max/mean)."""
    count = sum(p["count"] for p in partials)
    total = sum(p["sum"] for p in partials)
    mins = [p["min"] for p in partials if p["min"] is not None]
    maxs = [p["max"] for p in partials if p["max"] is not None]
    return {
        "count": count,
        "sum": total,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "mean": total / count if count else None,
    }


class ShardedStepIndex:
    """Index of one committed step, partition-sharded by Hilbert hash.

    Parameters
    ----------
    partitions: the step's row blocks (one per staging rank).
    indexed_columns: columns carrying bitmap indexes; the first is the
        *routing column* whose per-partition interval drives shard
        assignment.
    nshards: owner count.
    bins: bins per bitmap index.
    order: Hilbert curve order of the ownership grid.
    """

    def __init__(
        self,
        partitions: Sequence[np.ndarray],
        indexed_columns: Sequence[int],
        *,
        nshards: int,
        bins: int = 64,
        order: int = 5,
    ):
        self.indexed_columns = tuple(indexed_columns)
        if not self.indexed_columns:
            raise ValueError("need at least one indexed column")
        self.nshards = int(nshards)
        self.order = int(order)
        parts = [np.atleast_2d(np.asarray(p)) for p in partitions if len(p)]
        if not parts:
            raise ValueError("need at least one non-empty partition")
        self.total_rows = sum(p.shape[0] for p in parts)
        # global, shard-aligned bin edges — identical to what a
        # monolithic RangeQueryEngine over the same partitions computes
        self.edges: dict[int, np.ndarray] = {}
        for col in self.indexed_columns:
            vals = np.concatenate([p[:, col] for p in parts])
            lo, hi = float(vals.min()), float(vals.max())
            if lo == hi:
                hi = lo + 1.0
            self.edges[col] = np.linspace(lo, hi, bins + 1)
        route_col = self.indexed_columns[0]
        self._route_lo = float(self.edges[route_col][0])
        self._route_hi = float(self.edges[route_col][-1])
        #: partition lists per shard
        self.assignment: list[list[np.ndarray]] = [[] for _ in range(self.nshards)]
        for p in parts:
            vals = p[:, route_col]
            owner = hilbert_owner(
                self.order,
                self._cell(float(vals.min())),
                self._cell(float(vals.max())),
                self.nshards,
            )
            self.assignment[owner].append(p)
        #: per-shard engine (None for shards owning no partitions)
        self.engines: list[Optional[RangeQueryEngine]] = [
            RangeQueryEngine(
                shard_parts, self.indexed_columns, edges=self.edges
            )
            if shard_parts
            else None
            for shard_parts in self.assignment
        ]
        #: per-shard (lo, hi) bounds of the routing column, for pruning
        self.bounds: list[Optional[tuple[float, float]]] = [
            (
                min(float(p[:, route_col].min()) for p in shard_parts),
                max(float(p[:, route_col].max()) for p in shard_parts),
            )
            if shard_parts
            else None
            for shard_parts in self.assignment
        ]

    def _cell(self, value: float) -> int:
        """Grid cell of a routing-column value on the 2^order axis."""
        n = 1 << self.order
        span = self._route_hi - self._route_lo
        if span <= 0:
            return 0
        cell = int((value - self._route_lo) / span * n)
        return min(max(cell, 0), n - 1)

    def owners_for(self, ranges: dict) -> list[int]:
        """Shards whose routing-column bounds intersect the query.

        A query without a routing-column condition scatters to every
        populated shard.
        """
        route_col = self.indexed_columns[0]
        cond = ranges.get(route_col)
        owners = []
        for shard, bound in enumerate(self.bounds):
            if bound is None:
                continue
            if cond is not None:
                lo, hi = cond
                if bound[1] < lo or bound[0] > hi:
                    continue
            owners.append(shard)
        return owners

    @property
    def populated_shards(self) -> int:
        return sum(1 for b in self.bounds if b is not None)

    @property
    def index_nbytes(self) -> int:
        return sum(e.index_nbytes for e in self.engines if e is not None)
