"""Versioned LRU result cache in front of the shard indexes.

Entries are keyed by ``(var, step, query-shape)`` and stamped with the
step's *build version* at fill time.  The version advances whenever the
step's data changes — every chunk landing on an in-flight step and the
final commit — so a fresh lookup (``allow_stale=False``) only ever hits
a result computed from the current data.  Under admission pressure the
service may instead ask for a *stale-but-bounded* read: an entry at
most ``stale_bound`` versions behind still counts, trading freshness
for latency.

A step **commit** additionally hard-invalidates every entry of that
``(var, step)``: partial in-flight answers must never survive into the
committed era, not even as degraded stale reads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

__all__ = ["CacheStats", "QueryCache"]


@dataclass
class CacheStats:
    """Always-on counters of one :class:`QueryCache`."""

    hits: int = 0
    stale_hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (fresh or stale)."""
        total = self.hits + self.stale_hits + self.misses
        return (self.hits + self.stale_hits) / total if total else 0.0


@dataclass
class _Entry:
    value: Any
    version: int = field(default=0)


class QueryCache:
    """LRU cache of query results keyed by ``(var, step, shape)``."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple[Hashable, ...], _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(var: str, step: int, shape: Hashable) -> tuple[Hashable, ...]:
        """Canonical cache key for a query *shape* against (var, step)."""
        return (var, step, shape)

    def get(
        self,
        key: tuple[Hashable, ...],
        version: int,
        *,
        allow_stale: bool = False,
        stale_bound: int = 0,
    ) -> Optional[Any]:
        """Look up *key* against the step's current build *version*.

        A fresh lookup hits only when the entry was built at exactly
        *version*.  With ``allow_stale`` the entry may lag by up to
        ``stale_bound`` versions.  Anything older is a miss (and is
        dropped, since it can never become fresh again).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        lag = version - entry.version
        if lag == 0:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value
        if allow_stale and 0 < lag <= stale_bound:
            self._entries.move_to_end(key)
            self.stats.stale_hits += 1
            return entry.value
        if lag > 0:
            # superseded for good — keep the slot for live data
            del self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key: tuple[Hashable, ...], value: Any, version: int) -> None:
        """Fill *key* with *value* computed at build *version*."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(value, version)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, var: str, step: int) -> int:
        """Hard-remove every entry of ``(var, step)``; returns the count.

        Called at step commit: results computed against partial
        in-flight data must not be served afterwards, stale-bounded or
        not.
        """
        doomed = [k for k in self._entries if k[0] == var and k[1] == step]
        for k in doomed:
            del self._entries[k]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop every cached entry (stats are kept)."""
        self._entries.clear()
