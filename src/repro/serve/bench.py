"""Offered-load sweep benchmark of the query-serving layer.

Emits the ``BENCH_query.json`` record consumed by the perf-regression
harness (:mod:`repro.perf.bench`).  Unlike the hot-path benches, every
number here is *simulated* time from a seeded workload, so the record
is bit-identical across hosts and the guard tolerance protects purely
against behavioural regressions (a scheduling change that inflates
tail latency, a cache bug that kills the hit rate), never against
machine noise.

Guards per load point (all "bigger is better" ratios in [0, 1]):

- ``served:loadN`` — completed / issued (shedding erodes it);
- ``hit_rate:loadN`` — cache hit rate of the sweep's repeated queries;
- ``slo:loadN`` — fraction of served queries inside the latency SLO.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.serve.config import ServeConfig
from repro.serve.workload import WorkloadDriver

__all__ = ["BENCH_CONFIG", "DEFAULT_LOADS", "bench_query"]

DEFAULT_LOADS = (50.0, 400.0, 3200.0)

#: latency SLO for the guard: generous against the service-time model
#: (a scatter/gather miss costs ~10 ms under the bench config), tight
#: against pathologies
SLO_SECONDS = 0.02

#: the sweep's serving configuration: a deliberately tight admission
#: budget (6 concurrent queries) and a heavier per-shard service model,
#: so the top load point actually exercises the whole pressure ladder —
#: admitted → degraded-to-stale → shed — instead of the cache absorbing
#: everything
BENCH_CONFIG = ServeConfig(
    credit_bytes=6 * 64e3,
    query_cost_bytes=64e3,
    shard_overhead_seconds=1e-3,
    row_check_seconds=2e-6,
    row_emit_seconds=5e-7,
    codel_target=0.01,
)


def bench_query(
    loads: Sequence[float] = DEFAULT_LOADS,
    duration: float = 2.0,
    seed: int = 20260808,
    config: Optional[ServeConfig] = None,
) -> dict:
    """Sweep offered load; returns the ``BENCH_query`` record."""
    driver = WorkloadDriver(seed=seed, config=config or BENCH_CONFIG)
    points = driver.sweep(loads, duration)
    guards: dict[str, float] = {}
    for p in points:
        tag = f"load{int(round(p.offered_qps))}"
        guards[f"served:{tag}"] = p.completed / p.issued if p.issued else 0.0
        guards[f"hit_rate:{tag}"] = p.hit_rate
        guards[f"slo:{tag}"] = p.slo_fraction(SLO_SECONDS)
    return {
        "bench": "query",
        "seed": seed,
        "duration": duration,
        "slo_seconds": SLO_SECONDS,
        "points": [p.to_dict() for p in points],
        "guards": guards,
    }
