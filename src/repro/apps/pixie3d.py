"""Pixie3D skeleton application (§II.B, §V.C).

Reproduced properties:

- **Output structure**: eight double-precision 3-D arrays — mass
  density, three linear-momentum components, three vector-potential
  components, temperature — each a partial chunk of a global array
  (32^3 local blocks at production settings, ~2 MB/process/dump).
- **Cadence**: the fully-implicit Newton-Krylov solve makes the inner
  loop *communication-dense*: multiple MPI_Reduce/MPI_Bcast rounds per
  iteration with only ~0.7 s of computation in between — the property
  that leaves asynchronous staging little room to hide data movement
  (§V.C: staging slows Pixie3D 0.01–0.7 %).
- **Decomposition**: the skeleton uses a 1-D slab decomposition of the
  first global dimension (the paper's 3-D decomposition reduces to the
  same chunk-count-vs-extents economics that Fig. 11 measures; see
  DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.adios.group import ChunkMeta, GroupDef, OutputStep, VarDef, VarKind
from repro.adios.io import IOMethod
from repro.core.placement import InComputeNodeRunner
from repro.core.scheduler import MovementScheduler
from repro.machine.machine import Machine
from repro.mpi.communicator import Communicator
from repro.mpi.ops import SUM
from repro.mpi.world import World

__all__ = [
    "PIXIE3D_VARS",
    "Pixie3DConfig",
    "Pixie3DMetrics",
    "Pixie3DApplication",
    "pixie3d_group",
]

#: The eight output variables (§II.B).
PIXIE3D_VARS = ("rho", "px", "py", "pz", "ax", "ay", "az", "temp")


def pixie3d_group() -> GroupDef:
    """The eight-variable Pixie3D output group (all 3-D global arrays)."""
    return GroupDef(
        "pixie3d_fields",
        tuple(
            VarDef(v, "float64", VarKind.GLOBAL_ARRAY, ndim=3)
            for v in PIXIE3D_VARS
        ),
    )


@dataclass(frozen=True)
class Pixie3DConfig:
    """Pixie3D skeleton parameters (defaults mirror §V.C)."""

    nprocs_logical: int = 64
    local_size: int = 32  # production local block edge (32^3)
    functional_size: int = 8  # materialised local block edge
    iterations_per_dump: int = 18
    ndumps: int = 2
    collective_rounds_per_iteration: int = 8
    compute_seconds_between_collectives: float = 0.7
    reduce_payload_logical_bytes: float = 6.4e4
    seed: int = 11

    def __post_init__(self) -> None:
        if self.functional_size < 2 or self.local_size < self.functional_size:
            raise ValueError("bad local/functional sizes")
        if self.ndumps < 1 or self.iterations_per_dump < 1:
            raise ValueError("need at least one dump and iteration")

    @property
    def volume_scale(self) -> float:
        return (self.local_size / self.functional_size) ** 3

    @property
    def logical_bytes_per_proc(self) -> float:
        """Eight local blocks per dump (~2 MB at 32^3)."""
        return 8 * self.local_size**3 * 8

    @property
    def io_interval_seconds(self) -> float:
        return (
            self.iterations_per_dump
            * self.collective_rounds_per_iteration
            * self.compute_seconds_between_collectives
        )


@dataclass
class Pixie3DMetrics:
    """Per-rank wall-time breakdown (Fig. 10(b)'s categories)."""

    compute: float = 0.0
    comm: float = 0.0
    io_blocking: float = 0.0
    operations: float = 0.0
    total: float = 0.0

    @property
    def main_loop(self) -> float:
        return self.compute + self.comm


def _smooth_field(rank, nprocs, n, var_index, step, seed):
    """Deterministic smooth 3-D chunk (slab of a global field)."""
    gx = nprocs * n
    lo = rank * n
    x = (np.arange(lo, lo + n) + 0.5) / gx
    y = (np.arange(n) + 0.5) / n
    z = (np.arange(n) + 0.5) / n
    xx, yy, zz = np.meshgrid(x, y, z, indexing="ij")
    phase = 0.37 * var_index + 0.11 * step + seed * 1e-3
    field = (
        np.sin(2 * np.pi * (xx + phase))
        * np.cos(2 * np.pi * yy)
        * np.cos(np.pi * zz)
        + 0.1 * var_index
    )
    if var_index == 0:
        field += 2.0  # mass density stays strictly positive
    return field


class Pixie3DApplication:
    """The Pixie3D skeleton, runnable under any ADIOS transport."""

    def __init__(
        self,
        machine: Machine,
        world: World,
        transport: IOMethod,
        config: Optional[Pixie3DConfig] = None,
        *,
        scheduler: Optional[MovementScheduler] = None,
        runner: Optional[InComputeNodeRunner] = None,
        staging_steal: float = 0.0,
    ):
        """``staging_steal`` models the PreDatA compute-node runtime
        (the DataStager server thread handling buffer management and
        RDMA servicing) stealing a fraction of each computation phase —
        the §V.C mechanism by which staging slightly slows Pixie3D,
        whose 1-process-per-core layout leaves no spare core."""
        if staging_steal < 0:
            raise ValueError("staging_steal must be non-negative")
        self.machine = machine
        self.world = world
        self.transport = transport
        self.config = config or Pixie3DConfig()
        self.scheduler = scheduler
        self.runner = runner
        self.staging_steal = staging_steal
        self.metrics: dict[int, Pixie3DMetrics] = {}
        self.group = pixie3d_group()

    # -- data ------------------------------------------------------------
    def make_step(self, rank: int, step: int) -> OutputStep:
        """Build one rank's output step (eight 3-D field chunks)."""
        cfg = self.config
        n = cfg.functional_size
        nprocs = self.world.size
        gx = nprocs * n
        lo = rank * n
        values = {}
        chunks = {}
        for vi, var in enumerate(PIXIE3D_VARS):
            values[var] = _smooth_field(rank, nprocs, n, vi, step, cfg.seed)
            chunks[var] = ChunkMeta((gx, n, n), (lo, 0, 0))
        return OutputStep(
            group=self.group,
            step=step,
            rank=rank,
            values=values,
            chunks=chunks,
            volume_scale=cfg.volume_scale,
        )

    # -- the rank program -----------------------------------------------------
    def main(self, comm: Communicator) -> Generator:
        """The per-rank Pixie3D program: reduce/bcast-dense inner loop."""
        cfg = self.config
        env = comm.env
        m = Pixie3DMetrics()
        start = env.now
        payload = np.zeros(
            max(int(cfg.reduce_payload_logical_bytes / self.world.wire_scale / 8), 1)
        )
        dump = 0
        for it in range(cfg.ndumps * cfg.iterations_per_dump):
            # Newton-Krylov inner loop: short computations laced with
            # reduce/bcast rounds — nearly always inside a comm phase.
            for _ in range(cfg.collective_rounds_per_iteration):
                t0 = env.now
                yield env.timeout(
                    cfg.compute_seconds_between_collectives
                    * (1.0 + self.staging_steal)
                )
                m.compute += env.now - t0
                t0 = env.now
                if self.scheduler is not None:
                    self.scheduler.enter_comm_phase(comm.node_id)
                try:
                    yield from comm.reduce(payload, op=SUM, root=0)
                    yield from comm.bcast(payload, root=0)
                finally:
                    if self.scheduler is not None:
                        self.scheduler.exit_comm_phase(comm.node_id)
                m.comm += env.now - t0

            if (it + 1) % cfg.iterations_per_dump == 0:
                step = self.make_step(comm.rank, dump)
                if self.runner is not None:
                    t0 = env.now
                    yield from self.runner.run_step(comm, step)
                    m.operations += env.now - t0
                t0 = env.now
                yield from self.transport.write_step(comm, step)
                m.io_blocking += env.now - t0
                dump += 1
        m.total = env.now - start
        self.metrics[comm.rank] = m
        return m

    def spawn(self):
        """Start the skeleton on every rank of its world."""
        return self.world.spawn(self.main)

    # -- aggregated views --------------------------------------------------------
    def max_metrics(self) -> Pixie3DMetrics:
        """Worst-rank wall-time view (what total-time plots report)."""
        out = Pixie3DMetrics()
        for name in ("compute", "comm", "io_blocking", "operations", "total"):
            setattr(
                out, name, max(getattr(v, name) for v in self.metrics.values())
            )
        return out

    def cpu_seconds(self) -> float:
        """Total CPU cost at logical scale (1 core/process, §V.C)."""
        return self.max_metrics().total * self.config.nprocs_logical
