"""Driver-application skeletons (§II): GTC and Pixie3D.

These are *skeleton apps*: they reproduce the two codes' output data
properties (structure, volumes, orderings) and their runtime cadence
(compute/communication phases, I/O intervals) without solving the
physics.  The skeletons drive the same ADIOS transports as the paper's
production runs, so swapping In-Compute-Node / Staging configurations
is a one-line change, exactly as §IV.A describes.

- :mod:`repro.apps.gtc` — Gyrokinetic Toroidal Code: two out-of-order
  particle arrays (8 attributes each, labels in the last two columns),
  132 MB/process per dump, ~120 s I/O interval, computation-heavy
  iterations with periodic collective bursts;
- :mod:`repro.apps.pixie3d` — Pixie3D MHD code: eight 3-D field arrays
  in 32^3 local blocks, ~2 MB/process per dump, ~100 s I/O interval,
  and a reduce/bcast-heavy inner loop with only ~0.7 s of computation
  between collective bursts (the property that makes asynchronous
  staging hard to overlap, §V.C);
- :mod:`repro.apps.diagnostics` — Pixie3D's derived quantities
  (energy, flux, divergence, maximum velocity) as plain functions and
  as a PreDatA operator;
- :mod:`repro.apps.readers` — coupled-workflow *streaming* readers
  (Catalyst-style in-transit analysis, a mid-run particle-tracking
  follower) consumed through :mod:`repro.stream`.
"""

from repro.apps.gtc import GTCApplication, GTCConfig, GTC_GROUP, gtc_particles
from repro.apps.pixie3d import (
    PIXIE3D_VARS,
    Pixie3DApplication,
    Pixie3DConfig,
    pixie3d_group,
)
from repro.apps.diagnostics import (
    DiagnosticsOperator,
    divergence,
    kinetic_energy,
    magnetic_flux,
    max_velocity,
)
from repro.apps.readers import InTransitAnalysisReader, ParticleTrackingFollower

__all__ = [
    "DiagnosticsOperator",
    "GTCApplication",
    "GTCConfig",
    "GTC_GROUP",
    "InTransitAnalysisReader",
    "PIXIE3D_VARS",
    "ParticleTrackingFollower",
    "Pixie3DApplication",
    "Pixie3DConfig",
    "divergence",
    "gtc_particles",
    "kinetic_energy",
    "magnetic_flux",
    "max_velocity",
    "pixie3d_group",
]
