"""Pixie3D diagnostic routines (Fig. 2): derived quantities.

Pixie3D's analysis pipeline computes energy, flux, divergence, and
maximum velocity from the raw field output; VisIt then reads both raw
and derived data.  Provided both as plain functions over field dicts
and as a PreDatA operator that computes the global quantities
in-transit, one chunk at a time.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator

__all__ = [
    "kinetic_energy",
    "magnetic_flux",
    "divergence",
    "max_velocity",
    "DiagnosticsOperator",
]


def kinetic_energy(rho: np.ndarray, px, py, pz) -> float:
    """Total kinetic energy: sum(|p|^2 / (2 rho)) over cells.

    Cells with vanishing density contribute nothing (vacuum regions).
    """
    rho = np.asarray(rho, dtype=float)
    p2 = np.asarray(px) ** 2 + np.asarray(py) ** 2 + np.asarray(pz) ** 2
    safe = np.abs(rho) > 1e-300
    return float((p2[safe] / (2.0 * rho[safe])).sum())


def magnetic_flux(ax, ay, az, spacing: float = 1.0) -> float:
    """Surface-integrated flux proxy: mean |A| x domain cross-section."""
    amag = np.sqrt(
        np.asarray(ax) ** 2 + np.asarray(ay) ** 2 + np.asarray(az) ** 2
    )
    return float(amag.mean() * amag.shape[1] * amag.shape[2] * spacing**2)


def divergence(fx, fy, fz, spacing: float = 1.0) -> np.ndarray:
    """Central-difference divergence of a vector field."""
    gx = np.gradient(np.asarray(fx, dtype=float), spacing, axis=0)
    gy = np.gradient(np.asarray(fy, dtype=float), spacing, axis=1)
    gz = np.gradient(np.asarray(fz, dtype=float), spacing, axis=2)
    return gx + gy + gz


def max_velocity(rho, px, py, pz) -> float:
    """Max |p| / rho over cells with non-vanishing density."""
    rho = np.asarray(rho, dtype=float)
    pmag = np.sqrt(
        np.asarray(px) ** 2 + np.asarray(py) ** 2 + np.asarray(pz) ** 2
    )
    safe = np.abs(rho) > 1e-300
    if not safe.any():
        return 0.0
    return float((pmag[safe] / np.abs(rho[safe])).max())


class DiagnosticsOperator(PreDatAOperator):
    """In-transit Pixie3D diagnostics: global energy / flux / max-v.

    Map computes per-chunk partial quantities; a single reducer
    combines them into the global derived values the visualisation
    pipeline reads.
    """

    _TAG = "diag"

    def __init__(self, name: str = "pixie3d_diag"):
        self.name = name

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        v = step.values
        partial = {
            "energy": kinetic_energy(v["rho"], v["px"], v["py"], v["pz"]),
            "flux": magnetic_flux(v["ax"], v["ay"], v["az"]),
            "max_v": max_velocity(v["rho"], v["px"], v["py"], v["pz"]),
            "div_max": float(
                np.abs(divergence(v["px"], v["py"], v["pz"])).max()
            ),
            "cells": int(np.asarray(v["rho"]).size),
        }
        return [Emit(self._TAG, partial)]

    def map_flops(self, step: OutputStep) -> float:
        return 12.0 * step.nbytes_logical / 8.0

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        return {
            "energy": sum(p["energy"] for p in values),
            "flux": sum(p["flux"] for p in values),
            "max_v": max(p["max_v"] for p in values),
            "div_max": max(p["div_max"] for p in values),
            "cells": sum(p["cells"] for p in values),
        }

    def reduce_flops(self, ctx, tag: Any, values: list[Any]) -> float:
        return float(5 * len(values))

    def finalize(self, ctx: OperatorContext, reduced: dict) -> Optional[Any]:
        return reduced.get(self._TAG)

    def logical_fraction_shuffled(self) -> float:
        return 0.0
