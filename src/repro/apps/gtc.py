"""GTC skeleton application (§II.A).

Reproduced properties:

- **Output structure**: two 2-D particle arrays (electrons, ions), one
  row per particle with 8 attributes — coordinates (3), velocities (3),
  weight, and the global *label*.  The label is assigned at start-up
  and never changes, but particles migrate between processes, so each
  dump's arrays arrive out-of-order — the reason the sorting operator
  exists.
- **Volumes**: 132 MB per process per dump at production settings
  (2x10^6 particles/process), weak-scaled; ~120 s between dumps.
- **Cadence**: long computation phases (the gyrokinetic push) broken
  by collective bursts (field solve allreduces); the skeleton brackets
  the bursts with scheduler comm-phase markers so PreDatA's scheduled
  movement can avoid them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.adios.group import GroupDef, OutputStep, VarDef, VarKind
from repro.adios.io import IOMethod
from repro.core.placement import InComputeNodeRunner
from repro.core.scheduler import MovementScheduler
from repro.machine.machine import Machine
from repro.mpi.communicator import Communicator
from repro.mpi.world import World

__all__ = ["GTC_GROUP", "GTCConfig", "GTCMetrics", "GTCApplication", "gtc_particles"]

#: Column layout of a GTC particle row.
COL_X, COL_Y, COL_Z = 0, 1, 2
COL_VX, COL_VY, COL_VZ = 3, 4, 5
COL_WEIGHT = 6
COL_LABEL = 7

GTC_GROUP = GroupDef(
    "gtc_particles",
    (
        VarDef("electrons", "float64", VarKind.LOCAL_ARRAY, ndim=2),
        VarDef("ions", "float64", VarKind.LOCAL_ARRAY, ndim=2),
    ),
)


def gtc_particles(
    rank: int, nprocs: int, rows: int, *, step: int = 0, seed: int = 42
) -> np.ndarray:
    """Synthetic out-of-order particles currently living on *rank*.

    Labels form a global permutation of ``nprocs * rows`` so that across
    all ranks every particle appears exactly once, in migrated
    (shuffled) order — statistically faithful to GTC's arrays.
    """
    rng_global = np.random.default_rng(seed + 7919 * step)
    perm = rng_global.permutation(nprocs * rows)
    labels = perm[rank * rows : (rank + 1) * rows]
    rng = np.random.default_rng(seed + 104729 * step + rank)
    data = np.empty((rows, 8))
    theta = rng.uniform(0, 2 * np.pi, rows)
    r = rng.uniform(0.1, 1.0, rows)
    data[:, COL_X] = r * np.cos(theta)
    data[:, COL_Y] = r * np.sin(theta)
    data[:, COL_Z] = rng.uniform(-1, 1, rows)
    data[:, COL_VX:COL_VZ + 1] = rng.normal(0.0, 1.0, (rows, 3))
    data[:, COL_WEIGHT] = rng.uniform(0, 1, rows)
    data[:, COL_LABEL] = labels
    return data


@dataclass(frozen=True)
class GTCConfig:
    """GTC skeleton parameters.

    ``nprocs_logical`` is the paper-scale process count the run stands
    for; ``functional_rows`` is the number of particle rows actually
    materialised per array (the rest is represented by
    ``volume_scale``).
    """

    nprocs_logical: int = 64
    threads_per_proc: int = 8
    particles_per_proc: int = 2_000_000
    functional_rows: int = 200
    iterations_per_dump: int = 10
    ndumps: int = 2
    compute_seconds_per_iteration: float = 10.8
    comm_rounds_per_iteration: int = 2
    comm_payload_logical_bytes: float = 4e6
    seed: int = 42

    def __post_init__(self) -> None:
        if self.functional_rows < 1 or self.particles_per_proc < 1:
            raise ValueError("particle counts must be positive")
        if self.ndumps < 1 or self.iterations_per_dump < 1:
            raise ValueError("need at least one dump and one iteration")

    @property
    def volume_scale(self) -> float:
        """Logical-to-functional byte ratio of the particle arrays."""
        return self.particles_per_proc / self.functional_rows

    @property
    def logical_bytes_per_proc(self) -> float:
        """Per-process dump volume across both arrays (~132 MB default)."""
        return self.particles_per_proc * 8 * 8  # n rows x 8 attrs x 8 B

    @property
    def io_interval_seconds(self) -> float:
        return self.iterations_per_dump * self.compute_seconds_per_iteration


@dataclass
class GTCMetrics:
    """Per-rank wall-time breakdown (Fig. 8(b)'s categories)."""

    compute: float = 0.0  # main-loop computation
    comm: float = 0.0  # main-loop collectives
    io_blocking: float = 0.0  # visible I/O time
    operations: float = 0.0  # in-compute-node operator time
    total: float = 0.0

    @property
    def main_loop(self) -> float:
        return self.compute + self.comm


class GTCApplication:
    """The GTC skeleton, runnable under any ADIOS transport."""

    def __init__(
        self,
        machine: Machine,
        world: World,
        transport: IOMethod,
        config: Optional[GTCConfig] = None,
        *,
        scheduler: Optional[MovementScheduler] = None,
        runner: Optional[InComputeNodeRunner] = None,
        staging_steal: float = 0.0,
    ):
        """``staging_steal``: fraction of each compute phase lost to the
        PreDatA compute-node runtime (buffer management + RDMA
        servicing); GTC's OpenMP workers absorb it more gracefully than
        Pixie3D's 1-process-per-core layout, so keep it small."""
        if staging_steal < 0:
            raise ValueError("staging_steal must be non-negative")
        self.machine = machine
        self.world = world
        self.transport = transport
        self.config = config or GTCConfig()
        self.scheduler = scheduler
        self.runner = runner
        self.staging_steal = staging_steal
        self.metrics: dict[int, GTCMetrics] = {}
        # Half the functional rows per species (two arrays per dump).
        self._rows = max(self.config.functional_rows // 2, 1)

    # -- data -----------------------------------------------------------
    def make_step(self, rank: int, step: int) -> OutputStep:
        """Build one rank's output step (fresh migrated particles)."""
        cfg = self.config
        electrons = gtc_particles(
            rank, self.world.size, self._rows, step=step, seed=cfg.seed
        )
        ions = gtc_particles(
            rank, self.world.size, self._rows, step=step, seed=cfg.seed + 1
        )
        return OutputStep(
            group=GTC_GROUP,
            step=step,
            rank=rank,
            values={"electrons": electrons, "ions": ions},
            volume_scale=cfg.volume_scale,
        )

    # -- the rank program ---------------------------------------------------
    def main(self, comm: Communicator) -> Generator:
        """The per-rank GTC program: compute, collectives, periodic dumps."""
        cfg = self.config
        env = comm.env
        m = GTCMetrics()
        start = env.now
        payload = np.zeros(
            max(int(cfg.comm_payload_logical_bytes / self.world.wire_scale / 8), 1)
        )
        dump = 0
        total_iterations = cfg.ndumps * cfg.iterations_per_dump
        for it in range(total_iterations):
            # gyrokinetic push: pure computation, overlappable with
            # asynchronous data movement.
            t0 = env.now
            yield env.timeout(
                cfg.compute_seconds_per_iteration * (1.0 + self.staging_steal)
            )
            m.compute += env.now - t0

            # field-solve collective burst: staging fetches must yield.
            t0 = env.now
            if self.scheduler is not None:
                self.scheduler.enter_comm_phase(comm.node_id)
            try:
                for _ in range(cfg.comm_rounds_per_iteration):
                    yield from comm.allreduce(payload)
            finally:
                if self.scheduler is not None:
                    self.scheduler.exit_comm_phase(comm.node_id)
            m.comm += env.now - t0

            if (it + 1) % cfg.iterations_per_dump == 0:
                step = self.make_step(comm.rank, dump)
                if self.runner is not None:
                    t0 = env.now
                    yield from self.runner.run_step(comm, step)
                    m.operations += env.now - t0
                t0 = env.now
                yield from self.transport.write_step(comm, step)
                m.io_blocking += env.now - t0
                dump += 1
        m.total = env.now - start
        self.metrics[comm.rank] = m
        return m

    def spawn(self):
        """Start the skeleton on every rank of its world."""
        return self.world.spawn(self.main)

    # -- aggregated views ----------------------------------------------------
    def max_metrics(self) -> GTCMetrics:
        """Worst-rank view (what total-execution-time plots report)."""
        out = GTCMetrics()
        for name in ("compute", "comm", "io_blocking", "operations", "total"):
            setattr(
                out, name, max(getattr(v, name) for v in self.metrics.values())
            )
        return out

    def cpu_seconds(self, cores_per_proc: Optional[int] = None) -> float:
        """Total CPU cost: wall time x logical cores (Fig. 8(a)/10(a))."""
        cores = cores_per_proc or self.config.threads_per_proc
        wall = self.max_metrics().total
        return wall * self.config.nprocs_logical * cores
