"""Coupled-workflow reader applications (streaming consumers).

Two reader apps close the loop the coupled-workflow papers describe
(Catalyst-ADIOS2 in-transit analysis; openPMD streaming pipelines):
they attach to a :class:`~repro.stream.publisher.StepStream` through a
:class:`~repro.stream.consumer.ConsumerGroup` and process steps as
they commit, never touching a file.

- :class:`InTransitAnalysisReader` — Catalyst-style analysis service:
  maintains a running histogram and a per-step WAH occupancy bitmap
  over the arriving pieces (the same hot-path kernels the staging
  operators use);
- :class:`ParticleTrackingFollower` — a follower workflow that joins
  mid-run, catches up from the latest committed step, and tracks the
  hottest cell (argmax) of its region across steps — the trajectory a
  particle-tracking coupler would hand to the next code.
"""

from __future__ import annotations

import numpy as np

from repro.perf import kernels as K

__all__ = ["InTransitAnalysisReader", "ParticleTrackingFollower"]


class InTransitAnalysisReader:
    """Running histogram + WAH occupancy bitmap over arriving steps."""

    def __init__(self, edges, threshold: float = 0.5):
        self.edges = np.asarray(edges, dtype=float)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("edges must be a 1-D array of >= 2 bounds")
        self.threshold = float(threshold)
        #: running histogram accumulated over every step seen
        self.counts = np.zeros(self.edges.size - 1, dtype=np.int64)
        #: steps processed, in arrival order
        self.steps: list[int] = []
        #: per-step count of cells above threshold (bitmap popcount)
        self.occupancy: list[int] = []

    def on_step(self, wm, pieces) -> None:
        """Fold one step's pieces into the running analysis."""
        if not pieces:
            self.steps.append(wm.step)
            self.occupancy.append(0)
            return
        vals = np.concatenate([np.ravel(data) for _, data in pieces])
        self.counts += np.asarray(
            K.histogram1d(vals, self.edges), dtype=np.int64
        )
        words = K.wah_encode(vals > self.threshold)
        self.steps.append(wm.step)
        self.occupancy.append(int(K.wah_count(words)))


class ParticleTrackingFollower:
    """Mid-run joiner tracking the argmax cell of its region."""

    def __init__(self):
        #: (step, global cell coords, value) per processed step
        self.trajectory: list[tuple[int, tuple[int, ...], float]] = []

    def on_step(self, wm, pieces) -> None:
        """Append this step's hottest cell to the trajectory."""
        best_val = None
        best_cell = None
        for region, data in pieces:
            arr = np.asarray(data)
            if arr.size == 0:
                continue
            flat = int(np.argmax(arr))
            coords = np.unravel_index(flat, arr.shape)
            val = float(arr[coords])
            # strict > keeps the first (SFC-ordered) piece on ties, so
            # the trajectory is deterministic
            if best_val is None or val > best_val:
                best_val = val
                best_cell = tuple(
                    int(c + lo) for c, lo in zip(coords, region.lb)
                )
        if best_val is not None:
            self.trajectory.append((wm.step, best_cell, best_val))
