"""Multi-tenant pipeline service: fair-share scheduling, provable isolation.

``repro.jobs`` turns the single-pipeline PreDatA reproduction into a
*service*: a :class:`JobManager` admits N independent tenant pipelines
(each a full :class:`~repro.core.middleware.PreDatA` deployment running
a seeded verification workload) concurrently onto one shared staging
fleet, and makes three guarantees checkable rather than asserted:

**Fair share.**  Every physical byte budget — buffer pool per staging
node, credit bank per staging rank — is carved among tenants by weight
(:mod:`repro.jobs.share`).  Idle carve is borrowable (work-conserving),
the physical bound is never exceeded, and a tenant's burst spills its
*own* cold chunks first — never a within-carve neighbor's.

**Governed preemption.**  Under sustained pressure an optional governor
walks a ladder over the lowest priority tier: degrade its writes to the
synchronous path, then close its admission gate, with hysteretic resume
(:class:`~repro.jobs.config.PreemptionConfig`).

**Provable isolation.**  A :class:`~repro.check.MultiTenantChecker`
keeps independent chunk/byte/credit/memory ledgers per tenant that must
each conserve on their own, and :mod:`repro.jobs.isolation` cross-checks
that every undisturbed tenant's result fingerprint under contention is
byte-identical to its solo run: contention may cost time, never bytes.

CLI: ``python -m repro jobs run|fuzz`` (see :mod:`repro.jobs.cli`).
"""

from repro.jobs.config import JobSpec, PreemptionConfig, TenancyConfig
from repro.jobs.isolation import isolation_violations, jains_index, solo_fingerprint
from repro.jobs.manager import (
    AdmissionGate,
    JobHandle,
    JobManager,
    JobResult,
    JobsReport,
)
from repro.jobs.share import (
    CreditShareGroup,
    NodeShareGroup,
    ShareGroup,
    StagingFleet,
    TenantBufferPool,
    TenantFlowControl,
)

__all__ = [
    "AdmissionGate",
    "CreditShareGroup",
    "JobHandle",
    "JobManager",
    "JobResult",
    "JobSpec",
    "JobsReport",
    "NodeShareGroup",
    "PreemptionConfig",
    "ShareGroup",
    "StagingFleet",
    "TenancyConfig",
    "TenantBufferPool",
    "TenantFlowControl",
    "isolation_violations",
    "jains_index",
    "solo_fingerprint",
]
