"""The multi-tenant job service: submit/run/cancel over a shared fleet.

A :class:`JobManager` admits N independent pipelines — each a full
:class:`~repro.core.middleware.PreDatA` deployment with its own
operators, compute processes and steps — concurrently onto one shared
staging fleet.  Sharing is governed, not accidental:

- every tenant's buffer-pool and credit budgets are weighted carves of
  the fleet's physical budgets (:mod:`repro.jobs.share`), with
  work-conserving borrow of idle carve;
- a :class:`MultiTenantChecker` keeps independent conservation ledgers
  per tenant, so isolation is verified, not assumed;
- under sustained pressure an optional governor walks the preemption
  ladder (:class:`~repro.jobs.config.PreemptionConfig`) over the lowest
  priority tier: degrade its writes to the synchronous path first, then
  close its admission gate outright, with hysteretic resume.

Workloads are the seeded generators of :mod:`repro.check.workloads`,
so a tenant's result fingerprint under contention can be compared
byte-for-byte against its solo run (:mod:`repro.jobs.isolation`).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.adios.io import SyncMPIIO
from repro.check.fingerprint import result_fingerprint
from repro.check.tenancy import MultiTenantChecker
from repro.check.workloads import (
    FIELD_GROUP,
    FIELD_KINDS,
    PARTICLE_GROUP,
    field_step,
    make_operators,
    particle_step,
)
from repro.core import PreDatA
from repro.jobs.config import JobSpec, TenancyConfig
from repro.jobs.share import StagingFleet, TenantFlowControl
from repro.machine import TESTING_TINY, Machine
from repro.mpi import World
from repro.sim import Engine

__all__ = ["AdmissionGate", "JobHandle", "JobManager", "JobResult", "JobsReport"]


class AdmissionGate:
    """A pausable barrier in front of one tenant's write path.

    While closed, every ``write_step`` of the gated transport holds
    here — the top rung of the preemption ladder.  Reopening releases
    all holders at once (deterministically, via one shared event).
    """

    def __init__(self, env: Engine):
        self.env = env
        self._open = True
        self._ev = None
        self.holds = 0
        self.closures = 0

    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        """Stop admitting writes; subsequent ``wait`` calls hold."""
        if self._open:
            self._open = False
            self.closures += 1

    def open(self) -> None:
        """Reopen the gate, releasing every held writer at once."""
        if not self._open:
            self._open = True
            ev = self._ev
            if ev is not None and not ev.triggered:
                ev.succeed()

    def wait(self, rank: int) -> Generator:
        """Process body: return immediately when open, else hold."""
        while not self._open:
            self.holds += 1
            if self._ev is None or self._ev.triggered:
                self._ev = self.env.event()
            yield self._ev


class JobHandle:
    """Live state of one submitted job."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.status = "pending"  # pending -> running -> done | cancelled
        self.predata: Optional[PreDatA] = None
        self.gate: Optional[AdmissionGate] = None
        self.cancelled = False
        #: per compute rank, application-visible write seconds
        self.visible: dict[int, float] = {}
        self.bytes_written = 0.0
        self.steps_written = 0  # rank-steps actually dumped
        self.steps_skipped = 0  # rank-steps skipped after cancel
        self.finished_at: Optional[float] = None
        self.degrade_actions = 0
        self.pause_actions = 0
        #: the governor intervened: results legally differ from solo
        self.perturbed_by_governor = False

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    def cancel(self) -> None:
        """Stop dumping further steps (already-written steps finish).

        Remaining steps turn into skip notices so every staging rank's
        step rounds stay matched and all ledgers still drain to zero.
        """
        self.cancelled = True

    def fingerprint(self) -> str:
        """This tenant's physics-level result fingerprint."""
        return result_fingerprint(self.predata)


@dataclass
class JobResult:
    """Immutable summary of one finished job."""

    spec: JobSpec
    fingerprint: str
    finished_at: float
    bytes_written: float
    steps_written: int
    steps_skipped: int
    cancelled: bool
    degraded_steps: int
    perturbed: bool
    visible: dict[int, float] = field(default_factory=dict)

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def throughput(self) -> float:
        """Logical bytes landed per simulated second of this job's run."""
        return self.bytes_written / self.finished_at if self.finished_at else 0.0


@dataclass
class JobsReport:
    """Outcome of one :meth:`JobManager.run`."""

    results: dict[str, JobResult]
    violations: list[str]
    sim_seconds: float
    checker: Optional[MultiTenantChecker] = field(default=None, repr=False)

    @property
    def conserved(self) -> bool:
        return not self.violations

    def fingerprints(self) -> dict[str, str]:
        """Tenant -> physics-level result fingerprint."""
        return {t: r.fingerprint for t, r in self.results.items()}

    def summary(self) -> str:
        """One-line outcome: jobs, rank-steps, sim time, violations."""
        done = sum(1 for r in self.results.values() if not r.cancelled)
        return (
            f"{len(self.results)} job(s), {done} completed, "
            f"{sum(r.steps_written for r in self.results.values())} rank-steps, "
            f"{self.sim_seconds:.3g} simulated s, "
            f"{len(self.violations)} ledger violation(s)"
        )


class JobManager:
    """Admit, schedule and verify N concurrent tenant pipelines."""

    def __init__(
        self,
        config: Optional[TenancyConfig] = None,
        *,
        tie_breaker=None,
        schedule_trace=None,
        obs=None,
        enable_check: bool = True,
    ):
        self.config = config or TenancyConfig()
        self.env = Engine(tie_breaker=tie_breaker)
        if schedule_trace is not None:
            self.env.schedule_trace = schedule_trace
        self.obs = obs
        if obs is not None:
            obs.bind(self.env, label="jobs")
        self.enable_check = enable_check
        self.checker: Optional[MultiTenantChecker] = None
        self.machine: Optional[Machine] = None
        self.fleet: Optional[StagingFleet] = None
        self.jobs: dict[str, JobHandle] = {}
        self._order: list[str] = []
        self._timed_cancels: list[tuple[str, float]] = []
        self._started = False
        self._active = 0

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Register one job; building happens at :meth:`start`."""
        if self._started:
            raise RuntimeError("cannot submit after start()")
        if spec.tenant in self.jobs:
            raise ValueError(f"tenant {spec.tenant!r} already submitted")
        handle = JobHandle(spec)
        self.jobs[spec.tenant] = handle
        self._order.append(spec.tenant)
        return handle

    def cancel(self, tenant: str) -> None:
        """Cancel *tenant*'s remaining steps (idempotent)."""
        self.jobs[tenant].cancel()

    def cancel_at(self, tenant: str, when: float) -> None:
        """Schedule a deterministic cancel at simulated time *when*."""
        if tenant not in self.jobs:
            raise KeyError(f"unknown tenant {tenant!r}")
        self._timed_cancels.append((tenant, float(when)))

    # -- build + launch --------------------------------------------------------
    def start(self) -> None:
        """Build the shared fleet and launch every submitted pipeline."""
        if self._started:
            raise RuntimeError("start() called twice")
        if not self._order:
            raise RuntimeError("no jobs submitted")
        self._started = True
        env = self.env
        cfg = self.config
        specs = [self.jobs[t].spec for t in self._order]
        total_procs = sum(s.nprocs for s in specs)
        self.machine = Machine(
            env, total_procs, cfg.nstaging_nodes, spec=TESTING_TINY
        )
        if self.enable_check:
            self.checker = MultiTenantChecker(self._order).bind(env)
        staging_rank_nodes = [
            node_id
            for node_id in self.machine.staging_node_ids
            for _ in range(cfg.procs_per_staging_node)
        ]
        self.fleet = StagingFleet(
            env,
            self.machine,
            cfg.flow,
            staging_rank_nodes=staging_rank_nodes,
            weights={s.tenant: s.weight for s in specs},
        )
        offset = 0
        for tenant in self._order:
            handle = self.jobs[tenant]
            self._launch(handle, offset)
            offset += handle.spec.nprocs
        if cfg.preemption is not None:
            env.process(self._governor(), name="jobs-governor")
        for tenant, when in self._timed_cancels:
            env.process(
                self._cancel_timer(tenant, when), name=f"cancel[{tenant}]"
            )

    def _launch(self, handle: JobHandle, offset: int) -> None:
        env, cfg, spec = self.env, self.config, handle.spec
        operators = make_operators(spec.kind)
        group = FIELD_GROUP if spec.kind in FIELD_KINDS else PARTICLE_GROUP
        flow = TenantFlowControl(
            env,
            self.machine,
            cfg.flow,
            staging_rank_nodes=self.fleet.staging_rank_nodes,
            tenant=spec.tenant,
            fleet=self.fleet,
        )
        # preemption needs a synchronous landing path for degraded writes
        fallback = (
            SyncMPIIO(self.machine.filesystem) if cfg.preemption is not None else None
        )
        handle.predata = PreDatA(
            env,
            self.machine,
            group,
            operators,
            ncompute_procs=spec.nprocs,
            nsteps=spec.nsteps,
            procs_per_staging_node=cfg.procs_per_staging_node,
            volume_scale=spec.scale,
            flow=flow,
            fallback_io=fallback,
            fetch_pipeline_depth=spec.fetch_pipeline_depth,
            tenant=spec.tenant,
        )
        handle.predata.scheduler.labels = {"tenant": spec.tenant}
        if cfg.preemption is not None:
            handle.gate = AdmissionGate(env)
            handle.predata.transport.admission_gate = handle.gate
        app_world = World(
            env,
            self.machine.network,
            list(range(offset, offset + spec.nprocs)),
            name=f"app:{spec.tenant}",
            node_lookup=self.machine.node,
            wire_scale=spec.scale,
        )
        handle.predata.start()
        app_world.spawn(functools.partial(self._app_main, handle))
        env.process(self._watch(handle), name=f"watch[{spec.tenant}]")
        handle.status = "running"
        self._active += 1

    # -- per-job processes -----------------------------------------------------
    @staticmethod
    def _make_step(spec: JobSpec, rank: int, s: int):
        if spec.kind in FIELD_KINDS:
            return field_step(
                rank, spec.nprocs, spec.local_n, step=s,
                scale=spec.scale, seed=spec.seed,
            )
        return particle_step(
            rank, spec.nprocs, spec.rows, step=s,
            scale=spec.scale, seed=spec.seed,
        )

    def _app_main(self, handle: JobHandle, comm) -> Generator:
        """One compute rank of one tenant's application."""
        spec = handle.spec
        total = 0.0
        for s in range(spec.nsteps):
            if handle.cancelled:
                # keep every staging rank's step rounds matched
                yield from handle.predata.client.skip_step(comm, s)
                handle.steps_skipped += 1
                continue
            step = self._make_step(spec, comm.rank, s)
            nbytes = step.nbytes_logical
            t = yield from handle.predata.transport.write_step(comm, step)
            total += t
            handle.bytes_written += nbytes
            handle.steps_written += 1
            yield from comm.sleep(spec.io_interval)
        handle.visible[comm.rank] = total

    def _watch(self, handle: JobHandle) -> Generator:
        """Stamp completion when the job's staging world drains."""
        yield from handle.predata.service.drain()
        handle.finished_at = self.env.now
        handle.status = "cancelled" if handle.cancelled else "done"
        self._active -= 1

    def _cancel_timer(self, tenant: str, when: float) -> Generator:
        yield self.env.timeout(when)
        self.cancel(tenant)

    # -- preemption governor -----------------------------------------------------
    def _victims(self, exclude) -> list[JobHandle]:
        """Live jobs, lowest priority tier first (ties by tenant)."""
        live = [
            h
            for h in self.jobs.values()
            if h.status == "running" and h.finished_at is None and h not in exclude
        ]
        live.sort(key=lambda h: (h.spec.priority, h.tenant))
        return live

    def _degrade(self, handle: JobHandle, degraded: list) -> None:
        handle.predata.client.enter_degraded_mode()
        degraded.append(handle)
        handle.degrade_actions += 1
        handle.perturbed_by_governor = True
        if self.checker is not None:
            # a governed degrade legally changes this tenant's results
            self.checker.checker(handle.tenant).external_perturbation = True
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("jobs_degrades", tenant=handle.tenant)

    def _governor(self) -> Generator:
        """Poll fleet pressure; walk the ladder over the lowest tier."""
        cfg = self.config.preemption
        degraded: list[JobHandle] = []
        paused: list[JobHandle] = []
        while self._active > 0:
            severity = self.fleet.severity()
            if severity >= cfg.pause_severity:
                victims = self._victims(exclude=set(paused))
                if victims:
                    victim = victims[0]
                    if victim not in degraded:
                        self._degrade(victim, degraded)
                    victim.gate.close()
                    paused.append(victim)
                    victim.pause_actions += 1
                    if self.env.obs is not None:
                        self.env.obs.metrics.inc("jobs_pauses", tenant=victim.tenant)
            elif severity >= cfg.degrade_severity:
                victims = self._victims(exclude=set(degraded))
                if victims:
                    self._degrade(victims[0], degraded)
            elif severity <= cfg.resume_severity:
                # hysteretic recovery, most recent victim first
                while paused:
                    paused.pop().gate.open()
                while degraded:
                    degraded.pop().predata.client.exit_degraded_mode()
            yield self.env.timeout(cfg.poll_interval)
        # drain cleanly: never leave a tenant wedged behind a closed gate
        while paused:
            paused.pop().gate.open()

    # -- run to completion -------------------------------------------------------
    def run(self) -> JobsReport:
        """Start (if needed), run the engine dry, and report."""
        if not self._started:
            self.start()
        self.env.run()
        results: dict[str, JobResult] = {}
        for tenant in self._order:
            h = self.jobs[tenant]
            results[tenant] = JobResult(
                spec=h.spec,
                fingerprint=h.fingerprint(),
                finished_at=(
                    h.finished_at if h.finished_at is not None else self.env.now
                ),
                bytes_written=h.bytes_written,
                steps_written=h.steps_written,
                steps_skipped=h.steps_skipped,
                cancelled=h.cancelled,
                degraded_steps=h.predata.transport.degraded_steps,
                perturbed=h.perturbed_by_governor,
                visible=dict(h.visible),
            )
        violations: list[str] = []
        if self.checker is not None:
            violations = self.checker.violations(
                {t: self.jobs[t].predata for t in self._order}
            )
        return JobsReport(
            results=results,
            violations=violations,
            sim_seconds=self.env.now,
            checker=self.checker,
        )
