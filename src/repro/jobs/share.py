"""Weighted fair-share carving of the staging fleet's byte budgets.

Each physical budget — one :class:`~repro.flow.pool.BufferPool` worth
of staging-node memory, one :class:`~repro.flow.credits.CreditBank`
worth of per-rank admission credits — becomes a *share group* split
among tenants by weight:

- every tenant gets a private pool/bank whose ``capacity`` is its
  weighted carve, so all watermark/spill/CoDel logic operates relative
  to the tenant's own allotment;
- the group enforces the *physical* bound: a tenant past its carve may
  still be granted bytes as long as the group total fits
  (work-conserving redistribution of idle carve, via the
  ``group.can_borrow`` hook in ``BufferPool._fits`` /
  ``CreditBank._fits``);
- a release anywhere pumps every sibling in deterministic tenant
  order, so freed budget is immediately work-conserving;
- the global spill policy: a tenant over its own high watermark spills
  its *own* cold chunks (the private watermarks see to that), and a
  tenant holding *borrowed* bytes starts shedding them the moment any
  sibling queues — one tenant's burst never evicts a neighbor that is
  within its carve.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.flow import FlowConfig, FlowControl
from repro.flow.credits import CreditBank
from repro.flow.pool import BufferPool
from repro.flow.pressure import PressureController
from repro.machine.machine import Machine
from repro.sim.engine import Engine

__all__ = [
    "ShareGroup",
    "NodeShareGroup",
    "CreditShareGroup",
    "TenantBufferPool",
    "StagingFleet",
    "TenantFlowControl",
]


class ShareGroup:
    """One physical byte budget split among registered tenant members."""

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ValueError("share-group capacity must be positive")
        self.capacity = float(capacity)
        #: (tenant, member) sorted by tenant for deterministic pumping
        self._members: list = []

    def register(self, tenant: str, member) -> None:
        """Adopt *member* as *tenant*'s carve of this budget."""
        self._members.append((tenant, member))
        self._members.sort(key=lambda tm: str(tm[0]))
        member.group = self

    def members(self) -> list:
        """Registered members, in deterministic tenant order."""
        return [m for _t, m in self._members]

    def _usage(self, member) -> float:
        raise NotImplementedError

    @property
    def used(self) -> float:
        """Bytes held across every member (the physical occupancy)."""
        return sum(self._usage(m) for m in self.members())

    def can_borrow(self, member, nbytes: float) -> bool:
        """May *member* take *nbytes* beyond its carve right now?

        Work conservation: idle carve belongs to whoever needs it, but
        the group total never exceeds the physical budget.
        """
        return self.used + nbytes <= self.capacity

    def pump(self, exclude=None) -> None:
        """Re-run every member's grant loop (deterministic tenant order).

        Called by a member after it released bytes: the freed budget
        may unblock a *sibling's* waiters, not just its own.
        """
        for member in self.members():
            if member is not exclude:
                member._pump()


class NodeShareGroup(ShareGroup):
    """One staging node's buffer-pool budget, shared across tenants.

    Exposes ``used``/``low``/``high``/``capacity`` with
    :class:`~repro.flow.pool.BufferPool` semantics so a
    :class:`~repro.flow.pressure.PressureController` can compute
    fleet-level severity directly from groups.
    """

    def __init__(self, node_id: int, capacity: float, config: FlowConfig):
        super().__init__(capacity)
        self.node_id = node_id
        self.high = config.high_watermark * self.capacity
        self.low = config.low_watermark * self.capacity

    def _usage(self, member) -> float:
        return member.used

    def has_queued(self, exclude=None) -> bool:
        """Is any (other) tenant currently waiting for pool bytes?"""
        return any(
            m.queued > 0 for m in self.members() if m is not exclude
        )

    def shed(self, requester) -> None:
        """A member is blocked: ask over-carve siblings to spill.

        Only tenants holding *borrowed* bytes (used beyond their own
        carve) are nudged — a neighbor within its carve is never made
        to spill for someone else's burst.
        """
        for member in self.members():
            if member is not requester and member.used > member.capacity:
                member._maybe_spill()


class CreditShareGroup(ShareGroup):
    """One staging rank's credit budget, shared across tenants."""

    def __init__(self, rank: int, capacity: float):
        super().__init__(capacity)
        self.rank = rank

    def _usage(self, member) -> float:
        return member.outstanding


class TenantBufferPool(BufferPool):
    """A tenant's carve of one staging node's buffer pool.

    Behaves exactly like a private :class:`BufferPool` of ``capacity``
    = the carve (watermarks and spill relative to the carve), plus the
    group-aware spill rule: bytes borrowed beyond the carve are shed as
    soon as any sibling tenant queues for the same physical budget.
    """

    def _should_spill(self) -> bool:
        if super()._should_spill():
            return True
        return (
            self.group is not None
            and self._used > self.capacity
            and self.group.has_queued(exclude=self)
        )


class StagingFleet:
    """The shared staging substrate N tenant pipelines land on.

    Owns one :class:`NodeShareGroup` per staging node and one
    :class:`CreditShareGroup` per staging rank, sized exactly as the
    single-tenant :class:`~repro.flow.FlowControl` would size its pools
    and banks; tenant flow objects register their carves here.  Also
    carries a :class:`~repro.flow.pressure.PressureController` over the
    node groups — the fleet-level severity signal the preemption
    governor polls.
    """

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        config: FlowConfig,
        *,
        staging_rank_nodes: list[int],
        weights: dict[str, float],
    ):
        if not weights:
            raise ValueError("need at least one tenant weight")
        bad = sorted(t for t, w in weights.items() if w <= 0)
        if bad:
            raise ValueError(f"non-positive fair-share weight(s) for {bad}")
        self.env = env
        self.machine = machine
        self.config = config
        self.staging_rank_nodes = list(staging_rank_nodes)
        self.weights = dict(weights)
        self.total_weight = sum(self.weights.values())
        #: node id -> NodeShareGroup
        self.node_groups: dict[int, NodeShareGroup] = {}
        for node_id in dict.fromkeys(self.staging_rank_nodes):
            node = machine.node(node_id)
            capacity = min(
                config.pool_bytes
                if config.pool_bytes is not None
                else node.config.memory_bytes,
                node.config.memory_bytes,
            )
            self.node_groups[node_id] = NodeShareGroup(node_id, capacity, config)
        ranks_per_node = Counter(self.staging_rank_nodes)
        #: staging rank -> CreditShareGroup
        self.credit_groups: dict[int, CreditShareGroup] = {}
        for rank, node_id in enumerate(self.staging_rank_nodes):
            capacity = (
                config.credit_bytes
                if config.credit_bytes is not None
                else self.node_groups[node_id].capacity / ranks_per_node[node_id]
            )
            self.credit_groups[rank] = CreditShareGroup(rank, capacity)
        # Fleet-level severity: the node groups quack like pools
        # (used/low/high/capacity), so the standard controller reads
        # physical occupancy across all tenants at once.
        self.pressure = PressureController(
            env, self.node_groups, config, machine.spec.node.memory_bandwidth
        )

    def share(self, tenant: str) -> float:
        """*tenant*'s fair-share fraction of every fleet budget."""
        return self.weights[tenant] / self.total_weight

    def severity(self) -> float:
        """Worst pool pressure across the fleet, in [0, 1]."""
        return max(
            (self.pressure.severity(nid) for nid in self.node_groups), default=0.0
        )


class TenantFlowControl(FlowControl):
    """One tenant's flow-control facade over the shared fleet.

    Identical wiring to :class:`~repro.flow.FlowControl` except that
    the pools and banks it builds are the tenant's weighted carves,
    registered with the fleet's share groups for work-conserving
    borrow and the global spill policy.
    """

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        config: FlowConfig,
        *,
        staging_rank_nodes: list[int],
        fetch_rate_cap: Optional[float] = None,
        tenant: str,
        fleet: StagingFleet,
    ):
        # set before super().__init__: the base constructor calls the
        # _make_pool/_make_bank hooks below
        self.tenant = tenant
        self.fleet = fleet
        super().__init__(
            env,
            machine,
            config,
            staging_rank_nodes=staging_rank_nodes,
            fetch_rate_cap=fetch_rate_cap,
        )

    def _make_pool(self, node_id: int) -> BufferPool:
        group = self.fleet.node_groups[node_id]
        pool = TenantBufferPool(
            self.env,
            self.machine.node(node_id),
            self.machine.filesystem,
            self.config,
            capacity=group.capacity * self.fleet.share(self.tenant),
        )
        pool.labels = {"tenant": self.tenant}
        group.register(self.tenant, pool)
        return pool

    def _make_bank(self, rank: int, capacity: float) -> CreditBank:
        group = self.fleet.credit_groups[rank]
        bank = CreditBank(
            self.env,
            rank,
            group.capacity * self.fleet.share(self.tenant),
            self.config,
        )
        bank.labels = {"tenant": self.tenant}
        group.register(self.tenant, bank)
        return bank
