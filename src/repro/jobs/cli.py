"""``python -m repro jobs`` — the multi-tenant service CLI.

Two subcommands:

- ``run`` — admit N tenants concurrently onto one shared staging
  fleet, print a per-tenant table (steps, bytes, throughput, result
  fingerprint), Jain's fairness index over throughputs, and every
  per-tenant ledger violation.  ``--verify-isolation`` additionally
  re-runs each tenant solo and cross-checks fingerprints
  byte-for-byte.
- ``fuzz`` — schedule-perturbation fuzzing of the *whole multi-tenant
  run*: N seeded randomized tie-breaking replays must all produce the
  identical combined per-tenant fingerprint.

Exit status 0 when everything holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import time

from repro.check import OPERATOR_KINDS, digest_value, fuzz_schedule
from repro.jobs.config import JobSpec, PreemptionConfig, TenancyConfig
from repro.jobs.isolation import isolation_violations, jains_index
from repro.jobs.manager import JobManager

__all__ = ["main"]

_DEFAULT_KINDS = "sort,histogram"


def _build_specs(args) -> list[JobSpec]:
    kinds = [k for k in args.kinds.split(",") if k]
    unknown = sorted(set(kinds) - set(OPERATOR_KINDS))
    if unknown:
        raise SystemExit(f"unknown workload kind(s): {', '.join(unknown)}")
    return [
        JobSpec(
            tenant=f"t{i}",
            kind=kinds[i % len(kinds)],
            nprocs=args.procs,
            nsteps=args.steps,
            seed=args.seed + i,
            scale=args.scale,
            io_interval=args.io_interval,
            priority=(0 if i < args.low_priority else 1),
        )
        for i in range(args.tenants)
    ]


def _make_config(args) -> TenancyConfig:
    flow_kw = {}
    if args.pool_bytes is not None:
        flow_kw["pool_bytes"] = args.pool_bytes
    preemption = PreemptionConfig() if args.preemption else None
    from repro.flow import FlowConfig

    return TenancyConfig(flow=FlowConfig(**flow_kw), preemption=preemption)


def _run(args) -> int:
    specs = _build_specs(args)
    config = _make_config(args)
    manager = JobManager(config)
    for spec in specs:
        manager.submit(spec)
    t0 = time.time()
    report = manager.run()
    dt = time.time() - t0
    print(f"== {len(specs)} concurrent tenant(s) on a shared staging fleet ==")
    print(f"   {report.summary()}  [{dt:.1f}s wall]")
    header = (
        f"   {'tenant':<8} {'kind':<12} {'prio':>4} {'steps':>5} "
        f"{'MB':>8} {'MB/s':>8}  fingerprint"
    )
    print(header)
    for tenant, res in report.results.items():
        state = " (cancelled)" if res.cancelled else (
            " (degraded)" if res.degraded_steps else "")
        print(
            f"   {tenant:<8} {res.spec.kind:<12} {res.spec.priority:>4} "
            f"{res.steps_written:>5} {res.bytes_written / 1e6:>8.2f} "
            f"{res.throughput / 1e6:>8.3f}  {res.fingerprint[:16]}…{state}"
        )
    throughputs = [
        r.throughput for r in report.results.values() if not r.cancelled
    ]
    print(f"   Jain's fairness index: {jains_index(throughputs):.4f}")
    ok = True
    for line in report.violations:
        print(f"   LEDGER VIOLATION: {line}")
        ok = False
    if not report.violations:
        print("   all per-tenant ledgers conserve independently")
    if args.verify_isolation:
        print("== solo-vs-contended fingerprint cross-check ==")
        broken = isolation_violations(report, config)
        for line in broken:
            print(f"   ISOLATION VIOLATION: {line}")
            ok = False
        if not broken:
            print("   every tenant's result is byte-identical to its solo run")
    print()
    print("jobs run PASSED" if ok else "jobs run FAILED")
    return 0 if ok else 1


def _fuzz(args) -> int:
    specs = _build_specs(args)
    config = _make_config(args)

    def runner(tie_breaker, schedule_trace) -> str:
        manager = JobManager(
            config, tie_breaker=tie_breaker, schedule_trace=schedule_trace
        )
        for spec in specs:
            manager.submit(spec)
        report = manager.run()
        if report.violations:
            raise AssertionError(
                "ledger violation(s) under perturbed schedule:\n  "
                + "\n  ".join(report.violations)
            )
        return digest_value(report.fingerprints())

    print(
        f"== multi-tenant schedule fuzz: {args.runs} seeded run(s), "
        f"{args.tenants} tenant(s) =="
    )
    t0 = time.time()
    report = fuzz_schedule(runner, args.runs, base_seed=args.seed)
    dt = time.time() - t0
    print(f"   {report.summary()}  [{dt:.1f}s wall]")
    if not report.result_invariant:
        for div in report.divergences:
            print("   DIVERGENCE:")
            for line in div.splitlines():
                print(f"     {line}")
    print()
    print("jobs fuzz PASSED" if report.result_invariant else "jobs fuzz FAILED")
    return 0 if report.result_invariant else 1


def _add_workload_args(sub) -> None:
    sub.add_argument("--tenants", type=int, default=4,
                     help="number of concurrent tenants (default 4)")
    sub.add_argument("--kinds", default=_DEFAULT_KINDS,
                     help=f"comma-separated workload kinds cycled over "
                          f"tenants (default {_DEFAULT_KINDS})")
    sub.add_argument("--procs", type=int, default=4,
                     help="compute processes per tenant (default 4)")
    sub.add_argument("--steps", type=int, default=2,
                     help="output steps per tenant (default 2)")
    sub.add_argument("--seed", type=int, default=0,
                     help="base workload/tie-breaker seed (default 0)")
    sub.add_argument("--scale", type=float, default=10.0,
                     help="logical volume scale (default 10)")
    sub.add_argument("--io-interval", type=float, default=2.0,
                     help="simulated seconds between dumps (default 2)")
    sub.add_argument("--pool-bytes", type=float, default=None,
                     help="shared per-node buffer-pool budget the tenant "
                          "carves split (default: full node memory)")
    sub.add_argument("--preemption", action="store_true",
                     help="enable the pressure-driven preemption ladder")
    sub.add_argument("--low-priority", type=int, default=0, metavar="K",
                     help="make the first K tenants priority tier 0 "
                          "(preempted first; default 0)")


def main(argv=None) -> int:
    """Entry point for ``python -m repro jobs``; returns exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro jobs",
        description="PreDatA multi-tenant pipeline service "
                    "(fair-share scheduling, provable isolation)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run N tenants concurrently")
    _add_workload_args(run_p)
    run_p.add_argument(
        "--verify-isolation", action="store_true",
        help="re-run each tenant solo and cross-check fingerprints",
    )

    fuzz_p = sub.add_parser("fuzz", help="schedule-fuzz a multi-tenant run")
    _add_workload_args(fuzz_p)
    fuzz_p.add_argument("--runs", type=int, default=5,
                        help="number of seeded perturbations (default 5)")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _run(args)
    return _fuzz(args)


if __name__ == "__main__":
    import sys

    sys.exit(main())
