"""Provable isolation: solo-vs-contended fingerprint cross-checks.

The isolation claim of :mod:`repro.jobs` is stronger than "ledgers
conserve per tenant": a tenant sharing a saturated fleet with seven
neighbors must compute the *byte-identical result* it would compute
alone on an empty fleet.  Contention is allowed to cost a tenant time,
never bytes.

That only holds when nothing legally time-dependent is enabled —
leave ``codel_target`` unset and expect governor-degraded, cancelled
or faulted tenants to be skipped (their results differ by design, and
each carries a flag saying so).

Also home to :func:`jains_index`, the fairness figure of merit reported
by ``benchmarks/test_tenancy_fairness.py`` and the jobs CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.jobs.config import JobSpec, TenancyConfig

__all__ = ["jains_index", "solo_fingerprint", "isolation_violations"]


def jains_index(values) -> float:
    """Jain's fairness index ``(Σv)² / (n · Σv²)`` over *values*.

    1.0 means perfectly equal shares; ``1/n`` means one party got
    everything.  Empty or all-zero inputs count as perfectly fair.
    """
    vals = [float(v) for v in values]
    square_sum = sum(v * v for v in vals)
    if not vals or square_sum == 0.0:
        return 1.0
    total = sum(vals)
    return (total * total) / (len(vals) * square_sum)


def solo_fingerprint(
    spec: JobSpec,
    config: Optional[TenancyConfig] = None,
    *,
    tie_breaker=None,
) -> str:
    """*spec*'s result fingerprint on an otherwise-empty fleet.

    Runs the job alone through a fresh :class:`~repro.jobs.JobManager`
    on the same :class:`TenancyConfig` (preemption stripped — a solo
    run is the un-governed reference), and returns its physics-level
    fingerprint: the ground truth the contended run is compared to.
    """
    from repro.jobs.manager import JobManager

    config = dataclasses.replace(config or TenancyConfig(), preemption=None)
    manager = JobManager(config, tie_breaker=tie_breaker)
    manager.submit(spec)
    report = manager.run()
    report_result = report.results[spec.tenant]
    return report_result.fingerprint


def isolation_violations(
    report,
    config: Optional[TenancyConfig] = None,
    *,
    tie_breaker=None,
) -> list[str]:
    """Cross-check every tenant of a contended run against its solo run.

    For each tenant in *report* (a :class:`~repro.jobs.JobsReport`)
    whose results are still required to be contention-independent —
    i.e. not cancelled, not degraded, not flagged as perturbed by the
    governor or by faults — re-run its spec solo and compare
    fingerprints byte-for-byte.  Returns one line per violation.
    """
    out: list[str] = []
    for tenant, result in report.results.items():
        if result.cancelled:
            continue
        if result.perturbed or result.degraded_steps > 0:
            continue
        if report.checker is not None and report.checker.checker(tenant).perturbed:
            continue
        solo = solo_fingerprint(result.spec, config, tie_breaker=tie_breaker)
        if solo != result.fingerprint:
            out.append(
                f"tenant {tenant}: contended fingerprint "
                f"{result.fingerprint[:16]}… != solo {solo[:16]}… — "
                "contention changed this tenant's results"
            )
    return out
