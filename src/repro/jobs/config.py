"""Job and tenancy configuration for the multi-tenant service layer.

A :class:`JobSpec` describes one tenant's pipeline — which verification
workload it runs (the seeded generators of :mod:`repro.check.workloads`),
how many compute processes and steps, and its *priority tier* and
*fair-share weight*.  A :class:`TenancyConfig` describes the shared
staging fleet every job lands on: the flow-control knobs the per-tenant
carves derive from, and the optional :class:`PreemptionConfig` ladder
the pressure governor walks when the fleet saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.flow import FlowConfig

__all__ = ["JobSpec", "PreemptionConfig", "TenancyConfig"]


@dataclass(frozen=True)
class JobSpec:
    """One tenant's pipeline submission.

    Attributes
    ----------
    tenant:
        Unique job name; qualifies chunk keys, ledgers, metrics and
        trace tracks everywhere downstream.
    kind:
        Operator workload (any of ``repro.check.OPERATOR_KINDS``).
    nprocs / nsteps / rows / local_n / seed / scale / io_interval:
        The seeded-workload shape, exactly as in
        :func:`repro.check.workloads.run_workload` — identical values
        produce byte-identical inputs, which is what makes the
        solo-vs-contended fingerprint cross-check meaningful.
    priority:
        Preemption tier; **lower** tiers are degraded/paused first when
        the fleet saturates.  Ties break by tenant name.
    weight:
        Fair-share weight.  A tenant's buffer-pool and credit carves
        are ``weight / sum(weights)`` of each shared budget; idle
        carve is borrowable by the others (work-conserving).
    """

    tenant: str
    kind: str = "sort"
    nprocs: int = 4
    nsteps: int = 2
    rows: int = 24
    local_n: int = 4
    seed: int = 0
    scale: float = 10.0
    io_interval: float = 2.0
    priority: int = 1
    weight: float = 1.0
    fetch_pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant name must be non-empty")
        if self.nprocs < 1:
            raise ValueError("need at least one compute process")
        if self.nsteps < 1:
            raise ValueError("need at least one step")
        if self.weight <= 0:
            raise ValueError("fair-share weight must be positive")


@dataclass(frozen=True)
class PreemptionConfig:
    """The pressure-driven preemption ladder.

    The governor polls the fleet's node share groups every
    ``poll_interval`` simulated seconds and compares the worst group
    severity (pool occupancy mapped to [0, 1] between the low and high
    watermarks) against two thresholds, always picking victims from the
    lowest priority tier up:

    1. ``severity >= degrade_severity`` — the victim's writes *degrade*
       to the synchronous fallback path (its data still lands, but via
       the file system instead of the staging pipeline);
    2. ``severity >= pause_severity`` — the victim's admission gate
       closes entirely: its writes hold at the transport until pressure
       recedes.

    Recovery is hysteretic: both actions are undone only once severity
    falls back to ``resume_severity``.
    """

    degrade_severity: float = 0.85
    pause_severity: float = 0.97
    resume_severity: float = 0.40
    poll_interval: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.resume_severity < self.degrade_severity:
            raise ValueError("need 0 < resume_severity < degrade_severity")
        if not self.degrade_severity <= self.pause_severity <= 1.0:
            raise ValueError("need degrade_severity <= pause_severity <= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


@dataclass(frozen=True)
class TenancyConfig:
    """Shared-fleet configuration for a :class:`~repro.jobs.JobManager`.

    ``flow`` parameterises the *physical* budgets the per-tenant carves
    split (pool size per staging node, watermarks, spill).  Leave
    ``codel_target`` unset for provable isolation: CoDel degradation
    under contention legally changes a tenant's results versus its solo
    run, which the fingerprint cross-check would then (correctly) flag.
    """

    flow: FlowConfig = field(default_factory=FlowConfig)
    preemption: Optional[PreemptionConfig] = None
    nstaging_nodes: int = 1
    procs_per_staging_node: int = 2

    def __post_init__(self) -> None:
        if self.nstaging_nodes < 1:
            raise ValueError("need at least one staging node")
        if self.procs_per_staging_node < 1:
            raise ValueError("need at least one staging process per node")
