"""Bitmap indexing for range queries over particle attributes (§II.A).

GTC's second analysis task is a range query — find particles whose
coordinates fall in given ranges — accelerated with the bitmap-indexing
technique of Sinha & Winslett [42] so queries avoid scanning the whole
particle array.

:class:`BitmapIndex` is the standalone index structure: values are
binned; each bin gets one bitmap; bitmaps are compressed with
word-aligned-hybrid (WAH)-style run-length encoding.  Range queries OR
the bitmaps of fully-covered bins and re-check only the two edge bins
("candidate check"), touching a small fraction of the raw data.

:class:`BitmapIndexOperator` builds one index per staging rank over the
rows that rank receives, as part of the streaming pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator
from repro.perf import kernels

__all__ = ["WAHBitmap", "BitmapIndex", "BitmapIndexOperator"]

_WORD = kernels.WAH_WORD_BITS  # payload bits per WAH word


class WAHBitmap:
    """Word-aligned-hybrid compressed bitmap.

    Stored as a list of words: literal words carry 31 raw bits; fill
    words carry a run of identical 31-bit groups.  This mirrors the
    structure (not the exact bit layout) of WAH compression.
    """

    def __init__(self, words: list[tuple[str, int, int]], nbits: int):
        # words: ("lit", payload, 1) or ("fill", bitvalue, ngroups)
        self._words = words
        self.nbits = nbits

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "WAHBitmap":
        mask = np.asarray(mask, dtype=bool)
        return cls(kernels.wah_encode(mask), mask.size)

    def to_mask(self) -> np.ndarray:
        """Decode back to a boolean mask of length ``nbits``."""
        return kernels.wah_decode(self._words, self.nbits)

    def __or__(self, other: "WAHBitmap") -> "WAHBitmap":
        if self.nbits != other.nbits:
            raise ValueError("bitmap length mismatch")
        # Simple decode-or-encode; the compressed representation is the
        # storage format, not the hot loop, in this reproduction.
        return WAHBitmap.from_mask(self.to_mask() | other.to_mask())

    def count(self) -> int:
        # Padding bits are always zero (from_mask pads with zeros), so a
        # straight popcount over the words is exact.
        """Number of set bits (popcount over the compressed words)."""
        return kernels.wah_count(self._words)

    @property
    def nwords(self) -> int:
        return len(self._words)

    @property
    def nbytes(self) -> int:
        return 4 * self.nwords


@dataclass
class RangeQueryResult:
    """Result of a :meth:`BitmapIndex.query`."""

    mask: np.ndarray  # boolean row mask
    bins_scanned: int  # candidate-check bins touched
    rows_checked: int  # raw rows re-examined

    @property
    def nrows(self) -> int:
        return int(self.mask.sum())


class BitmapIndex:
    """Binned bitmap index over one value column."""

    def __init__(self, values: np.ndarray, bins: int = 64, edges=None):
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("index expects a 1-D value array")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.values = values
        if edges is None:
            lo = values.min() if values.size else 0.0
            hi = values.max() if values.size else 1.0
            if lo == hi:
                hi = lo + 1.0
            edges = np.linspace(lo, hi, bins + 1)
        self.edges = np.asarray(edges, dtype=float)
        self.bins = len(self.edges) - 1
        codes = np.clip(
            np.searchsorted(self.edges, values, side="right") - 1,
            0,
            self.bins - 1,
        )
        self.bitmaps = [
            WAHBitmap.from_mask(codes == b) for b in range(self.bins)
        ]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.bitmaps)

    def query(self, lo: float, hi: float) -> RangeQueryResult:
        """Rows with ``lo <= value <= hi``."""
        if hi < lo:
            raise ValueError("query range inverted")
        n = self.values.size
        if n == 0:
            return RangeQueryResult(np.zeros(0, dtype=bool), 0, 0)
        first = int(
            np.clip(np.searchsorted(self.edges, lo, side="right") - 1, 0, self.bins - 1)
        )
        last = int(
            np.clip(np.searchsorted(self.edges, hi, side="right") - 1, 0, self.bins - 1)
        )
        mask = np.zeros(n, dtype=bool)
        # fully-covered interior bins: bitmap OR only
        for b in range(first + 1, last):
            mask |= self.bitmaps[b].to_mask()
        # edge bins: candidate check against raw values
        rows_checked = 0
        for b in {first, last}:
            cand = self.bitmaps[b].to_mask()
            rows_checked += int(cand.sum())
            vals = self.values
            mask |= cand & (vals >= lo) & (vals <= hi)
        bins_scanned = 2 if first != last else 1
        return RangeQueryResult(mask, bins_scanned, rows_checked)


class BitmapIndexOperator(PreDatAOperator):
    """Builds a per-staging-rank bitmap index over one attribute.

    Rows stay where Map put them (tagged by producing rank so no data
    actually crosses the shuffle); each reducer indexes its share.
    Finalize returns the :class:`BitmapIndex`, ready to serve queries.
    """

    def __init__(
        self,
        var: str,
        column: int,
        bins: int = 64,
        *,
        name: Optional[str] = None,
    ):
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.var = var
        self.column = column
        self.bins = bins
        self.name = name or f"bitmap:{var}[{column}]"

    # global edges via pass 1, so every rank's index is aligned
    def partial_calculate(self, step: OutputStep) -> Any:
        col = np.atleast_2d(step.values[self.var])[:, self.column]
        if col.size == 0:
            return None
        return (float(col.min()), float(col.max()))

    def partial_flops(self, step: OutputStep) -> float:
        return 2.0 * self._n_logical(step)

    def aggregate(self, partials: list[Any]) -> Any:
        partials = [p for p in partials if p is not None]
        if not partials:
            return None
        lo = min(p[0] for p in partials)
        hi = max(p[1] for p in partials)
        if lo == hi:
            hi = lo + 1.0
        return np.linspace(lo, hi, self.bins + 1)

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        col = np.atleast_2d(step.values[self.var])[:, self.column]
        return [Emit(ctx.rank, np.asarray(col, dtype=float))]

    def map_flops(self, step: OutputStep) -> float:
        return 6.0 * self._n_logical(step)

    def partition(self, ctx: OperatorContext, tag: Any) -> int:
        return int(tag)  # stay local

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        return np.concatenate(values) if values else np.empty(0)

    def finalize(self, ctx: OperatorContext, reduced: dict):
        """Build this rank's index (empty-but-valid on an all-empty step,
        where no global edges were aggregated and ``self.bins`` applies)."""
        values = reduced.get(ctx.rank)
        if values is None:
            values = np.empty(0)
        edges = ctx.aggregated
        return BitmapIndex(values, bins=self.bins, edges=edges)

    def logical_fraction_shuffled(self) -> float:
        return 0.0

    def _n_logical(self, step: OutputStep) -> float:
        return np.atleast_2d(step.values[self.var]).shape[0] * step.volume_scale
