"""3-D array layout reorganisation for Pixie3D (§II.B, §V.C, Fig. 11).

Pixie3D's output is eight 3-D global arrays decomposed into small
(32^3) per-process chunks.  Written directly, each BP file scatters a
global array across thousands of chunks, so a reader pays one seek per
chunk — the 'unmerged' line of Fig. 11.  This operator merges partial
chunks into one large contiguous slab per staging rank before writing,
collapsing extents by the compute:staging ratio (128:1 in the paper)
and yielding the ~10x read improvement.

Merging happens along the slowest-varying (first) global dimension:
staging rank *i* owns slab ``[slab_starts[i] : slab_starts[i+1])``.
Map tags each chunk with its owning slab(s); Reduce pastes chunks into
the slab array; Finalize appends the merged slab to the output BP
writer and charges the (logical-volume) file-system write.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.bp import BPWriter
from repro.adios.group import ChunkMeta, GroupDef, OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator
from repro.machine.filesystem import ParallelFileSystem
from repro.perf import kernels

__all__ = ["ArrayMergeOperator"]


class ArrayMergeOperator(PreDatAOperator):
    """Merges partial chunks of global arrays into contiguous slabs.

    Parameters
    ----------
    variables: names of the global-array vars to reorganise (Pixie3D:
        all eight).
    out_group: group definition for the merged output file.
    filesystem: when given, Finalize writes merged slabs through it.
    writer: optional shared :class:`BPWriter` collecting the merged
        file (one per I/O step set); when omitted, merged slabs are
        only returned.
    """

    def __init__(
        self,
        variables: list[str],
        *,
        out_group: Optional[GroupDef] = None,
        filesystem: Optional[ParallelFileSystem] = None,
        writer: Optional[BPWriter] = None,
        name: str = "array_merge",
    ):
        if not variables:
            raise ValueError("need at least one variable to merge")
        self.variables = list(variables)
        self.out_group = out_group
        self.filesystem = filesystem
        self.writer = writer
        self.name = name

    # -- pass 1: publish chunk geometry so slabs can be planned ----------
    def partial_calculate(self, step: OutputStep) -> Any:
        return {
            var: {
                "global_dims": list(step.chunks[var].global_dims),
                "offsets": list(step.chunks[var].offsets),
                "local_dims": list(np.asarray(step.values[var]).shape),
            }
            for var in self.variables
        }

    def aggregate(self, partials: list[Any]) -> Any:
        # global dims are identical across processes; keep one copy.
        dims = {}
        for p in partials:
            for var, meta in p.items():
                dims.setdefault(var, tuple(meta["global_dims"]))
        return dims

    # -- stage 4 ------------------------------------------------------------
    def initialize(self, ctx: OperatorContext) -> None:
        dims = ctx.aggregated
        if dims is None:
            raise RuntimeError(f"{self.name}: no geometry aggregated")
        ctx.storage["global_dims"] = dims
        # Slab ownership: split dim 0 evenly across staging workers.
        starts = {}
        for var, gd in dims.items():
            starts[var] = np.linspace(0, gd[0], ctx.nworkers + 1).astype(int)
        ctx.storage["slab_starts"] = starts

    def _owners(self, starts: np.ndarray, lo: int, hi: int) -> Iterable[int]:
        """Slab indices overlapping global rows [lo, hi)."""
        first = int(np.searchsorted(starts, lo, side="right") - 1)
        last = int(np.searchsorted(starts, hi - 1, side="right") - 1)
        return range(max(first, 0), min(last, len(starts) - 2) + 1)

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        out = []
        starts_by_var = ctx.storage["slab_starts"]
        for var in self.variables:
            data = np.asarray(step.values[var])
            chunk = step.chunks[var]
            starts = starts_by_var[var]
            lo = chunk.offsets[0]
            hi = lo + data.shape[0]
            for owner in self._owners(starts, lo, hi):
                s_lo, s_hi = int(starts[owner]), int(starts[owner + 1])
                cut_lo = max(lo, s_lo)
                cut_hi = min(hi, s_hi)
                piece = data[cut_lo - lo : cut_hi - lo]
                out.append(
                    Emit(
                        (var, owner),
                        (
                            (cut_lo, *chunk.offsets[1:]),
                            piece,
                        ),
                    )
                )
        return out

    def map_flops(self, step: OutputStep) -> float:
        return 1.0 * step.nbytes_logical  # one pass to slice/copy

    def partition(self, ctx: OperatorContext, tag: Any) -> int:
        return int(tag[1])

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        """Paste pieces into this owner's slab, checking full coverage.

        A zero-height slab (more workers than rows along dim 0) is
        legal: no pieces arrive and the coverage check passes vacuously
        on the empty slab.
        """
        var, owner = tag
        dims = ctx.storage["global_dims"][var]
        starts = ctx.storage["slab_starts"][var]
        s_lo, s_hi = int(starts[owner]), int(starts[owner + 1])
        slab_shape = (s_hi - s_lo, *dims[1:])
        dtype = values[0][1].dtype if values else np.float64
        slab, n_uncovered = kernels.paste_pieces(slab_shape, dtype, values, s_lo)
        if n_uncovered:
            raise RuntimeError(
                f"{self.name}: slab {tag} has {n_uncovered} uncovered cells"
            )
        return (s_lo, slab)

    def reduce_flops(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> float:
        real = sum(np.asarray(p).nbytes for _, p in values)
        return real * ctx.volume_scale / 4.0

    def finalize(self, ctx: OperatorContext, reduced: dict):
        merged = {}
        total_real = 0.0
        dims = ctx.storage["global_dims"]
        for (var, _owner), (s_lo, slab) in sorted(
            reduced.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            merged[var] = (s_lo, slab)
            total_real += slab.nbytes
        # One PG record per staging rank holding all vars' merged slabs
        # — this is what collapses the reader's extent count (Fig. 11).
        if self.writer is not None and set(merged) == set(self.variables):
            gstep = OutputStep(
                group=self.out_group,
                step=ctx.step,
                rank=ctx.rank,
                values={var: slab for var, (_lo, slab) in merged.items()},
                chunks={
                    var: ChunkMeta(
                        dims[var], (lo, *([0] * (len(dims[var]) - 1)))
                    )
                    for var, (lo, _slab) in merged.items()
                },
                volume_scale=ctx.volume_scale,
            )
            self.writer.append_step(gstep)
        if self.filesystem is not None and total_real > 0:
            nbytes = total_real * ctx.volume_scale

            def body():
                yield from self.filesystem.write(nbytes, nclients=1)
                return merged

            return body()
        return merged

    def logical_fraction_shuffled(self) -> float:
        return 1.0
