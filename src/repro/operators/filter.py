"""Compute-node-side filtering (a Stage-1a data-reduction example).

§IV.B lists "filtering out undesired regions" as a canonical
``Partial_calculate`` use: the first pass prunes rows locally (a
deterministic, communication-free operation), shrinking the data that
crosses the network.  This operator filters rows of a 2-D variable by
a column-range predicate; the surviving rows simply flow through
Map/Reduce untouched, tagged by producing rank.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator

__all__ = ["FilterOperator"]


class FilterOperator(PreDatAOperator):
    """Keeps rows whose *column* value lies in ``[lo, hi]``.

    The filter itself runs in :meth:`partial_calculate` conceptually —
    on the compute node, before packing — but since the packed chunk
    must carry the filtered data, the pruning is applied in-place on
    the step's values there (this mutates the OutputStep, matching the
    ADIOS hook semantics where stage 1a runs before stage 1b packing).
    """

    def __init__(
        self,
        var: str,
        column: int,
        lo: float,
        hi: float,
        *,
        name: Optional[str] = None,
    ):
        if hi < lo:
            raise ValueError("filter range inverted")
        self.var = var
        self.column = column
        self.lo = lo
        self.hi = hi
        self.name = name or f"filter:{var}[{column}]"
        self.rows_in = 0
        self.rows_out = 0

    def partial_calculate(self, step: OutputStep) -> Any:
        data = np.atleast_2d(step.values[self.var])
        col = data[:, self.column]
        keep = (col >= self.lo) & (col <= self.hi)
        self.rows_in += int(data.shape[0])
        self.rows_out += int(keep.sum())
        step.values[self.var] = data[keep]
        return int(keep.sum())

    def partial_flops(self, step: OutputStep) -> float:
        return 2.0 * self._n_logical(step)

    def aggregate(self, partials: list[Any]) -> Any:
        return int(sum(p for p in partials if p is not None))

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        return [Emit(ctx.rank, np.atleast_2d(step.values[self.var]))]

    def map_flops(self, step: OutputStep) -> float:
        return 0.0  # filtering already charged in pass 1

    def partition(self, ctx: OperatorContext, tag: Any) -> int:
        return int(tag)

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        return np.concatenate(values, axis=0) if values else np.empty((0,))

    def finalize(self, ctx: OperatorContext, reduced: dict):
        return {
            "rows": reduced.get(ctx.rank, np.empty((0,))),
            "global_kept": ctx.aggregated,
        }

    @property
    def selectivity(self) -> float:
        """Fraction of rows kept so far (1.0 before any data seen)."""
        return self.rows_out / self.rows_in if self.rows_in else 1.0

    def _n_logical(self, step: OutputStep) -> float:
        return np.atleast_2d(step.values[self.var]).shape[0] * step.volume_scale
