"""Parallel sample sort of particles by global label (Fig. 7(a)(d)).

GTC's particle arrays leave each process out-of-order (particles
migrate between processes as the simulation evolves, §II.A); particle
tracking needs them sorted by the ``(rank, local id)`` label.  Sample
sort in the PreDatA phases:

- ``Partial_calculate`` draws a sample of local keys;
- ``aggregate`` picks ``nworkers - 1`` splitters from the pooled
  samples (quantiles), defining one key range per reducer;
- ``Map`` partitions each chunk's rows into splitter buckets;
- the Shuffle is the all-to-all exchange that makes this operation
  communication-dominant (§V.B.1: sorting in compute nodes scales
  badly because the data shuffle time among compute nodes grows with
  scale and is visible to the simulation);
- ``Reduce`` merges and locally sorts each bucket;
- ``Finalize`` optionally writes sorted output to storage from the
  staging area.

The sorted result is globally ordered: every key on reducer *i* is <=
every key on reducer *i+1*, and each reducer's rows are sorted.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator
from repro.machine.filesystem import ParallelFileSystem
from repro.perf import kernels

__all__ = ["SampleSortOperator"]


class SampleSortOperator(PreDatAOperator):
    """Sample sort of a 2-D variable's rows by one key column.

    Parameters
    ----------
    var: group variable holding ``(n, k)`` arrays per process.
    key_column: column to sort by (GTC: the particle label).
    samples_per_rank: local sample size for splitter selection.
    filesystem: when given, Finalize writes each reducer's sorted
        bucket (at logical volume) to storage.
    """

    def __init__(
        self,
        var: str,
        key_column: int,
        *,
        samples_per_rank: int = 64,
        name: Optional[str] = None,
        filesystem: Optional[ParallelFileSystem] = None,
        seed: int = 7,
    ):
        if samples_per_rank < 1:
            raise ValueError("samples_per_rank must be >= 1")
        self.var = var
        self.key_column = key_column
        self.samples_per_rank = samples_per_rank
        self.name = name or f"sort:{var}[{key_column}]"
        self.filesystem = filesystem
        self.seed = seed

    # -- pass 1: sampling ---------------------------------------------------
    def partial_calculate(self, step: OutputStep) -> Any:
        """Sample local keys; returns ``(sorted_samples, row_width)``.

        The row width rides along so that every staging rank can build
        well-formed empty ``(0, k)`` buckets even when no row ever
        reaches it (or when this process holds zero rows this step —
        then samples is None but the width still propagates).
        """
        data = np.atleast_2d(step.values[self.var])
        width = int(data.shape[1])
        keys = data[:, self.key_column] if width else np.empty(0)
        if keys.size == 0:
            return (None, width)
        rng = np.random.default_rng(self.seed + step.rank)
        k = min(self.samples_per_rank, keys.size)
        idx = rng.choice(keys.size, size=k, replace=False)
        return (np.sort(keys[idx]), width)

    def partial_flops(self, step: OutputStep) -> float:
        k = self.samples_per_rank
        return 10.0 * k * max(np.log2(max(k, 2)), 1.0)

    def aggregate(self, partials: list[Any]) -> Any:
        """Pool all samples; returns ``(sorted_pool, row_width)``.

        Splitters are cut per-worker in :meth:`initialize`.  Returns
        None when no process sampled anything (all-empty step).
        """
        partials = [p for p in partials if p is not None]
        samples = [s for s, _w in partials if s is not None]
        if not samples:
            return None
        width = max(w for _s, w in partials)
        pool = np.sort(np.concatenate(samples))
        return (pool, width)

    # -- stage 4 ----------------------------------------------------------------
    def initialize(self, ctx: OperatorContext) -> None:
        """Cut strictly increasing splitters from the sample pool.

        Under heavy key skew the raw quantiles repeat (e.g. a pool that
        is 99 % one value), which would make several bucket ranges
        empty *by construction* while ``searchsorted`` still routed all
        ties to the first of the duplicate buckets.  Deduplicating
        keeps the splitter sequence strictly increasing; some reducers
        then legitimately receive no bucket at all — empty reducers are
        legal and produce well-formed ``(0, k)`` results downstream.
        """
        if ctx.aggregated is None:
            raise RuntimeError(f"{self.name}: no samples aggregated")
        pool, width = ctx.aggregated
        ctx.storage["splitters"] = kernels.select_splitters(pool, ctx.nworkers)
        ctx.storage["width"] = int(width)

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        splitters = ctx.storage["splitters"]
        data = np.atleast_2d(step.values[self.var])
        keys = data[:, self.key_column]
        buckets = kernels.partition_rows(keys, splitters)
        return [Emit(b, rows) for b, rows in kernels.group_rows(data, buckets)]

    def map_flops(self, step: OutputStep) -> float:
        # binary search per row over the splitters + a partition pass;
        # splitter count is O(nworkers) so the search is ~10 ops/row.
        return 10.0 * self._rows_logical(step)

    def partition(self, ctx: OperatorContext, tag: Any) -> int:
        return int(tag)  # bucket b sorts on reducer b

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        """Merge + stable-sort one bucket; empty buckets yield (0, k)."""
        if not values:
            width = ctx.storage.get("width", 0)
            return np.empty((0, width))
        merged = np.concatenate([np.atleast_2d(v) for v in values], axis=0)
        order = np.argsort(merged[:, self.key_column], kind="stable")
        return merged[order]

    def reduce_flops(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> float:
        n = sum(np.atleast_2d(v).shape[0] for v in values) * ctx.volume_scale
        return 12.0 * n * max(np.log2(max(n, 2)), 1.0)

    def reduce_membytes(
        self, ctx: OperatorContext, tag: Any, values: list[Any]
    ) -> float:
        # Sorting tens of millions of 64-byte rows is memory-bound:
        # ~log2(n) key-compare passes plus the final random-gather of
        # whole rows, at poor cache locality (a few % of streaming
        # bandwidth per access).  ~100 effective sequential-bandwidth
        # traversals of the bucket reproduces measured qsort costs on
        # Opteron-class nodes (~1 s per 2M 64-byte rows).
        real = sum(np.atleast_2d(v).nbytes for v in values)
        return 100.0 * real * ctx.volume_scale

    def finalize(self, ctx: OperatorContext, reduced: dict):
        """Persist this reducer's bucket (a well-formed ``(0, k)`` array
        when no row was routed here — legal under deduped splitters)."""
        bucket = reduced.get(ctx.rank)
        if bucket is None:
            bucket = np.empty((0, ctx.storage.get("width", 0)))
        if self.filesystem is not None:
            nbytes = float(np.asarray(bucket).nbytes) * ctx.volume_scale

            def body():
                yield from self.filesystem.write(nbytes, nclients=1)
                return bucket

            return body()
        return bucket

    def logical_fraction_shuffled(self) -> float:
        return 1.0  # the whole dataset crosses the shuffle

    # -- helpers ---------------------------------------------------------------
    def _rows_logical(self, step: OutputStep) -> float:
        return np.atleast_2d(step.values[self.var]).shape[0] * step.volume_scale
