"""Built-in PreDatA operators (§V: the evaluated operations).

- :mod:`repro.operators.minmax` — local/global min-max characterisation
  (the canonical ``Partial_calculate`` example of §IV.B);
- :mod:`repro.operators.histogram` — 1D histograms on particle
  attributes for online monitoring (Fig. 7(b)(e));
- :mod:`repro.operators.histogram2d` — 2D histograms for parallel-
  coordinate visualisation (Fig. 7(c)(f));
- :mod:`repro.operators.sort` — parallel sample sort of particles by
  their global label (Fig. 7(a)(d));
- :mod:`repro.operators.bitmap` — WAH-compressed bitmap index for
  range queries over particle coordinates (§II.A task 2);
- :mod:`repro.operators.array_merge` — 3-D array layout reorganisation
  merging partial chunks into large contiguous regions (Pixie3D,
  Fig. 11);
- :mod:`repro.operators.filter` — compute-node-side region filtering
  (a Stage-1a data-reduction example).
"""

from repro.operators.minmax import MinMaxOperator
from repro.operators.histogram import HistogramOperator
from repro.operators.histogram2d import Histogram2DOperator
from repro.operators.sort import SampleSortOperator
from repro.operators.bitmap import BitmapIndex, BitmapIndexOperator
from repro.operators.array_merge import ArrayMergeOperator
from repro.operators.filter import FilterOperator
from repro.operators.reduction import PrecisionReduceOperator, SubsampleOperator

__all__ = [
    "ArrayMergeOperator",
    "BitmapIndex",
    "BitmapIndexOperator",
    "FilterOperator",
    "Histogram2DOperator",
    "HistogramOperator",
    "MinMaxOperator",
    "PrecisionReduceOperator",
    "SampleSortOperator",
    "SubsampleOperator",
]
