"""Data-reduction operators (§III: "filtering and reduction").

Two Stage-1a reducers that shrink output *before* it leaves the
compute node — the placement where reduction pays twice (less data to
move, less to store; §II.C: "Performance advantages result if
In-Compute-Node actions reduce output volumes"):

- :class:`SubsampleOperator` — keep every k-th row (or a seeded random
  fraction) of a 2-D variable; the related-work sampling service [47]
  as a PreDatA first-pass operation;
- :class:`PrecisionReduceOperator` — demote float64 arrays to float32
  for variables whose analysis tolerates it, halving their volume.

Both mutate the step in ``partial_calculate`` (before Stage-1b
packing, like :class:`~repro.operators.filter.FilterOperator`) and
report achieved reduction ratios.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator

__all__ = ["SubsampleOperator", "PrecisionReduceOperator"]


class SubsampleOperator(PreDatAOperator):
    """Keeps a fraction of a 2-D variable's rows.

    Parameters
    ----------
    var: group variable holding ``(n, k)`` arrays.
    fraction: target fraction of rows to keep, in (0, 1].
    mode: ``"stride"`` keeps every ``round(1/fraction)``-th row
        (deterministic, preserves temporal ordering); ``"random"``
        draws a seeded Bernoulli sample (statistically unbiased).
    """

    def __init__(
        self,
        var: str,
        fraction: float,
        *,
        mode: str = "stride",
        seed: int = 13,
        name: Optional[str] = None,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if mode not in ("stride", "random"):
            raise ValueError(f"unknown mode {mode!r}")
        self.var = var
        self.fraction = fraction
        self.mode = mode
        self.seed = seed
        self.name = name or f"subsample:{var}"
        self.rows_in = 0
        self.rows_out = 0

    def partial_calculate(self, step: OutputStep) -> Any:
        data = np.atleast_2d(step.values[self.var])
        n = data.shape[0]
        if self.mode == "stride":
            stride = max(round(1.0 / self.fraction), 1)
            kept = data[::stride]
        else:
            rng = np.random.default_rng(self.seed + step.rank)
            kept = data[rng.random(n) < self.fraction]
        self.rows_in += n
        self.rows_out += kept.shape[0]
        step.values[self.var] = kept
        return int(kept.shape[0])

    def partial_flops(self, step: OutputStep) -> float:
        return np.atleast_2d(step.values[self.var]).shape[0] * (
            step.volume_scale
        )

    def aggregate(self, partials: list[Any]) -> Any:
        return int(sum(p for p in partials if p is not None))

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        return [Emit(ctx.rank, np.atleast_2d(step.values[self.var]))]

    def map_flops(self, step: OutputStep) -> float:
        return 0.0

    def partition(self, ctx: OperatorContext, tag: Any) -> int:
        return int(tag)

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        return np.concatenate(values, axis=0) if values else np.empty((0,))

    def finalize(self, ctx: OperatorContext, reduced: dict):
        return {
            "rows": reduced.get(ctx.rank, np.empty((0,))),
            "global_rows": ctx.aggregated,
        }

    @property
    def achieved_fraction(self) -> float:
        return self.rows_out / self.rows_in if self.rows_in else 1.0

    def logical_fraction_shuffled(self) -> float:
        return self.fraction


class PrecisionReduceOperator(PreDatAOperator):
    """Demotes float64 variables to float32 before packing.

    Halves the wire and storage volume of each listed variable; the
    achieved error is bounded by float32's ~7 significant digits,
    acceptable for visualisation-bound fields.
    """

    def __init__(
        self,
        variables: list[str],
        *,
        name: str = "precision_reduce",
    ):
        if not variables:
            raise ValueError("need at least one variable")
        self.variables = list(variables)
        self.name = name
        self.bytes_in = 0
        self.bytes_out = 0

    def partial_calculate(self, step: OutputStep) -> Any:
        saved = 0
        for var in self.variables:
            data = np.asarray(step.values[var])
            if data.dtype == np.float64:
                self.bytes_in += data.nbytes
                demoted = data.astype(np.float32)
                self.bytes_out += demoted.nbytes
                saved += data.nbytes - demoted.nbytes
                step.values[var] = demoted
        return saved

    def partial_flops(self, step: OutputStep) -> float:
        return sum(
            np.asarray(step.values[v]).size for v in self.variables
        ) * step.volume_scale

    def aggregate(self, partials: list[Any]) -> Any:
        return int(sum(p for p in partials if p is not None))

    def map_flops(self, step: OutputStep) -> float:
        return 0.0

    def finalize(self, ctx: OperatorContext, reduced: dict):
        return {"global_bytes_saved": ctx.aggregated}

    @property
    def compression_ratio(self) -> float:
        return self.bytes_in / self.bytes_out if self.bytes_out else 1.0

    def logical_fraction_shuffled(self) -> float:
        return 0.0
