"""2-D histogram operator (Fig. 7(c)(f)).

Like the 1-D histogram but over an attribute pair, with quadratically
more bins — the paper notes the computation and communication
requirements are higher but the placement conclusions identical.
Used downstream for parallel-coordinates visualisation [21].
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator
from repro.machine.filesystem import ParallelFileSystem
from repro.perf import kernels

__all__ = ["Histogram2DOperator"]


class Histogram2DOperator(PreDatAOperator):
    """Joint histogram of two columns of a 2-D array variable."""

    _TAG = "hist2d"

    def __init__(
        self,
        var: str,
        columns: tuple[int, int],
        bins: tuple[int, int] = (256, 256),
        *,
        name: Optional[str] = None,
        filesystem: Optional[ParallelFileSystem] = None,
        output_bytes: float = 8e6,
    ):
        if len(columns) != 2:
            raise ValueError("columns must be a pair")
        if min(bins) < 1:
            raise ValueError("bins must be >= 1")
        self.var = var
        self.columns = tuple(columns)
        self.bins = tuple(bins)
        self.name = name or f"hist2d:{var}[{columns[0]},{columns[1]}]"
        self.filesystem = filesystem
        self.output_bytes = output_bytes

    # -- pass 1 ------------------------------------------------------------
    def partial_calculate(self, step: OutputStep) -> Any:
        data = np.atleast_2d(step.values[self.var])
        if data.shape[0] == 0:
            return None
        cx, cy = self.columns
        return (
            float(data[:, cx].min()),
            float(data[:, cx].max()),
            float(data[:, cy].min()),
            float(data[:, cy].max()),
        )

    def partial_flops(self, step: OutputStep) -> float:
        return 4.0 * self._n_logical(step)

    def aggregate(self, partials: list[Any]) -> Any:
        partials = [p for p in partials if p is not None]
        if not partials:
            return None
        xlo = min(p[0] for p in partials)
        xhi = max(p[1] for p in partials)
        ylo = min(p[2] for p in partials)
        yhi = max(p[3] for p in partials)
        if xlo == xhi:
            xhi = xlo + 1.0
        if ylo == yhi:
            yhi = ylo + 1.0
        return (
            np.linspace(xlo, xhi, self.bins[0] + 1),
            np.linspace(ylo, yhi, self.bins[1] + 1),
        )

    # -- stage 4 --------------------------------------------------------------
    def initialize(self, ctx: OperatorContext) -> None:
        if ctx.aggregated is None:
            raise RuntimeError(f"{self.name}: no bin edges aggregated")
        ctx.storage["edges"] = ctx.aggregated

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        ex, ey = ctx.storage["edges"]
        data = np.atleast_2d(step.values[self.var])
        cx, cy = self.columns
        return [Emit(self._TAG, kernels.histogram2d(data[:, cx], data[:, cy], ex, ey))]

    def map_flops(self, step: OutputStep) -> float:
        # two binnings plus a joint index per element
        return 8.0 * self._n_logical(step)

    def combine(self, ctx: OperatorContext, items: list[Emit]) -> list[Emit]:
        if not items:
            return items
        total = items[0].value.copy()
        for e in items[1:]:
            total += e.value
        return [Emit(self._TAG, total)]

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        """Sum count matrices (an empty bucket sums to all-zero counts)."""
        if not values:
            return np.zeros(self.bins, dtype=np.int64)
        total = values[0].copy()
        for v in values[1:]:
            total += v
        return total

    def reduce_flops(self, ctx, tag: Any, values: list[Any]) -> float:
        # count-matrix sums: true cost, independent of data volume
        return float(len(values) * self.bins[0] * self.bins[1])

    def finalize(self, ctx: OperatorContext, reduced: dict):
        counts = reduced.get(self._TAG)
        if counts is None:
            return None
        edges = ctx.storage["edges"]
        if self.filesystem is not None:

            def body():
                yield from self.filesystem.write(self.output_bytes, nclients=1)
                return {"counts": counts, "edges": edges}

            return body()
        return {"counts": counts, "edges": edges}

    def logical_fraction_shuffled(self) -> float:
        return 0.0

    def _n_logical(self, step: OutputStep) -> float:
        data = np.atleast_2d(step.values[self.var])
        return data.shape[0] * step.volume_scale
