"""1-D histogram operator (GTC online monitoring, Fig. 7(b)(e)).

Computation-dominant (§V.B.1): each chunk is scanned once to bin one
particle attribute; the shuffle moves only per-bin count vectors
(kilobytes), and a single reducer rank owns the global histogram, which
Finalize writes as the ~8 MB histogram file whose synchronous write
variability (0.25 s–7 s) motivates the Staging placement.

Bin edges come from the aggregation stage: ``Partial_calculate``
supplies local min/max so edges are global before streaming starts.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import Emit, OperatorContext, PreDatAOperator
from repro.machine.filesystem import ParallelFileSystem
from repro.perf import kernels

__all__ = ["HistogramOperator"]


class HistogramOperator(PreDatAOperator):
    """Histogram of one column of a 2-D array variable.

    Parameters
    ----------
    var: group variable holding ``(n, k)`` arrays.
    column: attribute index to histogram.
    bins: number of bins.
    filesystem: when given, Finalize writes the histogram file
        (``output_bytes``) through it — the visible-I/O effect the
        paper measures in the In-Compute-Node configuration.
    output_bytes: size of the result file (paper: 8 MB).
    """

    _TAG = "hist"

    def __init__(
        self,
        var: str,
        column: int,
        bins: int = 1000,
        *,
        name: Optional[str] = None,
        filesystem: Optional[ParallelFileSystem] = None,
        output_bytes: float = 8e6,
    ):
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.var = var
        self.column = column
        self.bins = bins
        self.name = name or f"hist:{var}[{column}]"
        self.filesystem = filesystem
        self.output_bytes = output_bytes

    # -- pass 1: local min/max for global edges -------------------------
    def partial_calculate(self, step: OutputStep) -> Any:
        col = np.atleast_2d(step.values[self.var])[:, self.column]
        if col.size == 0:
            return None
        return (float(col.min()), float(col.max()))

    def partial_flops(self, step: OutputStep) -> float:
        return 2.0 * self._n_logical(step)

    def aggregate(self, partials: list[Any]) -> Any:
        partials = [p for p in partials if p is not None]
        if not partials:
            return None
        lo = min(p[0] for p in partials)
        hi = max(p[1] for p in partials)
        if lo == hi:
            hi = lo + 1.0
        return np.linspace(lo, hi, self.bins + 1)

    # -- stage 4 -----------------------------------------------------------
    def initialize(self, ctx: OperatorContext) -> None:
        if ctx.aggregated is None:
            raise RuntimeError(f"{self.name}: no bin edges aggregated")
        ctx.storage["edges"] = ctx.aggregated

    def map(self, ctx: OperatorContext, step: OutputStep) -> Iterable[Emit]:
        edges = ctx.storage["edges"]
        col = np.atleast_2d(step.values[self.var])[:, self.column]
        return [Emit(self._TAG, kernels.histogram1d(col, edges))]

    def map_flops(self, step: OutputStep) -> float:
        # binning: ~4 flops per element (subtract, scale, floor, add)
        return 4.0 * self._n_logical(step)

    def combine(self, ctx: OperatorContext, items: list[Emit]) -> list[Emit]:
        if not items:
            return items
        total = items[0].value.copy()
        for e in items[1:]:
            total += e.value
        return [Emit(self._TAG, total)]

    def reduce(self, ctx: OperatorContext, tag: Any, values: list[Any]) -> Any:
        """Sum count vectors (an empty bucket sums to all-zero counts)."""
        if not values:
            return np.zeros(self.bins, dtype=np.int64)
        total = values[0].copy()
        for v in values[1:]:
            total += v
        return total

    def reduce_flops(self, ctx, tag: Any, values: list[Any]) -> float:
        # summing count vectors is cheap and does NOT scale with the
        # data volume, so the true (unscaled) cost is returned.
        return float(len(values) * self.bins)

    def finalize(self, ctx: OperatorContext, reduced: dict):
        counts = reduced.get(self._TAG)
        if counts is None:
            return None  # this rank does not own the histogram tag
        edges = ctx.storage["edges"]
        if self.filesystem is not None:
            # generator finalize: visible simulated I/O
            def body():
                yield from self.filesystem.write(self.output_bytes, nclients=1)
                return {"counts": counts, "edges": edges}

            return body()
        return {"counts": counts, "edges": edges}

    def logical_fraction_shuffled(self) -> float:
        return 0.0  # only count vectors move

    # -- helpers ------------------------------------------------------------
    def _n_logical(self, step: OutputStep) -> float:
        data = np.atleast_2d(step.values[self.var])
        return data.shape[0] * step.volume_scale
