"""Global min/max characterisation operator.

The canonical example of PreDatA's compute-node first pass (§IV.B):
``Partial_calculate`` reduces each process's chunk to a tiny
``(min, max, count)`` triple; the aggregation stage combines the
triples into global statistics *before any bulk data moves*, making
the result available to every other operator's ``Initialize()`` through
the aggregated-results channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.adios.group import OutputStep
from repro.core.operator import OperatorContext, PreDatAOperator

__all__ = ["MinMaxOperator", "MinMaxResult"]


@dataclass(frozen=True)
class MinMaxResult:
    """Global per-column statistics of a 2-D variable."""

    mins: tuple[float, ...]
    maxs: tuple[float, ...]
    count: int

    def column(self, i: int) -> tuple[float, float]:
        """The (min, max) pair of column *i*."""
        return self.mins[i], self.maxs[i]


class MinMaxOperator(PreDatAOperator):
    """Computes global per-column min/max/count of a 2-D array var.

    Parameters
    ----------
    var: group variable holding an ``(n, k)`` array per process.
    name: operator name (default derived from var).
    """

    def __init__(self, var: str, name: Optional[str] = None):
        self.var = var
        self.name = name or f"minmax:{var}"

    # -- pass 1 ---------------------------------------------------------
    def partial_calculate(self, step: OutputStep) -> Any:
        data = np.atleast_2d(np.asarray(step.values[self.var]))
        if data.size == 0:
            return None
        return (
            data.min(axis=0).tolist(),
            data.max(axis=0).tolist(),
            int(data.shape[0]),
        )

    def partial_flops(self, step: OutputStep) -> float:
        # one compare per element, twice (min and max), at logical scale
        return 2.0 * step.nbytes_logical / 8.0

    # -- stage 2 ---------------------------------------------------------
    def aggregate(self, partials: list[Any]) -> Optional[MinMaxResult]:
        partials = [p for p in partials if p is not None]
        if not partials:
            return None
        mins = np.min([p[0] for p in partials], axis=0)
        maxs = np.max([p[1] for p in partials], axis=0)
        count = int(sum(p[2] for p in partials))
        return MinMaxResult(tuple(mins.tolist()), tuple(maxs.tolist()), count)

    # -- stage 4: nothing to stream; publish the aggregate -----------------
    def map_flops(self, step: OutputStep) -> float:
        return 0.0

    def finalize(
        self, ctx: OperatorContext, reduced: dict
    ) -> Optional[MinMaxResult]:
        return ctx.aggregated

    def logical_fraction_shuffled(self) -> float:
        return 0.0
