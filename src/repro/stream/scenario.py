"""The seeded coupled-workflow streaming scenario.

One producer application (P ranks writing a 2-D field into DataSpaces
every ``step_period`` sim seconds) feeds three coupled reader apps
over a :class:`~repro.stream.publisher.StepStream`:

- ``analysis`` — an in-transit analysis service (running histogram +
  occupancy bitmap) subscribed from t=0 with several members sharing
  the domain by SFC partition;
- ``follower`` — a particle-tracking follower that *joins mid-run*
  and catches up from the latest committed step;
- ``slow`` — a deliberately slow consumer (per-step processing takes
  ``slow_process_factor`` producer periods) on a small credit budget,
  demonstrating bounded lag under a faster producer.

Everything is seeded — field data, redelivery draws, timing — so a
run's :meth:`StreamRun.digest` is bit-identical across hosts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps.readers import InTransitAnalysisReader, ParticleTrackingFollower
from repro.check.stream import StreamChecker
from repro.dataspaces.space import DataSpaces, Region
from repro.machine import TESTING_TINY, Machine
from repro.sim.engine import Engine
from repro.stream.config import StreamConfig
from repro.stream.consumer import ConsumerGroup
from repro.stream.partition import member_charge_bytes
from repro.stream.publisher import StepStream

__all__ = ["GroupReport", "StreamRun", "make_field", "run_stream"]

#: histogram edges the analysis readers share (field values land in
#: roughly [-0.5, 1.5] under :func:`make_field`)
ANALYSIS_EDGES = np.linspace(-0.5, 1.5, 17)


def make_field(step: int, grid: int, seed: int) -> np.ndarray:
    """Deterministic per-step field: a drifting Gaussian hotspot."""
    rng = np.random.default_rng(seed * 7919 + step)
    yy, xx = np.mgrid[0:grid, 0:grid].astype(float)
    cx, cy = rng.uniform(0.2 * grid, 0.8 * grid, size=2)
    blob = np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (0.02 * grid * grid))
    return blob + 0.05 * rng.standard_normal((grid, grid))


@dataclass
class GroupReport:
    """Summary of one consumer group's run."""

    name: str
    members: int
    subscribed_at: float
    first_step: Optional[int]
    entitled: int
    sent: int
    delivered: int
    deduped: int
    consumed: int
    max_lag: int
    bytes_fetched: float
    throughput: float  # consumed steps per member per sim second
    notify_p50: float
    notify_p99: float

    def to_dict(self) -> dict:
        """JSON-serialisable form (for the bench sidecar)."""
        return {
            "name": self.name,
            "members": self.members,
            "subscribed_at": self.subscribed_at,
            "first_step": self.first_step,
            "entitled": self.entitled,
            "sent": self.sent,
            "delivered": self.delivered,
            "deduped": self.deduped,
            "consumed": self.consumed,
            "max_lag": self.max_lag,
            "bytes_fetched": self.bytes_fetched,
            "throughput": self.throughput,
            "notify_p50": self.notify_p50,
            "notify_p99": self.notify_p99,
        }


@dataclass
class StreamRun:
    """Outcome of one :func:`run_stream` scenario."""

    nsteps: int
    wall_seconds: float
    published: int
    #: latency of the earliest watermark delivery in the run
    first_notify_latency: float
    #: slow group's credit budget expressed in steps
    budget_steps: int
    groups: dict[str, GroupReport]
    violations: list[str]
    #: analysis histogram counts merged across members
    analysis_counts: np.ndarray = field(repr=False)
    #: per-step occupancy merged across members: step -> popcount
    analysis_occupancy: dict[int, int] = field(repr=False)
    #: the follower's (step, cell, value) trajectory
    follower_trajectory: list = field(repr=False)
    #: chronological delivery event log (not serialised)
    events: list = field(repr=False)

    def digest(self) -> str:
        """Deterministic fingerprint of the run's observable behaviour."""
        h = hashlib.sha256()
        h.update(repr(self.events).encode())
        h.update(self.analysis_counts.tobytes())
        h.update(repr(sorted(self.analysis_occupancy.items())).encode())
        h.update(repr(self.follower_trajectory).encode())
        h.update(repr(round(self.wall_seconds, 9)).encode())
        return h.hexdigest()

    def to_dict(self) -> dict:
        """JSON-serialisable form, digest included."""
        return {
            "nsteps": self.nsteps,
            "wall_seconds": self.wall_seconds,
            "published": self.published,
            "first_notify_latency": self.first_notify_latency,
            "budget_steps": self.budget_steps,
            "groups": {k: g.to_dict() for k, g in self.groups.items()},
            "violations": list(self.violations),
            "digest": self.digest(),
        }


def _quantile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered), max(1, int(np.ceil(q * len(ordered)))))
    return float(ordered[rank - 1])


def _report(group: ConsumerGroup, checker: StreamChecker) -> GroupReport:
    sub = group.sub
    latencies = [v for st in sub.stats for v in st.notify_latencies]
    entitled = sum(
        len(checker.entitled.get((sub.id, m), [])) for m in range(sub.nmembers)
    )
    return GroupReport(
        name=group.name,
        members=group.nmembers,
        subscribed_at=group.started_at,
        first_step=sub.feed[0].step if sub.feed else None,
        entitled=entitled,
        sent=group.sent,
        delivered=group.delivered,
        deduped=group.deduped,
        consumed=group.consumed,
        max_lag=group.max_lag,
        bytes_fetched=group.bytes_fetched,
        throughput=group.throughput(),
        notify_p50=_quantile(latencies, 0.50),
        notify_p99=_quantile(latencies, 0.99),
    )


def run_stream(
    *,
    seed: int = 11,
    nsteps: int = 8,
    grid: int = 48,
    producers: int = 4,
    analysis_members: int = 3,
    slow_members: int = 1,
    follower_join_frac: float = 0.45,
    step_period: float = 0.5,
    slow_process_factor: float = 2.0,
    credit_steps: int = 2,
    redeliver_rate: float = 0.15,
    nservers: int = 2,
    obs=None,
    config: Optional[StreamConfig] = None,
) -> StreamRun:
    """Run the coupled-workflow scenario; returns a :class:`StreamRun`."""
    if nsteps < 2 or producers < 1 or grid % producers != 0:
        raise ValueError("need nsteps >= 2 and grid divisible by producers")
    eng = Engine()
    if obs is not None:
        eng.obs = obs
    nconsumers = analysis_members + slow_members + 1
    machine = Machine(
        eng, producers + nconsumers, nservers,
        spec=TESTING_TINY, fs_interference=False,
    )
    ds = DataSpaces(eng, machine, list(machine.staging_node_ids))
    ds.declare("field", (grid, grid))
    checker = StreamChecker()
    cfg = config or StreamConfig(redeliver_rate=redeliver_rate, seed=seed)
    stream = StepStream(eng, machine, ds, cfg, checker=checker)
    domain = Region((0, 0), (grid, grid))
    fields = [make_field(s, grid, seed) for s in range(nsteps)]

    # node layout: producers first, then consumer apps
    analysis_nodes = [producers + i for i in range(analysis_members)]
    slow_nodes = [producers + analysis_members + i for i in range(slow_members)]
    follower_node = producers + analysis_members + slow_members

    # the slow group's budget: credit_steps steps' worth of its largest
    # member partition — the knob the lag bound is measured against
    idx = ds.index("field")
    slow_charge = max(
        member_charge_bytes(idx, domain, slow_members, m)
        for m in range(slow_members)
    )
    slow_budget = credit_steps * slow_charge

    analysis = ConsumerGroup(
        eng, stream, "field", domain, analysis_nodes,
        reader_factory=lambda m: InTransitAnalysisReader(ANALYSIS_EDGES),
        catchup="none", name="analysis",
    )
    slow = ConsumerGroup(
        eng, stream, "field", domain, slow_nodes,
        process_seconds=slow_process_factor * step_period,
        credit_bytes=slow_budget, catchup="none", name="slow",
    )
    follower = ConsumerGroup(
        eng, stream, "field", domain, [follower_node],
        reader_factory=lambda m: ParticleTrackingFollower(),
        catchup="latest", name="follower",
    )
    analysis.start()
    slow.start()

    rows = grid // producers
    done_counts = [0] * nsteps

    def producer(rank: int):
        region = Region((rank * rows, 0), ((rank + 1) * rows, grid))
        for s in range(nsteps):
            yield eng.timeout(step_period)  # compute phase
            block = fields[s][region.slice_within(domain)]
            yield from ds.put(rank, "field", region, block)
            done_counts[s] += 1
            if done_counts[s] == producers:
                stream.publish("field", s)
                if s == nsteps - 1:
                    stream.close()

    def late_joiner():
        yield eng.timeout(follower_join_frac * nsteps * step_period)
        follower.start()

    for r in range(producers):
        eng.process(producer(r), name=f"stream-produce-{r}")
    eng.process(late_joiner(), name="stream-follower-join")
    eng.run()

    groups = {
        g.name: _report(g, checker) for g in (analysis, slow, follower)
    }
    counts = np.zeros(ANALYSIS_EDGES.size - 1, dtype=np.int64)
    occupancy: dict[int, int] = {}
    for reader in analysis.readers:
        counts += reader.counts
        for s, pop in zip(reader.steps, reader.occupancy):
            occupancy[s] = occupancy.get(s, 0) + pop
    first_latencies = [
        st.notify_latencies[0]
        for g in (analysis, slow, follower)
        for st in g.sub.stats
        if st.notify_latencies
    ]
    return StreamRun(
        nsteps=nsteps,
        wall_seconds=eng.now,
        published=stream.published,
        first_notify_latency=min(first_latencies) if first_latencies else 0.0,
        budget_steps=credit_steps,
        groups=groups,
        violations=checker.violations(),
        analysis_counts=counts,
        analysis_occupancy=occupancy,
        follower_trajectory=list(follower.readers[0].trajectory),
        events=list(stream.manager.events),
    )
