"""Pub/sub step streaming over DataSpaces (the coupled-workflow layer).

Turns the one-shot dump pipeline into a persistent data service:
producers publish per-step watermarks into a
:class:`~repro.stream.publisher.StepStream`; reader applications
subscribe mid-run to ``(var, Region)``, receive at-least-once
notifications deduplicated per step, and pull only their SFC-owned
partition via ``DataSpaces.get`` — with per-consumer flow credits
bounding how far a slow reader's lag can grow.

Components:

- :mod:`repro.stream.subscription` — durable subscription ids,
  unsubscribe, per-member notifier processes (the delivery timing
  model), credit backpressure;
- :mod:`repro.stream.publisher` — :class:`StepStream` (publish /
  subscribe / catch-up) and the event-free :class:`StreamBridge`
  coupling a live staging pipeline to the stream;
- :mod:`repro.stream.consumer` — :class:`ConsumerGroup`: N reader
  ranks sharing one subscription, partitioned by SFC block owner;
- :mod:`repro.stream.scenario` / :mod:`repro.stream.bench` /
  :mod:`repro.stream.cli` — the seeded coupled-workflow scenario
  behind ``python -m repro stream`` and its ``BENCH_stream.json``
  guard.
"""

from repro.stream.config import StreamConfig
from repro.stream.consumer import ConsumerGroup
from repro.stream.partition import block_owner, member_charge_bytes, member_pieces
from repro.stream.publisher import StepRecord, StepStream, StreamBridge
from repro.stream.scenario import StreamRun, run_stream
from repro.stream.subscription import (
    CLOSE,
    MemberStats,
    Subscription,
    SubscriptionManager,
    Watermark,
)

__all__ = [
    "CLOSE",
    "ConsumerGroup",
    "MemberStats",
    "StepRecord",
    "StepStream",
    "StreamBridge",
    "StreamConfig",
    "StreamRun",
    "Subscription",
    "SubscriptionManager",
    "Watermark",
    "block_owner",
    "member_charge_bytes",
    "member_pieces",
    "run_stream",
]
