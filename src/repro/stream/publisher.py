"""The step-stream publisher: watermarks over DataSpaces.

:class:`StepStream` is the pub/sub face of a DataSpaces instance.
Producers ``put()`` their pieces as usual; when a step is complete
they ``publish(var, step)`` and every intersecting subscriber receives
a ``(step, region, version)`` watermark — a step stream without files.
Subscribers pull only the pieces intersecting their partition via
``DataSpaces.get``, so data moves on demand, not on publish.

:class:`StreamBridge` couples a running
:class:`~repro.core.staging.StagingService` to the stream *without
touching the engine*: it is a synchronous commit listener recording a
:class:`StepRecord` per (var, step) once every active staging rank has
committed.  A pipeline run with the bridge attached is byte-identical
(result fingerprint and schedule hash) to one without — streaming
costs nothing until the records are replayed into a live stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataspaces.space import Region
from repro.sim.engine import Engine
from repro.stream.config import StreamConfig
from repro.stream.subscription import Subscription, SubscriptionManager, Watermark

__all__ = ["StepRecord", "StepStream", "StreamBridge"]


class StepStream:
    """Pub/sub step streaming layered on a DataSpaces instance."""

    def __init__(
        self,
        env: Engine,
        machine,
        ds,
        config: Optional[StreamConfig] = None,
        *,
        server_node: Optional[int] = None,
        checker=None,
    ):
        self.env = env
        self.machine = machine
        self.ds = ds
        self.config = config or StreamConfig()
        self.checker = checker
        self.manager = SubscriptionManager(
            env, machine, ds, self.config,
            server_node=server_node, checker=checker,
        )
        #: committed watermarks per var, in publish order
        self.log: dict[str, list[Watermark]] = {}

    # -- publishing ---------------------------------------------------------
    def publish(
        self,
        var: str,
        step: int,
        region: Optional[Region] = None,
        *,
        version: Optional[int] = None,
    ) -> Watermark:
        """Record completion of *step* and notify subscribers.

        *region* defaults to the whole declared domain, *version* to
        the domain's current committed version.
        """
        idx = self.ds.index(var)
        if region is None:
            region = Region((0,) * len(idx.dims), idx.dims)
        if version is None:
            version = self.ds.version(var)
        wm = Watermark(var, step, region, version, self.env.now)
        self.log.setdefault(var, []).append(wm)
        if self.checker is not None:
            self.checker.on_published(var, step)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("stream_steps_published", var=var)
        self.manager.dispatch(wm)
        return wm

    def latest(self, var: str) -> Optional[Watermark]:
        """The most recently published watermark of *var* (or None)."""
        wms = self.log.get(var)
        return wms[-1] if wms else None

    @property
    def published(self) -> int:
        """Total watermarks published across all vars."""
        return sum(len(v) for v in self.log.values())

    # -- subscribing --------------------------------------------------------
    def subscribe(
        self,
        var: str,
        region: Region,
        member_nodes,
        *,
        catchup: str = "latest",
        credit_bytes: Optional[float] = None,
    ) -> Subscription:
        """Subscribe *member_nodes* to ``(var, region)``.

        ``catchup="latest"`` entitles the most recently committed
        intersecting step up front, so a mid-run joiner starts from
        live data; ``catchup="none"`` starts with the next publish.
        Returns the durable :class:`Subscription`.
        """
        if catchup not in ("latest", "none"):
            raise ValueError(f"unknown catchup policy {catchup!r}")
        initial = []
        if catchup == "latest":
            for wm in reversed(self.log.get(var, [])):
                if wm.region.intersect(region) is not None:
                    initial.append(wm)
                    break
        return self.manager.subscribe(
            var, region, member_nodes,
            initial_feed=initial, credit_bytes=credit_bytes,
        )

    def unsubscribe(self, sub_id: int) -> None:
        """Retire a subscription (see SubscriptionManager.unsubscribe)."""
        self.manager.unsubscribe(sub_id)

    def ack(self, sub: Subscription, member: int, wm: Watermark) -> None:
        """Consumer acknowledgement of a processed step."""
        self.manager.ack(sub, member, wm)

    def close(self) -> None:
        """End-of-run drain: retire every subscription."""
        self.manager.close()


@dataclass(frozen=True)
class StepRecord:
    """One committed (var, step) observed by a :class:`StreamBridge`."""

    var: str
    step: int
    t_committed: float


class StreamBridge:
    """Pure-recorder coupling from staging commits to the stream.

    Synchronous and event-free by construction: attaching it to a
    pipeline changes neither the run fingerprint nor the schedule
    hash.  ``records`` accumulates one :class:`StepRecord` per
    (var, step) the moment the last active staging rank commits it.
    """

    def __init__(self):
        self.records: list[StepRecord] = []
        self._service = None
        self._ranks_seen: dict[int, set] = {}
        self._done: set[int] = set()

    def attach(self, service) -> "StreamBridge":
        """Register on *service*'s commit hook; returns self."""
        self._service = service
        service.add_commit_listener(self._on_commit)
        return self

    def _on_commit(self, step: int, rank: int) -> None:
        seen = self._ranks_seen.setdefault(step, set())
        seen.add(rank)
        if step in self._done:
            return
        if not seen >= set(self._service.world.active_ranks):
            return
        self._done.add(step)
        now = self._service.env.now
        for var in self._service.group.var_names:
            self.records.append(StepRecord(var, step, now))
