"""Configuration of the step-streaming subsystem."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flow.config import FlowConfig

__all__ = ["StreamConfig"]


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the pub/sub step stream.

    ``redeliver_rate`` models a lost acknowledgement: after each wire
    send the server redelivers with this (seeded) probability, up to
    ``max_sends`` total sends — the at-least-once channel whose
    duplicates the client-side dedup absorbs.  ``credit_bytes`` is the
    default per-consumer credit budget; ``None`` leaves consumers
    unthrottled (unbounded lag).
    """

    #: wire size of one watermark notification (server -> client)
    notify_bytes: float = 64.0
    #: seeded probability that a delivered notification is re-sent
    redeliver_rate: float = 0.0
    #: hard cap on wire sends per (member, step), duplicates included
    max_sends: int = 3
    #: default per-consumer credit budget in bytes (None = unbounded)
    credit_bytes: Optional[float] = None
    #: seed of the redelivery draw (per-notifier streams derive from it)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.notify_bytes <= 0:
            raise ValueError("notify_bytes must be positive")
        if not 0.0 <= self.redeliver_rate < 1.0:
            raise ValueError("redeliver_rate must be in [0, 1)")
        if self.max_sends < 1:
            raise ValueError("max_sends must be >= 1")
        if self.credit_bytes is not None and self.credit_bytes <= 0:
            raise ValueError("credit_bytes must be positive or None")

    def flow_config(self) -> FlowConfig:
        """The flow-control config for consumer credit banks."""
        return FlowConfig()
