"""``python -m repro stream`` — the coupled-workflow streaming scenario.

Runs the seeded producer + three-reader scenario, prints the per-group
delivery table, writes the ``BENCH_stream.json`` sidecar, and (with
``--baseline``) guards the run against the committed baseline via the
perf-regression harness.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.experiments.report import format_table
from repro.perf.bench import compare, default_baseline_dir, write_record
from repro.stream.bench import BENCH_PARAMS, bench_stream

__all__ = ["main"]


def main(argv: Optional[list] = None) -> int:
    """Run the streaming scenario CLI; returns a process exit code."""
    ap = argparse.ArgumentParser(
        prog="repro stream",
        description="pub/sub step streaming: coupled-workflow scenario",
    )
    ap.add_argument(
        "--steps", type=int, default=BENCH_PARAMS["nsteps"],
        help="producer steps to publish",
    )
    ap.add_argument(
        "--consumers", type=int, default=BENCH_PARAMS["analysis_members"],
        help="members of the in-transit analysis group",
    )
    ap.add_argument(
        "--period", type=float, default=BENCH_PARAMS["step_period"],
        help="producer step period (sim seconds)",
    )
    ap.add_argument(
        "--credit-steps", type=int, default=BENCH_PARAMS["credit_steps"],
        help="slow consumer's credit budget in steps",
    )
    ap.add_argument(
        "--redeliver", type=float, default=BENCH_PARAMS["redeliver_rate"],
        help="seeded lost-ack redelivery probability",
    )
    ap.add_argument("--seed", type=int, default=20260808)
    ap.add_argument(
        "--out", type=Path, default=Path("."),
        help="directory for the BENCH_stream.json sidecar",
    )
    ap.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline dir to guard against ('default' for the "
        "committed benchmarks/perf/baselines)",
    )
    ap.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional guard regression (default 0.2)",
    )
    args = ap.parse_args(argv)

    record = bench_stream(
        seed=args.seed,
        nsteps=args.steps,
        analysis_members=args.consumers,
        step_period=args.period,
        credit_steps=args.credit_steps,
        redeliver_rate=args.redeliver,
    )
    run = record["run"]
    rows = [
        [
            g["name"],
            g["members"],
            g["first_step"] if g["first_step"] is not None else "-",
            g["entitled"],
            g["delivered"],
            g["deduped"],
            g["consumed"],
            g["max_lag"],
            f"{g['throughput']:.2f}",
            f"{g['notify_p99'] * 1e3:.3f}",
        ]
        for g in run["groups"].values()
    ]
    print(
        format_table(
            ["group", "members", "first step", "entitled", "delivered",
             "deduped", "consumed", "max lag", "steps/s", "p99 ms"],
            rows,
            title=f"step streaming ({run['published']} steps published, "
            f"seed {args.seed})",
        )
    )
    if run["violations"]:
        for v in run["violations"]:
            print(f"[stream] CONSERVATION VIOLATION {v}")
    else:
        print("[stream] conservation check clean "
              "(sent == delivered + deduped, exactly-once)")
    path = write_record("stream", record, args.out)
    print(f"[stream] wrote {path}")
    if args.baseline is not None:
        base_dir = (
            default_baseline_dir()
            if str(args.baseline) == "default"
            else args.baseline
        )
        base_path = base_dir / "BENCH_stream.json"
        if not base_path.exists():
            print(f"[stream] no baseline at {base_path}; skipping guard")
            return 0
        problems = compare(
            record, json.loads(base_path.read_text()), args.tolerance
        )
        for p in problems:
            print(f"[stream] REGRESSION {p}")
        if problems:
            return 1
        print("[stream] all guards clean")
    return 1 if run["violations"] else 0
