"""Streaming benchmark: the ``BENCH_stream.json`` record.

Runs the seeded coupled-workflow scenario and guards the streaming
subsystem's behavioural envelope.  Every number is *simulated* time
from a seeded run, so the record is bit-identical across hosts and
the tolerance protects purely against behavioural regressions.

Guards (all "bigger is better" ratios in [0, 1]):

- ``conservation`` — 1.0 iff the stream conservation check is clean
  (published == delivered + deduped per subscriber, exactly-once);
- ``delivered:<group>`` — delivered / entitled per consumer group;
- ``notify_slo`` — fraction of the *analysis* group's latency marks
  (p50/p99 per run) within :data:`NOTIFY_SLO_SECONDS` of publish —
  the unthrottled group, so the guard measures wire responsiveness,
  not intentional backpressure stalls;
- ``throughput:analysis`` — the analysis group's per-member step rate
  relative to the producer's (1.0 = keeps up);
- ``lag_bound:slow`` — 1.0 iff the slow consumer's worst lag stayed
  within its credit budget (+1 idle-bank step), degrading as the
  ratio of bound to observed lag otherwise.
"""

from __future__ import annotations

from repro.stream.scenario import run_stream

__all__ = ["BENCH_PARAMS", "NOTIFY_SLO_SECONDS", "bench_stream"]

#: generous against the tiny-machine wire model (a watermark is one
#: 64-byte message), tight against scheduling pathologies
NOTIFY_SLO_SECONDS = 0.05

#: the committed baseline's scenario shape: a 2x-rate producer over
#: the slow group, a mid-run follower join, and lossy-ack redelivery
BENCH_PARAMS = dict(
    nsteps=10,
    grid=48,
    producers=4,
    analysis_members=3,
    slow_members=1,
    follower_join_frac=0.45,
    step_period=0.4,
    slow_process_factor=2.0,
    credit_steps=2,
    redeliver_rate=0.15,
)


def bench_stream(seed: int = 20260808, **overrides) -> dict:
    """Run the scenario once; returns the ``BENCH_stream`` record."""
    params = {**BENCH_PARAMS, **overrides}
    run = run_stream(seed=seed, **params)
    guards: dict[str, float] = {
        "conservation": 1.0 if not run.violations else 0.0,
    }
    for name, g in run.groups.items():
        guards[f"delivered:{name}"] = (
            g.delivered / g.entitled if g.entitled else 0.0
        )
    analysis = run.groups["analysis"]
    lats = [analysis.notify_p50, analysis.notify_p99]
    guards["notify_slo"] = sum(
        1 for v in lats if v <= NOTIFY_SLO_SECONDS
    ) / len(lats)
    guards["throughput:analysis"] = min(
        1.0, analysis.throughput * params["step_period"]
    )
    slow = run.groups["slow"]
    bound = params["credit_steps"] + 1
    guards["lag_bound:slow"] = (
        1.0 if slow.max_lag <= bound else bound / slow.max_lag
    )
    return {
        "bench": "stream",
        "seed": seed,
        "params": params,
        "notify_slo_seconds": NOTIFY_SLO_SECONDS,
        "run": run.to_dict(),
        "guards": guards,
    }
