"""Subscription lifecycle and at-least-once notification delivery.

Readers subscribe to ``(var, Region)`` and get a durable subscription
id back.  Per (subscription, member) a *notifier* process on the
server side walks the subscription's watermark feed sequentially:

1. ship the watermark over the machine network (sim-time charged,
   server node -> member node), re-sending with the seeded
   ``redeliver_rate`` to model lost acks — the at-least-once channel;
2. the client side deduplicates by step, so duplicates count as
   ``deduped``, never as a second delivery;
3. acquire the member's :class:`~repro.flow.credits.CreditBank`
   credits for its partition of the step *before* handing the
   watermark to the consumer queue.

Step 3 is the backpressure rule: credits are released only when the
consumer acks the step, so a slow reader stalls its own notifier and
its delivered-but-unconsumed lag stays bounded by
``floor(budget / step_charge) + 1`` (the ``+1`` is the idle-bank
admission of :class:`~repro.flow.credits.CreditBank`).  A departed
subscription (:meth:`SubscriptionManager.unsubscribe`) accepts no new
entitlements; already-entitled watermarks drain, then every member
queue receives :data:`CLOSE`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.dataspaces.space import Region
from repro.flow.credits import CreditBank
from repro.sim.engine import Engine, Event
from repro.sim.resources import Store
from repro.stream.config import StreamConfig
from repro.stream.partition import member_charge_bytes

__all__ = ["CLOSE", "MemberStats", "Subscription", "SubscriptionManager", "Watermark"]

#: queue sentinel: the subscription has drained, the consumer may exit
CLOSE = object()


@dataclass(frozen=True)
class Watermark:
    """A step-completion record: *var* over *region* is committed at
    *version*, published into the stream at *t_published*."""

    var: str
    step: int
    region: Region
    version: int
    t_published: float


@dataclass
class MemberStats:
    """Delivery/consumption ledger of one (subscription, member)."""

    sent: int = 0
    delivered: int = 0
    deduped: int = 0
    consumed: int = 0
    max_lag: int = 0
    bytes_fetched: float = 0.0
    notify_latencies: list = field(default_factory=list)
    consumed_steps: list = field(default_factory=list)

    @property
    def lag(self) -> int:
        """Steps delivered to this member but not yet acked."""
        return self.delivered - self.consumed


class Subscription:
    """One durable subscription: shared feed, per-member cursors."""

    def __init__(
        self,
        env: Engine,
        sid: int,
        var: str,
        region: Region,
        member_nodes: tuple[int, ...],
        banks: list[CreditBank],
    ):
        self.env = env
        self.id = sid
        self.var = var
        self.region = region
        self.member_nodes = tuple(member_nodes)
        self.banks = banks
        self.created_at = env.now
        #: True while new publishes are entitled to this subscription
        self.active = True
        #: entitled watermarks, in entitlement order (shared by members)
        self.feed: list[Watermark] = []
        self.cursors = [0] * self.nmembers
        self.queues = [Store(env) for _ in range(self.nmembers)]
        #: per-member delivered-step dedup sets
        self.seen: list[set] = [set() for _ in range(self.nmembers)]
        self.stats = [MemberStats() for _ in range(self.nmembers)]
        self._wake: Optional[Event] = None

    @property
    def nmembers(self) -> int:
        return len(self.member_nodes)

    @property
    def max_lag(self) -> int:
        """Largest delivered-unconsumed lag any member ever reached."""
        return max(st.max_lag for st in self.stats)

    def wake_event(self) -> Event:
        """Event the notifiers wait on for new feed entries."""
        if self._wake is None or self._wake.triggered:
            self._wake = self.env.event()
        return self._wake

    def wake(self) -> None:
        """Fire the pending wake event (new feed entry or retirement)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()


class SubscriptionManager:
    """Server-side registry of subscriptions plus their notifiers."""

    def __init__(
        self,
        env: Engine,
        machine,
        ds,
        config: StreamConfig,
        *,
        server_node: Optional[int] = None,
        checker=None,
    ):
        self.env = env
        self.machine = machine
        self.ds = ds
        self.config = config
        self.server_node = (
            ds.server_nodes[0] if server_node is None else server_node
        )
        self.checker = checker
        self._subs: dict[int, Subscription] = {}
        self._next_id = 0
        self._notifiers: dict[int, list] = {}
        #: chronological event log: (t, kind, sub, member, step) with
        #: kind in {"dlv", "dup", "ack"} — the scenario's fingerprint
        self.events: list[tuple] = []

    @property
    def subscriptions(self) -> dict[int, Subscription]:
        """Live view of the registry (copy; ids stay durable)."""
        return dict(self._subs)

    # -- lifecycle ----------------------------------------------------------
    def subscribe(
        self,
        var: str,
        region: Region,
        member_nodes,
        *,
        initial_feed=(),
        credit_bytes: Optional[float] = None,
    ) -> Subscription:
        """Register a subscription; spawns one notifier per member."""
        self.ds.index(var)  # validates declaration
        member_nodes = tuple(member_nodes)
        if not member_nodes:
            raise ValueError("need at least one member node")
        budget = (
            credit_bytes if credit_bytes is not None else self.config.credit_bytes
        )
        capacity = float("inf") if budget is None else float(budget)
        sid = self._next_id
        self._next_id += 1
        banks = [
            CreditBank(self.env, rank=m, capacity=capacity,
                       config=self.config.flow_config())
            for m in range(len(member_nodes))
        ]
        sub = Subscription(self.env, sid, var, region, member_nodes, banks)
        self._subs[sid] = sub
        if self.checker is not None:
            self.checker.on_subscribed(sid, sub.nmembers, self.env.now)
        for wm in initial_feed:
            self._entitle(sub, wm)
        self._notifiers[sid] = [
            self.env.process(
                self._notifier(sub, m), name=f"stream-notify-{sid}.{m}"
            )
            for m in range(sub.nmembers)
        ]
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("stream_subscriptions")
        return sub

    def unsubscribe(self, sub_id: int) -> None:
        """Retire *sub_id*: no new entitlements; the already-entitled
        feed drains, then every member queue receives CLOSE."""
        sub = self._subs.get(sub_id)
        if sub is None:
            raise KeyError(f"unknown stream subscription {sub_id}")
        sub.active = False
        sub.wake()

    def close(self) -> None:
        """Retire every subscription (end-of-run drain)."""
        for sub in self._subs.values():
            sub.active = False
            sub.wake()

    # -- publishing ---------------------------------------------------------
    def dispatch(self, wm: Watermark) -> None:
        """Fan a published watermark out to intersecting live subs."""
        for sub in self._subs.values():
            if not sub.active or sub.var != wm.var:
                continue
            if sub.region.intersect(wm.region) is None:
                continue
            self._entitle(sub, wm)
            sub.wake()

    def _entitle(self, sub: Subscription, wm: Watermark) -> None:
        sub.feed.append(wm)
        if self.checker is not None:
            for m in range(sub.nmembers):
                self.checker.on_entitled(sub.id, m, wm.step)

    # -- delivery -----------------------------------------------------------
    def _notifier(self, sub: Subscription, m: int):
        """Process body: sequential server->member delivery loop."""
        env = self.env
        cfg = self.config
        rng = random.Random(cfg.seed * 1_000_003 + sub.id * 8191 + m * 131)
        st = sub.stats[m]
        node = sub.member_nodes[m]
        while True:
            while sub.cursors[m] >= len(sub.feed):
                if not sub.active:
                    yield sub.queues[m].put(CLOSE)
                    return
                yield sub.wake_event()
            wm = sub.feed[sub.cursors[m]]
            sub.cursors[m] += 1
            # at-least-once: a lost ack (seeded) makes the server
            # resend; the client dedups by step, so redundant arrivals
            # are counted, never re-delivered
            sends = 1
            while sends < cfg.max_sends and rng.random() < cfg.redeliver_rate:
                sends += 1
            for _ in range(sends):
                yield from self.machine.network.transfer(
                    self.server_node, node, cfg.notify_bytes
                )
                st.sent += 1
                if self.checker is not None:
                    self.checker.on_sent(sub.id, m, wm.step)
                if wm.step in sub.seen[m]:
                    st.deduped += 1
                    self.events.append((env.now, "dup", sub.id, m, wm.step))
                    if self.checker is not None:
                        self.checker.on_deduped(sub.id, m, wm.step)
                    continue
                sub.seen[m].add(wm.step)
                st.delivered += 1
                latency = env.now - wm.t_published
                st.notify_latencies.append(latency)
                st.max_lag = max(st.max_lag, st.lag)
                self.events.append((env.now, "dlv", sub.id, m, wm.step))
                if self.checker is not None:
                    self.checker.on_delivered(sub.id, m, wm.step)
                obs = env.obs
                if obs is not None:
                    obs.metrics.observe(
                        "stream_notify_latency_seconds", latency, sub=sub.id
                    )
                    obs.metrics.gauge_max(
                        "stream_lag_steps", st.lag, sub=sub.id, member=m
                    )
            # backpressure: hold the member's credits for its partition
            # until the consumer acks — a slow reader stalls only its
            # own feed and lag never outruns the credit budget
            cut = wm.region.intersect(sub.region)
            charge = member_charge_bytes(
                self.ds.index(wm.var), cut, sub.nmembers, m
            )
            yield from sub.banks[m].request((sub.id, m, wm.step), charge)
            yield sub.queues[m].put(wm)

    # -- consumption --------------------------------------------------------
    def ack(self, sub: Subscription, member: int, wm: Watermark) -> None:
        """Consumer hand-back: release credits, account consumption."""
        st = sub.stats[member]
        sub.banks[member].release((sub.id, member, wm.step))
        st.consumed += 1
        st.consumed_steps.append(wm.step)
        self.events.append((self.env.now, "ack", sub.id, member, wm.step))
        if self.checker is not None:
            self.checker.on_consumed(sub.id, member, wm.step)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("stream_steps_consumed", sub=sub.id)
