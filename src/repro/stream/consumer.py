"""Consumer groups: N reader ranks sharing one subscription.

The subscribed region is partitioned by SFC block owner
(:mod:`repro.stream.partition`), so each member fetches a disjoint,
locality-compact share of every step via ``DataSpaces.get`` and the
group jointly covers the region exactly once per step.  Members ack
each step after processing, which returns their flow credits to the
notifier — the backpressure loop bounding a slow member's lag.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dataspaces.space import Region
from repro.sim.engine import Engine
from repro.stream.partition import member_pieces
from repro.stream.publisher import StepStream
from repro.stream.subscription import CLOSE, Subscription

__all__ = ["ConsumerGroup"]


class ConsumerGroup:
    """A coupled reader application consuming one step stream.

    ``reader_factory(member) -> reader`` builds the per-member reader
    app; a reader exposes ``on_step(watermark, pieces)`` with
    ``pieces`` a list of ``(Region, ndarray)`` covering the member's
    partition.  ``process_seconds`` charges per-step processing time
    (a value above the producer period makes the group a *slow*
    consumer, exercising backpressure).
    """

    def __init__(
        self,
        env: Engine,
        stream: StepStream,
        var: str,
        region: Region,
        member_nodes,
        *,
        reader_factory: Optional[Callable[[int], object]] = None,
        process_seconds: float = 0.0,
        credit_bytes: Optional[float] = None,
        catchup: str = "latest",
        name: str = "group",
    ):
        if process_seconds < 0:
            raise ValueError("process_seconds must be non-negative")
        self.env = env
        self.stream = stream
        self.var = var
        self.region = region
        self.member_nodes = tuple(member_nodes)
        self.reader_factory = reader_factory
        self.process_seconds = process_seconds
        self.credit_bytes = credit_bytes
        self.catchup = catchup
        self.name = name
        self.readers: list = []
        self.sub: Optional[Subscription] = None
        self.procs: list = []
        self.started_at: Optional[float] = None
        #: per-member sim time of CLOSE (None while still consuming)
        self.finished: list = []

    @property
    def nmembers(self) -> int:
        return len(self.member_nodes)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> Subscription:
        """Subscribe and spawn one consumer process per member."""
        if self.sub is not None:
            raise RuntimeError(f"group {self.name!r} already started")
        self.sub = self.stream.subscribe(
            self.var, self.region, self.member_nodes,
            catchup=self.catchup, credit_bytes=self.credit_bytes,
        )
        self.started_at = self.env.now
        self.readers = [
            self.reader_factory(m) if self.reader_factory is not None else None
            for m in range(self.nmembers)
        ]
        self.finished = [None] * self.nmembers
        self.procs = [
            self.env.process(
                self._member(m), name=f"stream-consume-{self.name}.{m}"
            )
            for m in range(self.nmembers)
        ]
        return self.sub

    def leave(self) -> None:
        """Depart mid-run: unsubscribe; members drain entitled steps,
        then stop — later publishes never reach this group."""
        if self.sub is None:
            raise RuntimeError(f"group {self.name!r} never started")
        self.stream.unsubscribe(self.sub.id)

    def _member(self, m: int):
        env = self.env
        ds = self.stream.ds
        sub = self.sub
        st = sub.stats[m]
        node = sub.member_nodes[m]
        reader = self.readers[m]
        while True:
            item = yield sub.queues[m].get()
            if item is CLOSE:
                break
            wm = item
            cut = wm.region.intersect(sub.region)
            pieces = []
            for pr in member_pieces(ds.index(self.var), cut, sub.nmembers, m):
                data = yield from ds.get(node, self.var, pr)
                st.bytes_fetched += data.nbytes
                pieces.append((pr, data))
            if self.process_seconds > 0:
                yield env.timeout(self.process_seconds)
            if reader is not None:
                reader.on_step(wm, pieces)
            self.stream.ack(sub, m, wm)
        self.finished[m] = env.now

    # -- stats --------------------------------------------------------------
    @property
    def consumed(self) -> int:
        """Steps consumed, summed over members."""
        return sum(st.consumed for st in self.sub.stats)

    @property
    def delivered(self) -> int:
        return sum(st.delivered for st in self.sub.stats)

    @property
    def deduped(self) -> int:
        return sum(st.deduped for st in self.sub.stats)

    @property
    def sent(self) -> int:
        return sum(st.sent for st in self.sub.stats)

    @property
    def max_lag(self) -> int:
        """Worst delivered-unconsumed lag any member reached."""
        return self.sub.max_lag

    @property
    def bytes_fetched(self) -> float:
        return sum(st.bytes_fetched for st in self.sub.stats)

    def duration(self) -> float:
        """Sim seconds from subscribe to the last member's CLOSE."""
        if self.started_at is None:
            return 0.0
        ends = [t for t in self.finished if t is not None]
        end = max(ends) if len(ends) == self.nmembers else self.env.now
        return max(0.0, end - self.started_at)

    def throughput(self) -> float:
        """Consumed steps per member per sim second."""
        dur = self.duration()
        if dur <= 0 or self.sub is None:
            return 0.0
        return self.consumed / self.nmembers / dur
