"""Consumer-group partitioning along the DataSpaces SFC.

A consumer group of N reader ranks splits a subscribed region by
*block*, using the same locality-preserving linearisation DataSpaces
uses for its servers: each index block's Hilbert position (Morton for
non-2-D domains) is cut into N equal curve segments, so every member
owns one contiguous, compact piece of the key space — independent of
which *server* stores the block.
"""

from __future__ import annotations

from repro.dataspaces.sfc import hilbert_owner, morton_encode
from repro.dataspaces.space import Region

__all__ = ["block_owner", "member_charge_bytes", "member_pieces"]


def block_owner(index, block: tuple[int, ...], nmembers: int) -> int:
    """Group member owning *block* of *index* among *nmembers*."""
    if nmembers < 1:
        raise ValueError("need at least one group member")
    if len(index.grid) == 2:
        return hilbert_owner(index.order, block[0], block[1], nmembers)
    ncells = 1 << (index.order * len(index.grid))
    return morton_encode(block, nbits=index.order) * nmembers // ncells


def member_pieces(
    index, region: Region, nmembers: int, member: int
) -> list[Region]:
    """The sub-regions of *region* owned by *member* (block-clipped).

    Pieces of different members are disjoint and jointly cover the
    region exactly (tested by property), so a group fetches each cell
    exactly once.
    """
    out = []
    for b in index.blocks_for(region):
        if block_owner(index, b, nmembers) != member:
            continue
        cut = index.block_region(b).intersect(region)
        if cut is not None:
            out.append(cut)
    return out


def member_charge_bytes(
    index, region: Region, nmembers: int, member: int, itemsize: float = 8.0
) -> float:
    """Credit charge of one step for *member*: its partition's bytes."""
    return float(
        sum(p.cells for p in member_pieces(index, region, nmembers, member))
        * itemsize
    )
