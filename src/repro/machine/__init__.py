"""Machine model: nodes, interconnect, and parallel file system.

This package substitutes for the ORNL Jaguar Cray XT4/XT5 hardware the
paper ran on.  It provides:

- :mod:`repro.machine.topology` — a 3-D torus topology (SeaStar mesh)
  with hop-count routing, built on ``networkx``, plus
  :class:`RegionalTopology` layering named regions with
  per-region-pair latency classes over the torus;
- :mod:`repro.machine.network` — a fluid-flow interconnect model with
  per-node full-duplex NIC pipes, a bisection backbone, RDMA transfers
  and alpha-beta collective cost models;
- :mod:`repro.machine.node` — compute/staging node resources (cores,
  memory accounting);
- :mod:`repro.machine.filesystem` — a Lustre-like parallel file system
  with OST striping, shared aggregate bandwidth, per-client caps and an
  interference/variability model;
- :mod:`repro.machine.presets` — parameter sets calibrated to the
  Jaguar XT4 and XT5 partitions described in §V.A of the paper;
- :mod:`repro.machine.machine` — the :class:`Machine` facade that
  assembles all of the above on one simulation engine.
"""

from repro.machine.filesystem import FileSystemConfig, ParallelFileSystem
from repro.machine.machine import Machine
from repro.machine.network import Network, NetworkConfig
from repro.machine.node import MemoryError_, Node, NodeConfig, NodeFailure
from repro.machine.presets import JAGUAR_XT4, JAGUAR_XT5, MachineSpec, TESTING_TINY
from repro.machine.topology import LatencyClass, RegionalTopology, TorusTopology

__all__ = [
    "FileSystemConfig",
    "JAGUAR_XT4",
    "LatencyClass",
    "JAGUAR_XT5",
    "Machine",
    "MachineSpec",
    "MemoryError_",
    "Network",
    "NetworkConfig",
    "Node",
    "NodeConfig",
    "NodeFailure",
    "ParallelFileSystem",
    "RegionalTopology",
    "TESTING_TINY",
    "TorusTopology",
]
