"""Compute / staging node model: cores and memory accounting.

A :class:`Node` owns a core :class:`~repro.sim.resources.Resource` and a
byte-granular memory ledger.  PreDatA's streaming constraint (§IV.C —
staging nodes cannot buffer a whole output step) is enforced through
:meth:`Node.allocate`, which raises :class:`MemoryError_` when a buffer
request exceeds the node's remaining memory.

Compute work is expressed in *flop* so that the same operator code can
be timed on nodes with different per-core speeds (XT4 Budapest vs XT5
Barcelona cores).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, Optional

from repro.sim.engine import Engine, Event
from repro.sim.resources import Resource

__all__ = ["NodeConfig", "Node", "MemoryError_", "NodeFailure"]


class MemoryError_(RuntimeError):
    """A buffer allocation exceeded node memory.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class NodeFailure(RuntimeError):
    """A node crashed (fault injection).

    Raised when work is submitted to a dead node, and used as the
    interrupt *cause* when processes running on a crashing node are
    killed by the resilience controller.
    """

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} has failed")
        self.node_id = node_id


@dataclass(frozen=True)
class NodeConfig:
    """Per-node hardware parameters.

    Defaults match an XT5 node: 2x quad-core Opteron 2356 @ 2.3 GHz,
    16 GB DDR2-800.
    """

    cores: int = 8
    core_flops: float = 9.2e9  # 2.3 GHz * 4-wide FP
    memory_bytes: float = 16 * 2**30
    memory_bandwidth: float = 12.8e9  # bytes/s, DDR2-800 dual channel

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("node needs at least one core")
        if min(self.core_flops, self.memory_bytes, self.memory_bandwidth) <= 0:
            raise ValueError("node parameters must be positive")


class Node:
    """One machine node.

    Parameters
    ----------
    env: simulation engine.
    node_id: topology id.
    config: hardware parameters.
    role: ``"compute"`` or ``"staging"`` (bookkeeping only).
    """

    def __init__(
        self,
        env: Engine,
        node_id: int,
        config: Optional[NodeConfig] = None,
        role: str = "compute",
    ):
        self.env = env
        self.id = node_id
        self.config = config or NodeConfig()
        self.role = role
        self.cores = Resource(env, self.config.cores)
        self._mem_used = 0.0
        self._mem_high_water = 0.0
        #: FIFO waitable-allocation queue: (event, nbytes)
        self._mem_waiters: Deque[tuple[Event, float]] = deque()
        self.busy_seconds = 0.0  # accumulated core-seconds of work
        self.alive = True
        self.failed_at: Optional[float] = None
        self._failure_listeners: list = []

    # -- failure ----------------------------------------------------------
    def add_failure_listener(self, callback) -> None:
        """Register ``callback(node)`` to run when :meth:`fail` fires."""
        self._failure_listeners.append(callback)

    def fail(self) -> None:
        """Kill this node (fault injection hook).

        Marks the node dead, records the crash time, and invokes the
        registered failure listeners (e.g. the resilience controller,
        which interrupts staging processes hosted here).  Idempotent.
        """
        if not self.alive:
            return
        self.alive = False
        self.failed_at = self.env.now
        for cb in list(self._failure_listeners):
            cb(self)

    # -- memory -----------------------------------------------------------
    @property
    def memory_used(self) -> float:
        return self._mem_used

    @property
    def memory_free(self) -> float:
        return self.config.memory_bytes - self._mem_used

    @property
    def memory_high_water(self) -> float:
        """Peak bytes ever allocated simultaneously."""
        return self._mem_high_water

    def allocate(self, nbytes: float) -> None:
        """Reserve *nbytes* of node memory or raise :class:`MemoryError_`."""
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self._mem_used + nbytes > self.config.memory_bytes:
            raise MemoryError_(
                f"node {self.id}: requested {nbytes:.3e} B with only "
                f"{self.memory_free:.3e} B free of {self.config.memory_bytes:.3e} B"
            )
        self._reserve(nbytes)

    def _reserve(self, nbytes: float) -> None:
        self._mem_used += nbytes
        self._mem_high_water = max(self._mem_high_water, self._mem_used)

    def request_memory(self, nbytes: float) -> Event:
        """Waitable allocation: event fires when *nbytes* is reserved.

        Requests are granted FIFO as :meth:`free` returns capacity, so
        a flow-controlled caller blocks (in simulated time) instead of
        crashing with :class:`MemoryError_`.  A request that can never
        fit still raises immediately.  Waiters that give up must call
        :meth:`cancel_memory` or the abandoned entry blocks the queue.
        """
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if nbytes > self.config.memory_bytes:
            raise MemoryError_(
                f"node {self.id}: requested {nbytes:.3e} B exceeds node "
                f"memory of {self.config.memory_bytes:.3e} B"
            )
        ev = self.env.event()
        if not self._mem_waiters and self._mem_used + nbytes <= self.config.memory_bytes:
            self._reserve(nbytes)
            ev.succeed()
        else:
            self._mem_waiters.append((ev, nbytes))
        return ev

    def cancel_memory(self, ev: Event, nbytes: float) -> None:
        """Withdraw a pending or just-granted :meth:`request_memory`."""
        for i, (wev, _need) in enumerate(self._mem_waiters):
            if wev is ev:
                del self._mem_waiters[i]
                return
        if ev.triggered:
            self.free(nbytes)

    def _pump_memory(self) -> None:
        while self._mem_waiters:
            ev, need = self._mem_waiters[0]
            if self._mem_used + need > self.config.memory_bytes:
                break  # FIFO head-of-line: preserves grant order
            self._mem_waiters.popleft()
            self._reserve(need)
            ev.succeed()

    def free(self, nbytes: float) -> None:
        """Return *nbytes* to the pool and grant queued waiters FIFO."""
        if nbytes < 0:
            raise ValueError("free must be non-negative")
        # Relative tolerance: the ledger is floating point, so
        # alloc/free cycles accumulate rounding drift that scales with
        # the magnitudes involved — an absolute epsilon rejects
        # legitimate frees of multi-GB buffers whose sizes were
        # computed along different arithmetic paths.
        tol = max(1e-6, 1e-9 * nbytes)
        if nbytes > self._mem_used + tol:
            raise RuntimeError(
                f"node {self.id}: freeing {nbytes:.3e} B but only "
                f"{self._mem_used:.3e} B allocated"
            )
        self._mem_used = max(0.0, self._mem_used - nbytes)
        if self._mem_waiters:
            self._pump_memory()

    # -- compute ------------------------------------------------------------
    def compute_time(self, flops: float, *, cores: int = 1) -> float:
        """Seconds to execute *flops* using *cores* cores."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        cores = min(cores, self.config.cores)
        return flops / (self.config.core_flops * cores)

    def memory_scan_time(self, nbytes: float) -> float:
        """Seconds to stream *nbytes* through the memory system."""
        return nbytes / self.config.memory_bandwidth

    def compute(self, flops: float, *, cores: int = 1) -> Generator:
        """Process body: occupy *cores* cores for the work duration.

        The core grant is atomic (all-or-nothing), so concurrent
        multi-core jobs on one node queue instead of deadlocking.
        """
        if not self.alive:
            raise NodeFailure(self.id)
        duration = self.compute_time(flops, cores=cores)
        cores = min(cores, self.config.cores)
        req = self.cores.request(cores)
        try:
            yield req
        except BaseException:
            # Interrupted while queued (or just granted): withdraw the
            # request so abandoned grants cannot leak core capacity.
            self.cores.cancel(req, cores)
            raise
        try:
            yield self.env.timeout(duration)
            self.busy_seconds += duration * cores
        finally:
            self.cores.release(cores)
        return duration

    def __repr__(self) -> str:
        return f"Node(id={self.id}, role={self.role!r}, cores={self.config.cores})"
