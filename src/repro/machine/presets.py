"""Machine parameter presets calibrated to the paper's platforms (§V.A).

``JAGUAR_XT5`` — 18,688 nodes, 2x quad-core Opteron 2356 (Barcelona)
@ 2.3 GHz, 16 GB/node, SeaStar 2+; GTC experiments ran here.

``JAGUAR_XT4`` — 7,832 nodes, quad-core Opteron 1354 (Budapest)
@ 2.1 GHz, 8 GB/node, SeaStar2; Pixie3D experiments ran here.

``TESTING_TINY`` — a fast small preset for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machine.filesystem import FileSystemConfig
from repro.machine.network import NetworkConfig
from repro.machine.node import NodeConfig

__all__ = ["MachineSpec", "JAGUAR_XT5", "JAGUAR_XT4", "TESTING_TINY"]


@dataclass(frozen=True)
class MachineSpec:
    """A named bundle of node/network/file-system parameters."""

    name: str
    max_nodes: int
    node: NodeConfig
    network: NetworkConfig
    filesystem: FileSystemConfig

    def scaled(self, **overrides) -> "MachineSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)


JAGUAR_XT5 = MachineSpec(
    name="jaguar-xt5",
    max_nodes=18_688,
    node=NodeConfig(
        cores=8,
        core_flops=9.2e9,  # 2.3 GHz Barcelona, 4 flops/cycle
        memory_bytes=16 * 2**30,
        memory_bandwidth=12.8e9,
    ),
    network=NetworkConfig(
        link_bandwidth=6.4e9,
        latency=5e-6,
        hop_latency=5e-8,
        bisection_bandwidth_per_link=4.8e9,
    ),
    filesystem=FileSystemConfig(
        aggregate_bandwidth=40e9,
        client_bandwidth=1.2e9,
        n_osts=672,
    ),
)

JAGUAR_XT4 = MachineSpec(
    name="jaguar-xt4",
    max_nodes=7_832,
    node=NodeConfig(
        cores=4,
        core_flops=8.4e9,  # 2.1 GHz Budapest
        memory_bytes=8 * 2**30,
        memory_bandwidth=10.6e9,
    ),
    network=NetworkConfig(
        link_bandwidth=4.0e9,
        latency=6e-6,
        hop_latency=6e-8,
        bisection_bandwidth_per_link=3.2e9,
    ),
    filesystem=FileSystemConfig(
        aggregate_bandwidth=15e9,
        client_bandwidth=0.8e9,
        n_osts=144,
        # small scattered chunk reads pay a full seek + RPC round each
        extent_overhead=0.0025,
    ),
)

TESTING_TINY = MachineSpec(
    name="testing-tiny",
    max_nodes=64,
    node=NodeConfig(
        cores=2,
        core_flops=1e9,
        memory_bytes=1 * 2**30,
        memory_bandwidth=4e9,
    ),
    network=NetworkConfig(
        link_bandwidth=1e9,
        latency=1e-5,
        hop_latency=1e-7,
        bisection_bandwidth_per_link=0.8e9,
    ),
    filesystem=FileSystemConfig(
        aggregate_bandwidth=2e9,
        client_bandwidth=0.5e9,
        n_osts=8,
        stripe_count=2,
    ),
)
