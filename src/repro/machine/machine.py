"""The :class:`Machine` facade: nodes + network + file system on one engine.

A ``Machine`` carves its node ids into a *compute partition* and a
*staging partition* (the PreDatA Staging Area, §II.C).  Staging nodes
are placed at the tail of the id range, mirroring a dedicated service
allocation on the real machine.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.machine.filesystem import ParallelFileSystem
from repro.machine.network import Network
from repro.machine.node import Node
from repro.machine.presets import JAGUAR_XT5, MachineSpec
from repro.machine.topology import TorusTopology

__all__ = ["Machine"]


class Machine:
    """A simulated HEC platform instance.

    Parameters
    ----------
    env: simulation engine everything runs on.
    n_compute_nodes: nodes allocated to the simulation job.
    n_staging_nodes: nodes allocated to the PreDatA Staging Area.
    spec: hardware parameter preset (default: Jaguar XT5).
    fs_interference: enable file-system variability (shared machine).
    topology: explicit :class:`TorusTopology` instance covering the
        allocation, or a factory called with the total node count
        (e.g. ``lambda total: RegionalTopology(total, ("east", "west"))``).
        Default: a near-cubic :class:`TorusTopology`.
    """

    def __init__(
        self,
        env: Engine,
        n_compute_nodes: int,
        n_staging_nodes: int = 0,
        spec: Optional[MachineSpec] = None,
        *,
        fs_interference: bool = True,
        topology=None,
    ):
        if n_compute_nodes < 1:
            raise ValueError("need at least one compute node")
        if n_staging_nodes < 0:
            raise ValueError("staging node count must be non-negative")
        self.env = env
        self.spec = spec or JAGUAR_XT5
        total = n_compute_nodes + n_staging_nodes
        if total > self.spec.max_nodes:
            raise ValueError(
                f"{total} nodes requested but {self.spec.name} has only "
                f"{self.spec.max_nodes}"
            )
        self.n_compute_nodes = n_compute_nodes
        self.n_staging_nodes = n_staging_nodes
        if topology is None:
            self.topology = TorusTopology(total)
        elif callable(topology):
            self.topology = topology(total)
        else:
            self.topology = topology
        if self.topology.n < total:
            raise ValueError(
                f"topology holds {self.topology.n} nodes but the "
                f"allocation needs {total}"
            )
        self.network = Network(env, self.topology, self.spec.network)
        self.filesystem = ParallelFileSystem(
            env, self.spec.filesystem, interference=fs_interference
        )
        self._nodes: dict[int, Node] = {}

    # -- partitions ---------------------------------------------------------
    @property
    def compute_node_ids(self) -> range:
        return range(0, self.n_compute_nodes)

    @property
    def staging_node_ids(self) -> range:
        return range(
            self.n_compute_nodes, self.n_compute_nodes + self.n_staging_nodes
        )

    def node(self, node_id: int) -> Node:
        """Lazily materialised :class:`Node` for *node_id*."""
        entry = self._nodes.get(node_id)
        if entry is None:
            total = self.n_compute_nodes + self.n_staging_nodes
            if not 0 <= node_id < total:
                raise IndexError(f"node {node_id} outside allocation of {total}")
            role = "staging" if node_id >= self.n_compute_nodes else "compute"
            entry = Node(self.env, node_id, self.spec.node, role)
            self._nodes[node_id] = entry
        return entry

    # -- convenience ----------------------------------------------------------
    @property
    def compute_cores(self) -> int:
        return self.n_compute_nodes * self.spec.node.cores

    @property
    def staging_cores(self) -> int:
        return self.n_staging_nodes * self.spec.node.cores

    def staging_ratio(self) -> float:
        """Compute-to-staging core ratio (paper uses 64:1 and 128:1)."""
        if self.staging_cores == 0:
            return float("inf")
        return self.compute_cores / self.staging_cores

    def __repr__(self) -> str:
        return (
            f"Machine(spec={self.spec.name}, compute={self.n_compute_nodes}, "
            f"staging={self.n_staging_nodes})"
        )
