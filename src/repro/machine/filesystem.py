"""Lustre-like parallel file system model.

The file system is shared machine-wide: an aggregate-bandwidth fluid
pipe (all concurrent I/O shares it), a per-client streaming cap, object
(OST) striping that limits how much parallelism a single file can
exploit, a metadata-operation latency, and an *interference* model that
degrades available bandwidth stochastically — the paper leans on this
(§V.B.1: writing 8 MB histogram files took 0.25 s–7 s depending on
file-system state; the Staging configuration insulates the simulation
from exactly this variability).

Read performance depends on layout: :meth:`ParallelFileSystem.read`
takes the number of *extents* being gathered.  A file written by 4096
processes without reorganisation stores each global array in thousands
of scattered chunks, so a reader pays a per-extent seek/dispatch cost —
this is the mechanism behind Fig. 11's 10x merged-vs-unmerged contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.sim.resources import SharedBandwidth

__all__ = ["FileSystemConfig", "ParallelFileSystem"]


@dataclass(frozen=True)
class FileSystemConfig:
    """Parallel file system parameters (defaults ~ Jaguar's Lustre)."""

    aggregate_bandwidth: float = 40e9  # bytes/s across all OSTs
    client_bandwidth: float = 1.2e9  # bytes/s cap per client stream
    n_osts: int = 672  # object storage targets
    stripe_count: int = 4  # default OSTs per file
    metadata_latency: float = 0.012  # seconds per open/close/create
    extent_overhead: float = 0.0008  # seconds per discontiguous extent read
    #: effective single-client bandwidth for small-file writes (no
    #: striping benefit; metadata/RPC-latency bound).  The paper's 8 MB
    #: histogram files took 0.25-7 s — i.e. ~1-32 MB/s effective.
    small_write_bandwidth: float = 3.2e7
    small_write_threshold: float = 64e6  # bytes; below this is 'small'
    interference_mean: float = 0.18  # mean fraction of bw lost to other jobs
    interference_sigma: float = 0.35  # lognormal sigma of the disturbance
    seed: int = 20100419  # IPDPS 2010 week; fixed for determinism

    def __post_init__(self) -> None:
        if self.aggregate_bandwidth <= 0 or self.client_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.n_osts < 1 or self.stripe_count < 1:
            raise ValueError("n_osts and stripe_count must be >= 1")
        if not 0 <= self.interference_mean < 1:
            raise ValueError("interference_mean must be in [0, 1)")


class ParallelFileSystem:
    """Shared parallel file system on the simulation engine.

    Parameters
    ----------
    env: simulation engine.
    config: file system parameters.
    interference:
        When True (default) available bandwidth fluctuates over time via
        a seeded lognormal multiplier, re-sampled every ``interval``
        simulated seconds, reproducing shared-machine variability.
    """

    def __init__(
        self,
        env: Engine,
        config: Optional[FileSystemConfig] = None,
        *,
        interference: bool = True,
        interference_interval: float = 5.0,
    ):
        self.env = env
        self.config = config or FileSystemConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._interference = interference
        self._interval = interference_interval
        self._cached_mult = 1.0
        self._cached_slot = -1
        #: fault-injection hook: [(start, end, floor), ...] stall windows
        self._stall_windows: list[tuple[float, float, float]] = []
        self.pipe = SharedBandwidth(
            env, self.config.aggregate_bandwidth, degradation=self._degradation
        )
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self.metadata_ops = 0

    # -- fault hooks ---------------------------------------------------------
    def stall_window(self, start: float, end: float, floor: float = 0.05) -> None:
        """Clamp bandwidth to ``floor`` of peak during [start, end).

        Deterministic fault-injection hook modelling an OST hiccup /
        metadata-server stall; composes with (and dominates) the normal
        interference model while active.
        """
        if not 0.0 < floor <= 1.0:
            raise ValueError("stall floor must be in (0, 1]")
        if end <= start:
            raise ValueError("stall window must have end > start")
        self._stall_windows.append((start, end, floor))

    def _stall_mult(self, now: float) -> float:
        mult = 1.0
        for start, end, floor in self._stall_windows:
            if start <= now < end:
                mult = min(mult, floor)
        return mult

    # -- interference --------------------------------------------------------
    def _interference_mult(self, now: float) -> float:
        """Piecewise-constant seeded bandwidth multiplier in (0, 1]."""
        slot = int(now / self._interval)
        if slot != self._cached_slot:
            self._cached_slot = slot
            # A lognormal 'load' from other jobs eats a fraction of capacity.
            rng = np.random.default_rng(self.config.seed + slot)
            load = rng.lognormal(
                mean=np.log(max(self.config.interference_mean, 1e-9)),
                sigma=self.config.interference_sigma,
            )
            self._cached_mult = float(np.clip(1.0 - load, 0.05, 1.0))
        return self._cached_mult

    def _degradation(self, now: float) -> float:
        """Combined multiplier: background interference x stall windows."""
        mult = self._interference_mult(now) if self._interference else 1.0
        if self._stall_windows:
            mult = min(mult, self._stall_mult(now))
        return mult

    # -- helpers ---------------------------------------------------------------
    def _stream_rate_cap(self, nclients: int, stripes: int) -> float:
        """Effective cap for one client stream given striping."""
        per_stripe = self.config.aggregate_bandwidth / self.config.n_osts
        return min(self.config.client_bandwidth, per_stripe * stripes)

    # -- operations --------------------------------------------------------------
    def write(
        self,
        nbytes: float,
        *,
        nclients: int = 1,
        stripes: Optional[int] = None,
        metadata_ops: int = 1,
        label: Optional[str] = None,
    ) -> Generator:
        """Process body: write *nbytes* spread over *nclients* streams.

        Returns elapsed seconds.  Aggregate-pipe sharing plus the
        per-client cap model both the many-writers regime (aggregate
        bound) and the few-writers regime (client bound).  ``label``
        names the traffic class in traces (e.g. flow-control spill I/O
        competing with ordinary output on the same OSTs).
        """
        if nbytes < 0:
            raise ValueError("write size must be non-negative")
        start = self.env.now
        stripes = stripes or self.config.stripe_count
        yield self.env.timeout(self.config.metadata_latency * metadata_ops)
        self.metadata_ops += metadata_ops
        if nbytes > 0:
            cap = self._stream_rate_cap(nclients, stripes) * nclients
            if nbytes / max(nclients, 1) < self.config.small_write_threshold:
                # small writes never reach streaming rates
                per_client = min(
                    self.config.small_write_bandwidth * self._degradation(self.env.now),
                    cap / max(nclients, 1),
                )
                cap = per_client * nclients
            cap_time = nbytes / cap
            done = self.pipe.transfer(nbytes)
            # The slower of 'share of aggregate pipe' and 'client caps'.
            cap_ev = self.env.timeout(cap_time)
            yield self.env.all_of([done, cap_ev])
            self.bytes_written += nbytes
        obs = self.env.obs
        if obs is not None:
            obs.span(
                "fs_write", "io", start, tid=label or "filesystem",
                nbytes=nbytes, nclients=nclients,
            )
            obs.metrics.inc("fs_bytes_written", nbytes)
        return self.env.now - start

    def read(
        self,
        nbytes: float,
        *,
        nclients: int = 1,
        extents: int = 1,
        stripes: Optional[int] = None,
        metadata_ops: int = 1,
        label: Optional[str] = None,
    ) -> Generator:
        """Process body: read *nbytes* in *extents* discontiguous pieces.

        The per-extent overhead is what reorganised (merged) layouts
        avoid: reading one global array from an unmerged 4096-writer BP
        file costs thousands of extents; from a merged file, a handful.
        Returns elapsed seconds.
        """
        if nbytes < 0:
            raise ValueError("read size must be non-negative")
        if extents < 1:
            raise ValueError("extents must be >= 1")
        start = self.env.now
        stripes = stripes or self.config.stripe_count
        yield self.env.timeout(self.config.metadata_latency * metadata_ops)
        self.metadata_ops += metadata_ops
        # Seek/dispatch cost for gathering scattered extents, shared
        # across reading clients.
        seek_time = self.config.extent_overhead * extents / max(nclients, 1)
        if seek_time > 0:
            yield self.env.timeout(seek_time)
        if nbytes > 0:
            cap = self._stream_rate_cap(nclients, stripes) * nclients
            done = self.pipe.transfer(nbytes)
            cap_ev = self.env.timeout(nbytes / cap)
            yield self.env.all_of([done, cap_ev])
            self.bytes_read += nbytes
        obs = self.env.obs
        if obs is not None:
            obs.span(
                "fs_read", "io", start, tid=label or "filesystem",
                nbytes=nbytes, nclients=nclients, extents=extents,
            )
            obs.metrics.inc("fs_bytes_read", nbytes)
        return self.env.now - start
