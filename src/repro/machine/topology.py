"""3-D torus topology in the style of the Cray SeaStar interconnect.

Nodes are identified by integer ids ``0 .. n-1`` laid out in row-major
order over a ``(X, Y, Z)`` torus.  The class provides coordinate
mapping, minimal hop counts (dimension-ordered routing), neighbour
queries and a bisection-width estimate; a ``networkx`` graph view is
available for analysis and visualisation.

:class:`RegionalTopology` layers named *regions* over the torus —
contiguous id blocks standing for machine rows, cabinets or sites —
with a per-region-pair :class:`LatencyClass` charged on every
cross-region transfer.  The adversarial scenario library uses it to
model slow regions and regional partitions/flaps (THREATS.md);
:class:`~repro.machine.network.Network` consults it for latency and
keeps per-region-pair byte accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Mapping, Optional, Sequence

import networkx as nx

__all__ = ["LatencyClass", "RegionalTopology", "TorusTopology"]


def _balanced_dims(n: int) -> tuple[int, int, int]:
    """Pick a near-cubic (X, Y, Z) factorisation with X*Y*Z >= n."""
    best: Optional[tuple[int, int, int]] = None
    side = max(1, round(n ** (1.0 / 3.0)))
    for x in range(max(1, side - 2), side + 3):
        for y in range(max(1, side - 2), side + 3):
            z = math.ceil(n / (x * y))
            if x * y * z >= n:
                cand = tuple(sorted((x, y, z), reverse=True))
                if best is None or (
                    cand[0] * cand[1] * cand[2],
                    cand[0] - cand[2],
                ) < (best[0] * best[1] * best[2], best[0] - best[2]):
                    best = cand  # type: ignore[assignment]
    assert best is not None
    return best  # type: ignore[return-value]


class TorusTopology:
    """A 3-D torus with ``n`` active nodes.

    Parameters
    ----------
    n:
        Number of active nodes.  The torus dimensions are chosen as a
        near-cubic factorisation covering ``n``; ids ``>= n`` are holes
        (unpopulated slots), mirroring partial allocations on a real
        machine.
    dims:
        Optional explicit ``(X, Y, Z)`` dimensions; must cover ``n``.
    """

    def __init__(self, n: int, dims: Optional[tuple[int, int, int]] = None):
        if n < 1:
            raise ValueError("topology needs at least one node")
        self.n = n
        if dims is None:
            dims = _balanced_dims(n)
        x, y, z = dims
        if x * y * z < n:
            raise ValueError(f"dims {dims} cannot hold {n} nodes")
        self.dims = (int(x), int(y), int(z))

    # -- coordinates ----------------------------------------------------
    def coords(self, node: int) -> tuple[int, int, int]:
        """Torus coordinates of *node* (row-major layout)."""
        if not 0 <= node < self.n:
            raise IndexError(f"node {node} outside [0, {self.n})")
        x_dim, y_dim, _ = self.dims
        x = node % x_dim
        y = (node // x_dim) % y_dim
        z = node // (x_dim * y_dim)
        return (x, y, z)

    def node_at(self, coords: tuple[int, int, int]) -> int:
        """Inverse of :meth:`coords` (may point at a hole slot)."""
        x, y, z = coords
        x_dim, y_dim, z_dim = self.dims
        if not (0 <= x < x_dim and 0 <= y < y_dim and 0 <= z < z_dim):
            raise IndexError(f"coords {coords} outside torus {self.dims}")
        return x + y * x_dim + z * x_dim * y_dim

    # -- distances ------------------------------------------------------
    def hops(self, a: int, b: int) -> int:
        """Minimal hop count between nodes *a* and *b* on the torus."""
        if a == b:
            return 0
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for da, db, dim in zip(ca, cb, self.dims):
            delta = abs(da - db)
            total += min(delta, dim - delta)
        return total

    @property
    def diameter(self) -> int:
        """Maximum minimal hop count across the torus."""
        return sum(d // 2 for d in self.dims)

    def average_hops(self) -> float:
        """Mean pairwise hop distance (closed form per dimension)."""
        # For a ring of size d, average distance over ordered pairs is
        # approximately d/4; exact value below.
        acc = 0.0
        for d in self.dims:
            if d == 1:
                continue
            dists = [min(k, d - k) for k in range(d)]
            acc += sum(dists) / d
        return acc

    def neighbors(self, node: int) -> Iterator[int]:
        """Active torus neighbours of *node* (up to 6)."""
        c = self.coords(node)
        for axis in range(3):
            for step in (-1, 1):
                nc = list(c)
                nc[axis] = (nc[axis] + step) % self.dims[axis]
                other = self.node_at(tuple(nc))
                if other != node and other < self.n:
                    yield other

    def bisection_links(self) -> int:
        """Number of links crossing the worst-case bisection plane.

        For a torus, cutting the largest dimension in half severs
        ``2 * (product of other dims)`` links (wrap-around doubles it).
        """
        x, y, z = sorted(self.dims, reverse=True)
        if x == 1:
            return 1
        return 2 * y * z

    @lru_cache(maxsize=1)
    def graph(self) -> nx.Graph:
        """``networkx`` view of the active part of the torus."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for node in range(self.n):
            for other in self.neighbors(node):
                g.add_edge(node, other)
        return g

    def __repr__(self) -> str:
        return f"TorusTopology(n={self.n}, dims={self.dims})"


@dataclass(frozen=True)
class LatencyClass:
    """One cross-region link quality: extra one-way latency in seconds.

    ``extra_latency`` is added on top of the torus routing latency for
    every transfer whose endpoints fall in a region pair mapped to this
    class.  The default ``local`` class (0 s) keeps a regional topology
    byte-identical to the plain torus until a scenario says otherwise.
    """

    name: str
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_latency < 0:
            raise ValueError("extra_latency must be non-negative")


#: the implicit zero-cost class every unmapped region pair falls into
LOCAL_CLASS = LatencyClass("local", 0.0)


class RegionalTopology(TorusTopology):
    """A torus whose nodes are carved into named, contiguous regions.

    Parameters
    ----------
    n:
        Number of active nodes (as for :class:`TorusTopology`).
    regions:
        Ordered region names.  Nodes are striped into contiguous,
        near-equal id blocks in this order (node ``i`` belongs to
        region ``floor(i * len(regions) / n)``), mirroring row/cabinet
        allocation on a real machine.  Pass ``assign`` for an explicit
        layout instead.
    dims:
        Optional explicit torus dimensions.
    classes:
        Extra :class:`LatencyClass` instances by name (``local`` is
        always available).
    pair_classes:
        Mapping of region pairs — ``frozenset({a, b})`` or 2-tuples —
        to a latency-class name.  Unmapped pairs (including every
        intra-region pair) use ``local``.
    assign:
        Optional explicit node -> region-name sequence of length *n*,
        overriding the contiguous striping.
    """

    def __init__(
        self,
        n: int,
        regions: Sequence[str],
        dims: Optional[tuple[int, int, int]] = None,
        *,
        classes: Optional[Mapping[str, LatencyClass]] = None,
        pair_classes: Optional[Mapping[object, str]] = None,
        assign: Optional[Sequence[str]] = None,
    ):
        super().__init__(n, dims)
        names = tuple(regions)
        if not names:
            raise ValueError("need at least one region")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {names}")
        self.regions = names
        self.classes: dict[str, LatencyClass] = {LOCAL_CLASS.name: LOCAL_CLASS}
        for cname, cls in (classes or {}).items():
            if cname != cls.name:
                raise ValueError(f"class key {cname!r} != class name {cls.name!r}")
            self.classes[cname] = cls
        if assign is not None:
            if len(assign) != n:
                raise ValueError(f"assign covers {len(assign)} nodes, need {n}")
            bad = sorted(set(assign) - set(names))
            if bad:
                raise ValueError(f"assign uses unknown regions {bad}")
            self._region_of = list(assign)
        else:
            k = len(names)
            self._region_of = [names[min(i * k // n, k - 1)] for i in range(n)]
        self._pair_class: dict[frozenset, str] = {}
        for pair, cname in (pair_classes or {}).items():
            key = frozenset(pair)
            if not key <= set(names):
                raise ValueError(f"pair {set(pair)} names unknown regions")
            if cname not in self.classes:
                raise ValueError(f"unknown latency class {cname!r}")
            self._pair_class[key] = cname

    # -- region structure ------------------------------------------------
    def region_of(self, node: int) -> str:
        """Region name of *node*."""
        if not 0 <= node < self.n:
            raise IndexError(f"node {node} outside [0, {self.n})")
        return self._region_of[node]

    def region_nodes(self, region: str) -> list[int]:
        """All node ids of *region* (ascending)."""
        if region not in self.regions:
            raise KeyError(f"unknown region {region!r} (have {self.regions})")
        return [i for i in range(self.n) if self._region_of[i] == region]

    # -- latency classes -------------------------------------------------
    def latency_class(self, region_a: str, region_b: str) -> LatencyClass:
        """The :class:`LatencyClass` governing a region pair."""
        for r in (region_a, region_b):
            if r not in self.regions:
                raise KeyError(f"unknown region {r!r} (have {self.regions})")
        if region_a == region_b:
            return self.classes[LOCAL_CLASS.name]
        cname = self._pair_class.get(frozenset((region_a, region_b)))
        return self.classes[cname] if cname is not None else self.classes["local"]

    def pair_latency(self, a: int, b: int) -> float:
        """Static extra latency between nodes *a* and *b* (0 intra-region)."""
        return self.latency_class(self.region_of(a), self.region_of(b)).extra_latency

    def __repr__(self) -> str:
        return (
            f"RegionalTopology(n={self.n}, dims={self.dims}, "
            f"regions={self.regions})"
        )
