"""3-D torus topology in the style of the Cray SeaStar interconnect.

Nodes are identified by integer ids ``0 .. n-1`` laid out in row-major
order over a ``(X, Y, Z)`` torus.  The class provides coordinate
mapping, minimal hop counts (dimension-ordered routing), neighbour
queries and a bisection-width estimate; a ``networkx`` graph view is
available for analysis and visualisation.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterator, Optional

import networkx as nx

__all__ = ["TorusTopology"]


def _balanced_dims(n: int) -> tuple[int, int, int]:
    """Pick a near-cubic (X, Y, Z) factorisation with X*Y*Z >= n."""
    best: Optional[tuple[int, int, int]] = None
    side = max(1, round(n ** (1.0 / 3.0)))
    for x in range(max(1, side - 2), side + 3):
        for y in range(max(1, side - 2), side + 3):
            z = math.ceil(n / (x * y))
            if x * y * z >= n:
                cand = tuple(sorted((x, y, z), reverse=True))
                if best is None or (
                    cand[0] * cand[1] * cand[2],
                    cand[0] - cand[2],
                ) < (best[0] * best[1] * best[2], best[0] - best[2]):
                    best = cand  # type: ignore[assignment]
    assert best is not None
    return best  # type: ignore[return-value]


class TorusTopology:
    """A 3-D torus with ``n`` active nodes.

    Parameters
    ----------
    n:
        Number of active nodes.  The torus dimensions are chosen as a
        near-cubic factorisation covering ``n``; ids ``>= n`` are holes
        (unpopulated slots), mirroring partial allocations on a real
        machine.
    dims:
        Optional explicit ``(X, Y, Z)`` dimensions; must cover ``n``.
    """

    def __init__(self, n: int, dims: Optional[tuple[int, int, int]] = None):
        if n < 1:
            raise ValueError("topology needs at least one node")
        self.n = n
        if dims is None:
            dims = _balanced_dims(n)
        x, y, z = dims
        if x * y * z < n:
            raise ValueError(f"dims {dims} cannot hold {n} nodes")
        self.dims = (int(x), int(y), int(z))

    # -- coordinates ----------------------------------------------------
    def coords(self, node: int) -> tuple[int, int, int]:
        """Torus coordinates of *node* (row-major layout)."""
        if not 0 <= node < self.n:
            raise IndexError(f"node {node} outside [0, {self.n})")
        x_dim, y_dim, _ = self.dims
        x = node % x_dim
        y = (node // x_dim) % y_dim
        z = node // (x_dim * y_dim)
        return (x, y, z)

    def node_at(self, coords: tuple[int, int, int]) -> int:
        """Inverse of :meth:`coords` (may point at a hole slot)."""
        x, y, z = coords
        x_dim, y_dim, z_dim = self.dims
        if not (0 <= x < x_dim and 0 <= y < y_dim and 0 <= z < z_dim):
            raise IndexError(f"coords {coords} outside torus {self.dims}")
        return x + y * x_dim + z * x_dim * y_dim

    # -- distances ------------------------------------------------------
    def hops(self, a: int, b: int) -> int:
        """Minimal hop count between nodes *a* and *b* on the torus."""
        if a == b:
            return 0
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for da, db, dim in zip(ca, cb, self.dims):
            delta = abs(da - db)
            total += min(delta, dim - delta)
        return total

    @property
    def diameter(self) -> int:
        """Maximum minimal hop count across the torus."""
        return sum(d // 2 for d in self.dims)

    def average_hops(self) -> float:
        """Mean pairwise hop distance (closed form per dimension)."""
        # For a ring of size d, average distance over ordered pairs is
        # approximately d/4; exact value below.
        acc = 0.0
        for d in self.dims:
            if d == 1:
                continue
            dists = [min(k, d - k) for k in range(d)]
            acc += sum(dists) / d
        return acc

    def neighbors(self, node: int) -> Iterator[int]:
        """Active torus neighbours of *node* (up to 6)."""
        c = self.coords(node)
        for axis in range(3):
            for step in (-1, 1):
                nc = list(c)
                nc[axis] = (nc[axis] + step) % self.dims[axis]
                other = self.node_at(tuple(nc))
                if other != node and other < self.n:
                    yield other

    def bisection_links(self) -> int:
        """Number of links crossing the worst-case bisection plane.

        For a torus, cutting the largest dimension in half severs
        ``2 * (product of other dims)`` links (wrap-around doubles it).
        """
        x, y, z = sorted(self.dims, reverse=True)
        if x == 1:
            return 1
        return 2 * y * z

    @lru_cache(maxsize=1)
    def graph(self) -> nx.Graph:
        """``networkx`` view of the active part of the torus."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for node in range(self.n):
            for other in self.neighbors(node):
                g.add_edge(node, other)
        return g

    def __repr__(self) -> str:
        return f"TorusTopology(n={self.n}, dims={self.dims})"
