"""Fluid-flow interconnect model with collective cost models.

Every node owns a full-duplex NIC: a TX pipe and an RX pipe, each a
:class:`~repro.sim.resources.SharedBandwidth`.  A point-to-point
transfer of ``n`` bytes from ``a`` to ``b``:

1. waits the routing latency ``alpha + hop_latency * hops(a, b)``;
2. streams ``n`` bytes through ``a``'s TX pipe, ``b``'s RX pipe and the
   global bisection backbone simultaneously, completing when the
   slowest of the three finishes.

Because the pipes are processor-sharing, concurrent traffic (e.g.
asynchronous staging fetches overlapping the simulation's collectives —
the central interference effect of §V.B.2) naturally slows transfers
down without any special-casing.

Collective operations are costed with standard alpha-beta (Hockney)
models; to make them *contention-aware*, the byte volume each rank
contributes is pushed through that rank's NIC pipes, so background
staging traffic stretches collective time exactly as the paper
describes (≤6 % main-loop slowdown when movement is well scheduled).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from math import ceil, log2
from typing import Generator, Optional

from repro.sim.engine import Engine, Event
from repro.sim.resources import SharedBandwidth
from repro.machine.topology import TorusTopology

__all__ = ["NetworkConfig", "Network", "NIC", "registry_mark", "live_networks"]

#: weak refs to every Network ever constructed, in creation order.  The
#: benchmark harness brackets an experiment with :func:`registry_mark` /
#: :func:`live_networks` to attribute simulated time and bytes moved to
#: the engines that experiment built internally.  Weak references keep
#: this from pinning finished simulations in memory.
_LIVE: list = []


def registry_mark() -> int:
    """Opaque cursor into the network registry (pass to live_networks)."""
    return len(_LIVE)


def live_networks(mark: int = 0) -> list:
    """Networks created since *mark* that are still alive."""
    return [net for ref in _LIVE[mark:] if (net := ref()) is not None]


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect parameters.

    Defaults approximate the SeaStar 2+ network of the Jaguar XT5
    partition (§V.A): ~6.4 GB/s peak injection per node, ~5 us
    zero-byte latency, ~50 ns per hop.
    """

    link_bandwidth: float = 6.4e9  # bytes/s per NIC direction
    latency: float = 5e-6  # seconds, zero-byte end-to-end
    hop_latency: float = 5e-8  # seconds per hop
    bisection_bandwidth_per_link: float = 4.8e9  # bytes/s per bisection link
    eager_threshold: int = 8192  # bytes; below this, latency-only path
    rdma_setup: float = 1e-5  # seconds to post/complete an RDMA descriptor

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.bisection_bandwidth_per_link <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0 or self.hop_latency < 0 or self.rdma_setup < 0:
            raise ValueError("latencies must be non-negative")


@dataclass
class NIC:
    """Full-duplex network interface of one node."""

    tx: SharedBandwidth
    rx: SharedBandwidth
    bytes_tx: float = 0.0
    bytes_rx: float = 0.0


class Network:
    """The machine interconnect.

    Parameters
    ----------
    env:
        Simulation engine.
    topology:
        Torus carrying hop distances.
    config:
        Link parameters.
    """

    def __init__(
        self,
        env: Engine,
        topology: TorusTopology,
        config: Optional[NetworkConfig] = None,
    ):
        self.env = env
        self.topology = topology
        self.config = config or NetworkConfig()
        self._nics: dict[int, NIC] = {}
        bis_rate = (
            self.config.bisection_bandwidth_per_link * topology.bisection_links()
        )
        #: aggregate cross-machine backbone; transfers traverse it weighted
        #: by how far they travel relative to the machine's average.
        self.backbone = SharedBandwidth(env, bis_rate)
        self._avg_hops = max(topology.average_hops(), 1e-9)
        #: fault-injection hook: node -> [(start, end, factor), ...]
        self._degrade_windows: dict[int, list[tuple[float, float, float]]] = {}
        # -- regional layering (RegionalTopology only) --------------------
        #: whether the topology carves nodes into named regions
        self.regional = hasattr(topology, "region_of")
        #: extra-latency windows per region pair: {pair: [(start, end, extra)]}
        self._region_windows: dict[frozenset, list[tuple[float, float, float]]] = {}
        #: bytes moved between each region pair (sorted-name key)
        self.region_bytes: dict[tuple[str, str], float] = {}
        _LIVE.append(weakref.ref(self))

    # -- fault hooks -------------------------------------------------------
    def degrade_link(
        self, node: int, start: float, end: float, factor: float
    ) -> None:
        """Multiply *node*'s NIC capacity by *factor* during [start, end).

        Deterministic fault-injection hook: a flaky link or congested
        router port.  Windows compose multiplicatively when they overlap.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        if end <= start:
            raise ValueError("degradation window must have end > start")
        self._degrade_windows.setdefault(node, []).append((start, end, factor))

    def _link_mult(self, node: int, now: float) -> float:
        windows = self._degrade_windows.get(node)
        if not windows:
            return 1.0
        mult = 1.0
        for start, end, factor in windows:
            if start <= now < end:
                mult *= factor
        return mult

    # -- regional latency --------------------------------------------------
    def region_extra_window(
        self, region_a: str, region_b: str, start: float, end: float, extra: float
    ) -> None:
        """Add *extra* seconds to cross-``(region_a, region_b)`` transfers
        posted during ``[start, end)``.

        The regional fault primitive: a slow inter-site link (small
        ``extra``) or a partition/flap (``extra`` well past the fetch
        timeout, so pulls posted into the window are abandoned and
        retried after it heals).  Windows stack additively when they
        overlap; both directions are affected symmetrically.
        """
        if not self.regional:
            raise ValueError("network topology has no regions")
        # validate the names through the topology
        self.topology.latency_class(region_a, region_b)
        if region_a == region_b:
            raise ValueError("region window needs two distinct regions")
        if end <= start:
            raise ValueError("region window must have end > start")
        if extra < 0:
            raise ValueError("extra latency must be non-negative")
        key = frozenset((region_a, region_b))
        self._region_windows.setdefault(key, []).append((start, end, extra))

    def _regional_extra(self, src: int, dst: int, now: float) -> float:
        """Static pair latency + any active window extras for src->dst."""
        topo = self.topology
        ra, rb = topo.region_of(src), topo.region_of(dst)
        if ra == rb:
            return 0.0
        extra = topo.latency_class(ra, rb).extra_latency
        windows = self._region_windows.get(frozenset((ra, rb)))
        if windows:
            for start, end, window_extra in windows:
                if start <= now < end:
                    extra += window_extra
        return extra

    def _account_region_bytes(self, src: int, dst: int, nbytes: float) -> None:
        topo = self.topology
        key = tuple(sorted((topo.region_of(src), topo.region_of(dst))))
        self.region_bytes[key] = self.region_bytes.get(key, 0.0) + nbytes

    # -- NIC management ---------------------------------------------------
    def nic(self, node: int) -> NIC:
        """Lazily-created NIC of *node*."""
        entry = self._nics.get(node)
        if entry is None:
            def mult(now: float, _n: int = node) -> float:
                return self._link_mult(_n, now)

            entry = NIC(
                tx=SharedBandwidth(
                    self.env, self.config.link_bandwidth, degradation=mult
                ),
                rx=SharedBandwidth(
                    self.env, self.config.link_bandwidth, degradation=mult
                ),
            )
            self._nics[node] = entry
        return entry

    # -- point-to-point ----------------------------------------------------
    def transfer(
        self, src: int, dst: int, nbytes: float, *, rdma: bool = False
    ) -> Generator:
        """Process body: move *nbytes* from node *src* to node *dst*.

        Yields until the transfer completes; returns elapsed time.
        ``rdma=True`` adds the one-sided descriptor setup cost (used by
        the staging area's server-directed fetches).
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        start = self.env.now
        cfg = self.config
        latency = cfg.latency + cfg.hop_latency * self.topology.hops(src, dst)
        if rdma:
            latency += cfg.rdma_setup
        if self.regional:
            # cross-region latency class + any partition/flap windows
            # active right now (0.0 intra-region, so a regional topology
            # with all-local classes stays byte-identical to the torus)
            latency += self._regional_extra(src, dst, self.env.now)
        yield self.env.timeout(latency)
        if nbytes > 0 and src != dst:
            snic, dnic = self.nic(src), self.nic(dst)
            hops = max(self.topology.hops(src, dst), 1)
            backbone_weight = hops / self._avg_hops
            done = self.env.all_of(
                [
                    snic.tx.transfer(nbytes),
                    dnic.rx.transfer(nbytes),
                    self.backbone.transfer(nbytes, weight=backbone_weight),
                ]
            )
            yield done
            snic.bytes_tx += nbytes
            dnic.bytes_rx += nbytes
            if self.regional:
                self._account_region_bytes(src, dst, nbytes)
            obs = self.env.obs
            if obs is not None:
                obs.metrics.inc("net_bytes", nbytes)
                obs.metrics.inc("net_transfers")
                if rdma:
                    obs.metrics.inc("net_rdma_transfers")
        return self.env.now - start

    def transfer_event(
        self, src: int, dst: int, nbytes: float, *, rdma: bool = False
    ) -> Event:
        """Event variant of :meth:`transfer` (fires at completion)."""
        return self.env.process(self.transfer(src, dst, nbytes, rdma=rdma))

    # -- analytic collective models -----------------------------------------
    def collective_time(self, kind: str, nprocs: int, nbytes: float) -> float:
        """Uncontended alpha-beta estimate of a collective's duration.

        ``nbytes`` is the per-rank payload (for alltoall: per-pair).
        Models follow Thakur et al.'s MPICH algorithms.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if nprocs == 1:
            return 0.0
        cfg = self.config
        a, b = cfg.latency, 1.0 / cfg.link_bandwidth
        p = nprocs
        lg = ceil(log2(p))
        if kind == "barrier":
            return 2.0 * a * lg
        if kind == "bcast":
            # scatter + allgather (van de Geijn) for large msgs
            return (lg + p - 1) * a + 2.0 * nbytes * b * (p - 1) / p
        if kind in ("reduce", "allreduce"):
            # Rabenseifner: reduce-scatter + (all)gather
            fac = 2.0 if kind == "allreduce" else 1.5
            return 2.0 * lg * a + fac * nbytes * b * (p - 1) / p
        if kind in ("gather", "scatter"):
            return lg * a + nbytes * b * (p - 1) / p * p  # root link bound
        if kind == "allgather":
            return (p - 1) * a + nbytes * b * (p - 1)
        if kind in ("alltoall", "alltoallv"):
            # pairwise exchange (p-1 rounds, nbytes per pair), bounded
            # below by bisection congestion: half the p^2*n job volume
            # crosses the machine bisection, which a torus sustains at
            # ~25% of peak under all-to-all traffic patterns.
            pairwise = (p - 1) * (a + nbytes * b)
            bis_links = 2.0 * max(p, 2) ** (2.0 / 3.0)
            # adaptive routing sustains ~40% of peak bisection under
            # uniform all-to-all traffic on a 3-D torus
            bis_bw = 0.40 * bis_links * cfg.bisection_bandwidth_per_link
            congestion = (p * p * nbytes / 2.0) / bis_bw
            return max(pairwise, congestion)
        raise ValueError(f"unknown collective kind {kind!r}")

    def contended_collective(
        self,
        kind: str,
        ranks_nodes: list[int],
        nbytes: float,
        *,
        model_nprocs: Optional[int] = None,
    ) -> Generator:
        """Process body: run a collective among *ranks_nodes*.

        The analytic latency part is a plain timeout; the bandwidth part
        is realised by streaming each rank's wire volume through its NIC
        pipes so that concurrent staging traffic causes the slowdown the
        paper measures.  ``model_nprocs`` prices the collective for a
        larger effective job when the listed nodes are representatives.
        Returns elapsed time.
        """
        p = model_nprocs or len(ranks_nodes)
        start = self.env.now
        if p <= 1 or len(ranks_nodes) <= 1:
            return 0.0
        cfg = self.config
        base = self.collective_time(kind, p, nbytes)
        wire_time = max(base - cfg.latency * ceil(log2(p)), 0.0)
        wire_bytes = wire_time * cfg.link_bandwidth
        yield self.env.timeout(cfg.latency * ceil(log2(p)))
        if wire_bytes > 0:
            events = []
            for node in ranks_nodes:
                nic = self.nic(node)
                events.append(nic.tx.transfer(wire_bytes))
                events.append(nic.rx.transfer(wire_bytes))
            yield self.env.all_of(events)
        return self.env.now - start

    # -- accounting --------------------------------------------------------
    def total_bytes(self) -> float:
        """Total bytes ejected into all NIC RX pipes so far."""
        return sum(n.bytes_rx for n in self._nics.values())
