"""PreDatA — Preparatory Data Analytics on Peta-Scale Machines.

A complete Python reproduction of Zheng et al., IPDPS 2010: the
PreDatA in-transit data-preparation middleware and every substrate it
stands on — a discrete-event machine model (Cray XT-class nodes,
torus interconnect, Lustre-like parallel file system), a simulated MPI
layer with a real numpy data plane, ADIOS-style groups and BP files,
FFS-style self-describing encoding, an EVPath-style event substrate,
the DataSpaces shared-space service, GTC and Pixie3D application
skeletons, and the experiment harness that regenerates every figure of
the paper's evaluation.

Start with :mod:`repro.core` (the middleware), `examples/quickstart.py`
for usage, and ``python -m repro.experiments.run_all`` to reproduce the
paper.  DESIGN.md documents the architecture; EXPERIMENTS.md records
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "adios",
    "apps",
    "core",
    "dataspaces",
    "evpath",
    "experiments",
    "faults",
    "ffs",
    "flow",
    "machine",
    "mpi",
    "obs",
    "operators",
    "perf",
    "query",
    "sim",
]
