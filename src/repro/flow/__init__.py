"""Flow control for the staging pipeline (credits, pools, pressure).

``repro.flow`` turns hard staging-memory overflows into governed
backpressure.  Three cooperating mechanisms:

1. :class:`~repro.flow.pool.BufferPool` — one per staging node.  The
   hard bound: every fetched chunk holds pool bytes from fetch until
   Map frees it; acquires block FIFO in simulated time; crossing the
   high watermark spills cold chunks to the file system (re-fetched on
   demand).
2. :class:`~repro.flow.credits.CreditBank` — one per staging rank.
   Admission control: a compute-side write must obtain byte credits
   from its routed staging rank before sending its fetch request; an
   optional CoDel-style sojourn target degrades over-waiting writes to
   the synchronous fallback path instead of queueing unboundedly.
3. :class:`~repro.flow.pressure.PressureController` — feeds the
   :class:`~repro.core.scheduler.MovementScheduler` so fetches into a
   near-full pool are throttled (rate-shaped), not just deferred.

The whole subsystem is off by default (``PreDatA(flow=None)``) and the
disabled path is byte-identical to pre-flow behaviour.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional

from repro.flow.config import FlowConfig
from repro.flow.credits import CreditBank
from repro.flow.pool import BufferPool, ChunkTicket
from repro.flow.pressure import PressureController
from repro.machine.machine import Machine
from repro.sim.engine import Engine

__all__ = [
    "FlowConfig",
    "FlowControl",
    "BufferPool",
    "ChunkTicket",
    "CreditBank",
    "PressureController",
]


class FlowControl:
    """Facade wiring pools, credit banks and the pressure controller.

    Parameters
    ----------
    env: simulation engine.
    machine: the machine model (pools charge its staging nodes; spill
        I/O goes through its file system).
    config: :class:`FlowConfig` knobs.
    staging_rank_nodes: node id hosting each staging rank (index =
        staging rank), exactly as built by
        :class:`~repro.core.middleware.PreDatA`.
    fetch_rate_cap: the client's RDMA pacing rate, used as the default
        reference rate for pressure throttling.
    """

    def __init__(
        self,
        env: Engine,
        machine: Machine,
        config: FlowConfig,
        *,
        staging_rank_nodes: list[int],
        fetch_rate_cap: Optional[float] = None,
    ):
        self.env = env
        self.machine = machine
        self.config = config
        self.staging_rank_nodes = list(staging_rank_nodes)
        #: node id -> BufferPool
        self.pools: dict[int, BufferPool] = {}
        for node_id in dict.fromkeys(self.staging_rank_nodes):
            self.pools[node_id] = self._make_pool(node_id)
        ranks_per_node = Counter(self.staging_rank_nodes)
        #: staging rank -> CreditBank
        self.banks: dict[int, CreditBank] = {}
        for rank, node_id in enumerate(self.staging_rank_nodes):
            pool = self.pools[node_id]
            capacity = (
                config.credit_bytes
                if config.credit_bytes is not None
                else pool.capacity / ranks_per_node[node_id]
            )
            self.banks[rank] = self._make_bank(rank, capacity)
        throttle_rate = (
            config.throttle_rate
            or fetch_rate_cap
            or machine.spec.node.memory_bandwidth
        )
        self.pressure = PressureController(env, self.pools, config, throttle_rate)
        #: chunk key -> rank of the bank holding its grant
        self._grant_owner: dict = {}

    # -- construction hooks (the jobs layer substitutes tenant-carved
    # pools/banks by overriding these; see ``repro.jobs.share``) -------------
    def _make_pool(self, node_id: int) -> BufferPool:
        return BufferPool(
            self.env, self.machine.node(node_id), self.machine.filesystem, self.config
        )

    def _make_bank(self, rank: int, capacity: float) -> CreditBank:
        return CreditBank(self.env, rank, capacity, self.config)

    # -- lookup -------------------------------------------------------------
    def pool_for(self, node_id: int) -> Optional[BufferPool]:
        """Buffer pool of staging node *node_id* (None for non-staging)."""
        return self.pools.get(node_id)

    def bank_for(self, rank: int) -> CreditBank:
        """Credit bank of staging rank *rank*."""
        return self.banks[rank]

    # -- credit lifecycle ---------------------------------------------------
    def request_credits(
        self, rank: int, key, nbytes: float, *, can_degrade: bool = False
    ):
        """Process body: obtain credits from *rank*; returns granted?"""
        granted = yield from self.banks[rank].request(
            key, nbytes, can_degrade=can_degrade
        )
        if granted:
            self._grant_owner[key] = rank
            if self.env.check is not None:
                self.env.check.on_credit_granted(key, nbytes, rank)
        return granted

    def release_credits(self, key) -> None:
        """Idempotently return the credits of chunk *key*."""
        rank = self._grant_owner.pop(key, None)
        if rank is not None:
            self.banks[rank].release(key)
            if self.env.check is not None:
                self.env.check.on_credit_released(key, rank)

    def on_stager_failed(
        self, dead_rank: int, reroute: Callable[[int], Optional[int]]
    ) -> None:
        """Move a dead rank's outstanding grants to their failover owners.

        ``reroute(compute_rank)`` names the surviving rank now serving
        that client (None when no stager survives).  Transfers
        overcommit the adopting bank deliberately: the bytes are
        already packed on the compute nodes and will be re-fetched.
        """
        bank = self.banks.get(dead_rank)
        if bank is None:
            return
        for key, nbytes in sorted(bank.revoke_all().items()):
            # keys are (compute_rank, step) or (tenant, compute_rank, step)
            compute_rank = key[-2]
            new_rank = reroute(compute_rank)
            if new_rank is None or new_rank == dead_rank:
                self._grant_owner.pop(key, None)
                if self.env.check is not None:
                    # revoke_all already returned the bytes to the bank
                    self.env.check.on_credit_released(key, dead_rank)
                continue
            self.banks[new_rank].force_grant(key, nbytes)
            self._grant_owner[key] = new_rank

    # -- aggregate stats ----------------------------------------------------
    def spill_bytes(self) -> float:
        """Total bytes spilled to the file system across all pools."""
        return sum(p.spill_bytes for p in self.pools.values())

    def unspill_bytes(self) -> float:
        """Total bytes re-fetched from spill across all pools."""
        return sum(p.unspill_bytes for p in self.pools.values())

    def mean_sojourn(self) -> float:
        """Mean credit-queue sojourn (seconds) over every grant."""
        grants = sum(b.grants for b in self.banks.values())
        total = sum(b.total_sojourn for b in self.banks.values())
        return total / grants if grants else 0.0

    def rejections(self) -> int:
        """CoDel-degraded writes across all banks."""
        return sum(b.rejections for b in self.banks.values())

    def outstanding_credit_bytes(self) -> float:
        """Bytes currently granted across all banks."""
        return sum(b.outstanding for b in self.banks.values())

    def queued_credit_bytes(self) -> float:
        """Bytes currently waiting for credits across all banks."""
        return sum(b.queued_bytes for b in self.banks.values())

    def describe_pressure(self) -> str:
        """One-line state summary (drain-timeout diagnostics)."""
        pools = ", ".join(
            f"node{nid}: {p.used:.3g}/{p.capacity:.3g} B used, "
            f"{p.queued} waiter(s), {p.spills} spill(s)"
            for nid, p in sorted(self.pools.items())
        )
        return (
            f"pools [{pools}]; credits "
            f"{self.outstanding_credit_bytes():.3g} B outstanding, "
            f"{self.queued_credit_bytes():.3g} B queued, "
            f"{self.rejections()} degraded"
        )
