"""Per-staging-node buffer pool: blocking acquire, watermarks, spill.

The :class:`BufferPool` is the hard memory bound of the flow-control
subsystem.  Every packed chunk a staging process fetches must first
acquire pool bytes; acquires queue FIFO in simulated time when the
pool is full, and releases (after Map) grant the queue head.  Crossing
the ``high_watermark`` starts a spill worker that writes *cold* chunks
(unpinned — not currently being fetched or mapped) to the parallel
file system, newest-first: consumption is FIFO, so the chunk needed
last is the youngest.  Spilled chunks are re-fetched on demand by
:meth:`BufferPool.ensure_resident`, whose re-acquire jumps the waiter
queue so the consumer side can always make progress.

Spill traffic goes through :class:`~repro.machine.filesystem
.ParallelFileSystem` and therefore shares (and suffers) the machine's
file-system bandwidth like any other I/O.

A single chunk larger than the pool is granted alone (the pool runs
transiently over capacity rather than deadlocking); a chunk larger
than the *node* memory raises :class:`~repro.machine.node.MemoryError_`
— no amount of flow control can stage it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from repro.flow.config import FlowConfig
from repro.machine.filesystem import ParallelFileSystem
from repro.machine.node import MemoryError_, Node
from repro.sim.engine import Engine, Event

__all__ = ["ChunkTicket", "BufferPool"]


class ChunkTicket:
    """One chunk's claim on pool bytes.

    ``state`` is ``"resident"`` (bytes held in node memory),
    ``"spilling"`` (being written out; bytes still held) or
    ``"spilled"`` (on the file system; no bytes held).  ``pinned``
    tickets are in active use (being fetched into or mapped) and are
    never spill victims.
    """

    __slots__ = ("key", "nbytes", "state", "pinned", "discarded")

    def __init__(self, key, nbytes: float):
        self.key = key
        self.nbytes = float(nbytes)
        self.state = "resident"
        self.pinned = True
        self.discarded = False

    def __repr__(self) -> str:
        flags = ("pinned" if self.pinned else "cold") + (
            ",discarded" if self.discarded else ""
        )
        return f"ChunkTicket({self.key}, {self.nbytes:.3g}B, {self.state}, {flags})"


class BufferPool:
    """Governed chunk memory of one staging node."""

    def __init__(
        self,
        env: Engine,
        node: Node,
        filesystem: Optional[ParallelFileSystem],
        config: FlowConfig,
        *,
        capacity: Optional[float] = None,
    ):
        self.env = env
        self.node = node
        self.filesystem = filesystem
        self.config = config
        if capacity is None:
            capacity = min(
                config.pool_bytes
                if config.pool_bytes is not None
                else node.config.memory_bytes,
                node.config.memory_bytes,
            )
        self.capacity = float(capacity)
        self.high = config.high_watermark * self.capacity
        self.low = config.low_watermark * self.capacity
        #: extra metric labels (e.g. ``tenant=...`` under the jobs layer)
        self.labels: dict = {}
        #: optional share group for work-conserving borrow across sibling
        #: pools carved from the same node memory (see ``repro.jobs``)
        self.group = None
        self._used = 0.0
        self._above_high = False
        #: FIFO byte waiters; urgent (unspill) entries enter at the front
        self._waiters: Deque[list] = deque()
        #: live tickets in insertion (fetch) order.  Keyed by ticket
        #: identity, not chunk key: a restarted step re-fetches the
        #: same chunks while an aborted ticket may still be mid-spill.
        self._tickets: dict[ChunkTicket, None] = {}
        self._spilling = False
        self._change_ev: Optional[Event] = None
        # -- always-on stats (benchmarks read these without obs) ------
        self.peak_bytes = 0.0
        self.spills = 0
        self.unspills = 0
        self.spill_bytes = 0.0
        self.unspill_bytes = 0.0
        self.wait_seconds = 0.0
        self.waits = 0

    # -- introspection ------------------------------------------------------
    @property
    def used(self) -> float:
        return self._used

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def queued_bytes(self) -> float:
        return sum(entry[1] for entry in self._waiters)

    def occupancy(self) -> float:
        """Pool occupancy fraction (may exceed 1 for oversized grants)."""
        return self._used / self.capacity if self.capacity > 0 else 0.0

    def resident_bytes(self) -> float:
        """Bytes of live tickets currently held in node memory."""
        return sum(t.nbytes for t in self._tickets if t.state != "spilled")

    # -- change broadcast ----------------------------------------------------
    def wait_change(self) -> Event:
        """Event firing at the next occupancy/state transition."""
        if self._change_ev is None or self._change_ev.triggered:
            self._change_ev = self.env.event()
        return self._change_ev

    def _changed(self) -> None:
        ev = self._change_ev
        if ev is not None and not ev.triggered:
            ev.succeed()

    # -- accounting ----------------------------------------------------------
    def _charge(self, nbytes: float) -> None:
        self._used += nbytes
        self.peak_bytes = max(self.peak_bytes, self._used)
        if self._used > self.high:
            self._above_high = True
        obs = self.env.obs
        if obs is not None:
            obs.metrics.gauge_max(
                "flow_pool_peak_bytes", self._used, node=self.node.id, **self.labels
            )

    def _refund(self, nbytes: float) -> None:
        self._used = max(0.0, self._used - nbytes)
        if self._used <= self.low:
            self._above_high = False
        self._pump()
        if self.group is not None:
            self.group.pump(exclude=self)
        self._changed()

    def _fits(self, need: float) -> bool:
        """May *need* bytes be charged right now?

        An empty pool always grants (a single oversized chunk must not
        deadlock).  A pool in a share group may additionally borrow the
        group's idle bytes — the work-conserving path of the fair-share
        layer.
        """
        if self._used + need <= self.capacity or self._used == 0.0:
            return True
        return self.group is not None and self.group.can_borrow(self, need)

    def _pump(self) -> None:
        """Grant queued byte waiters FIFO while they fit."""
        while self._waiters:
            ev, need, _t_enq = self._waiters[0]
            if not self._fits(need):
                break  # head-of-line blocking preserves FIFO fairness
            self._waiters.popleft()
            self._charge(need)
            ev.succeed()

    # -- acquire / release ---------------------------------------------------
    def _request_bytes(self, nbytes: float, *, urgent: bool) -> tuple:
        ev = self.env.event()
        entry = [ev, nbytes, self.env.now]
        if urgent:
            self._waiters.appendleft(entry)
        else:
            self._waiters.append(entry)
        self._pump()
        if not ev.triggered:
            self._maybe_spill()
            if self.group is not None:
                self.group.shed(self)
        return ev, entry

    def _cancel_request(self, ev: Event, entry: list, nbytes: float) -> None:
        try:
            self._waiters.remove(entry)
            return
        except ValueError:
            pass
        if ev.triggered:  # granted, but the waiter died before using it
            self._refund(nbytes)

    def _await_grant(self, nbytes: float, *, urgent: bool) -> Generator:
        """Process body: block until *nbytes* of pool memory is charged."""
        ev, entry = self._request_bytes(nbytes, urgent=urgent)
        t0 = self.env.now
        try:
            yield ev
        except BaseException:
            self._cancel_request(ev, entry, nbytes)
            raise
        waited = self.env.now - t0
        if waited > 0:
            self.wait_seconds += waited
            self.waits += 1
            obs = self.env.obs
            if obs is not None:
                obs.metrics.observe(
                    "flow_pool_wait_seconds", waited, node=self.node.id, **self.labels
                )
                obs.span(
                    "pool_wait", "flow", t0, tid=f"node{self.node.id}",
                    nbytes=nbytes,
                )
        # Mirror the charge in the node's own ledger (waitable API keeps
        # the hard memory_bytes invariant even with non-pool allocators).
        mem = self.node.request_memory(nbytes)
        try:
            yield mem
        except BaseException:
            self.node.cancel_memory(mem, nbytes)
            self._refund(nbytes)
            raise

    def acquire(self, key, nbytes: float) -> Generator:
        """Process body: claim *nbytes* for chunk *key*; returns a ticket.

        The returned ticket is pinned (being filled); call
        :meth:`unpin` once the chunk is parked in the staging queue.
        """
        if nbytes > self.node.config.memory_bytes:
            raise MemoryError_(
                f"node {self.node.id}: chunk of {nbytes:.3e} B can never fit "
                f"in {self.node.config.memory_bytes:.3e} B of node memory"
            )
        yield from self._await_grant(nbytes, urgent=False)
        ticket = ChunkTicket(key, nbytes)
        self._tickets[ticket] = None
        return ticket

    def unpin(self, ticket: ChunkTicket) -> None:
        """Mark *ticket* cold (parked, eligible for spilling)."""
        ticket.pinned = False
        self._maybe_spill()

    def ensure_resident(self, ticket: ChunkTicket) -> Generator:
        """Process body: pin *ticket*, unspilling it first if needed.

        The unspill re-acquire enters the waiter queue at the *front*:
        the consumer (Map) draining the pool must never queue behind
        producers (fetches) or the pipeline could wedge.
        """
        if ticket.discarded:
            raise RuntimeError(f"chunk {ticket.key!r} was discarded")
        while ticket.state == "spilling":
            yield self.wait_change()
        ticket.pinned = True
        if ticket.state != "spilled":
            return
        yield from self._await_grant(ticket.nbytes, urgent=True)
        t0 = self.env.now
        if self.filesystem is not None:
            try:
                yield from self.filesystem.read(
                    ticket.nbytes, metadata_ops=1, label="flow-spill"
                )
            except BaseException:
                # interrupted mid-unspill: the chunk is still on disk,
                # so give the re-acquired bytes back
                self.node.free(ticket.nbytes)
                self._refund(ticket.nbytes)
                raise
        ticket.state = "resident"
        self.unspills += 1
        self.unspill_bytes += ticket.nbytes
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("flow_unspills", node=self.node.id, **self.labels)
            obs.metrics.inc(
                "flow_unspill_bytes", ticket.nbytes, node=self.node.id, **self.labels
            )
            obs.span(
                "unspill", "flow", t0, tid=f"node{self.node.id}",
                nbytes=ticket.nbytes,
            )
        self._changed()

    def release(self, ticket: ChunkTicket) -> None:
        """Return *ticket*'s bytes to the pool (chunk fully consumed)."""
        if ticket not in self._tickets:
            return  # already released/discarded (idempotent)
        if ticket.state == "spilling":
            ticket.discarded = True  # spill worker finishes the teardown
            return
        del self._tickets[ticket]
        if ticket.state == "resident":
            self.node.free(ticket.nbytes)
            self._refund(ticket.nbytes)
        # a spilled ticket holds no memory; dropping the record suffices

    def discard(self, ticket: ChunkTicket) -> None:
        """Abort-path release (step torn down mid-flight)."""
        ticket.discarded = True
        self.release(ticket)

    # -- spilling ------------------------------------------------------------
    def _spill_victim(self) -> Optional[ChunkTicket]:
        """Newest cold resident chunk (needed last under FIFO mapping)."""
        for ticket in reversed(list(self._tickets)):
            if ticket.state == "resident" and not ticket.pinned:
                return ticket
        return None

    def _should_spill(self) -> bool:
        if self._waiters:
            return True
        return self._above_high and self._used > self.low

    def _maybe_spill(self) -> None:
        if (
            self._spilling
            or not self.config.spill_enabled
            or self.filesystem is None
            or not self._should_spill()
            or self._spill_victim() is None
        ):
            return
        self._spilling = True
        self.env.process(self._spill_worker(), name=f"spill[node{self.node.id}]")

    def _spill_worker(self) -> Generator:
        try:
            while self._should_spill():
                ticket = self._spill_victim()
                if ticket is None:
                    return
                ticket.state = "spilling"
                t0 = self.env.now
                yield from self.filesystem.write(
                    ticket.nbytes, metadata_ops=1, label="flow-spill"
                )
                self.node.free(ticket.nbytes)
                self.spills += 1
                self.spill_bytes += ticket.nbytes
                obs = self.env.obs
                if obs is not None:
                    obs.metrics.inc("flow_spills", node=self.node.id, **self.labels)
                    obs.metrics.inc(
                        "flow_spill_bytes", ticket.nbytes,
                        node=self.node.id, **self.labels,
                    )
                    obs.span(
                        "spill", "flow", t0, tid=f"node{self.node.id}",
                        nbytes=ticket.nbytes,
                    )
                ticket.state = "spilled"
                if ticket.discarded:
                    self._tickets.pop(ticket, None)
                self._refund(ticket.nbytes)
        finally:
            self._spilling = False
