"""Destination-pressure throttling of staging fetches.

The :class:`PressureController` sits between the
:class:`~repro.core.scheduler.MovementScheduler` and the per-node
:class:`~repro.flow.pool.BufferPool`s: before a fetch touches the
wire, the scheduler asks the controller to *admit* it against the
destination node's pool.  At or above the high watermark the fetch is
held (bounded by ``max_block`` — the pool acquire itself is the hard
stop, so admission never needs to starve a fetch to be safe); between
the low and high watermarks it is slowed by a pacing delay that grows
with occupancy, so pressure shows up as reduced fetch *rate* rather
than deferral cliffs.
"""

from __future__ import annotations

from typing import Generator

from repro.flow.config import FlowConfig
from repro.flow.pool import BufferPool
from repro.sim.engine import Engine

__all__ = ["PressureController"]


class PressureController:
    """Memory-pressure-aware fetch admission."""

    def __init__(
        self,
        env: Engine,
        pools: dict[int, BufferPool],
        config: FlowConfig,
        throttle_rate: float,
    ):
        if throttle_rate <= 0:
            raise ValueError("throttle_rate must be positive")
        self.env = env
        self.pools = pools
        self.config = config
        self.throttle_rate = throttle_rate
        # -- always-on stats ------------------------------------------
        self.throttled_fetches = 0
        self.throttle_seconds = 0.0
        self.blocked_fetches = 0

    def severity(self, node_id: int) -> float:
        """Pressure in [0, 1] between the low and high watermarks."""
        pool = self.pools.get(node_id)
        if pool is None or pool.capacity <= 0:
            return 0.0
        occ = pool.used
        if occ <= pool.low:
            return 0.0
        if pool.high <= pool.low:
            return 1.0
        return min(1.0, (occ - pool.low) / (pool.high - pool.low))

    def admit(self, node_id: int, nbytes: float) -> Generator:
        """Process body: hold/slow one fetch of *nbytes* into *node_id*.

        Returns the seconds the fetch was delayed by pressure.
        """
        pool = self.pools.get(node_id)
        if pool is None or nbytes <= 0:
            return 0.0
        start = self.env.now
        blocked = False
        deadline = None
        while pool.capacity > 0 and pool.used >= pool.high:
            if deadline is None:
                deadline = self.env.timeout(self.config.max_block)
            blocked = True
            fired = yield self.env.any_of([pool.wait_change(), deadline])
            if deadline in fired:
                break  # anti-starvation; the pool acquire still bounds memory
        if blocked:
            self.blocked_fetches += 1
        sev = self.severity(node_id)
        if sev > 0.0:
            mult = 1.0 - sev * (1.0 - self.config.throttle_floor)
            delay = (nbytes / self.throttle_rate) * (1.0 / mult - 1.0)
            if delay > 0:
                yield self.env.timeout(delay)
        held = self.env.now - start
        if held > 0:
            self.throttled_fetches += 1
            self.throttle_seconds += held
            obs = self.env.obs
            if obs is not None:
                obs.metrics.inc("flow_throttled_fetches", node=node_id)
                obs.metrics.inc("flow_throttle_seconds", held, node=node_id)
                obs.span(
                    "pressure_throttle", "flow", start,
                    tid=f"node{node_id}", nbytes=nbytes, blocked=blocked,
                )
        return held
