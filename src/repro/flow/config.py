"""Flow-control knobs (credits, watermarks, spill, CoDel target).

All sizes are bytes, all times simulated seconds.  ``FlowConfig`` is
carried by :class:`repro.flow.FlowControl`; passing ``flow=None`` to
:class:`~repro.core.middleware.PreDatA` (the default) disables the
whole subsystem and preserves byte-identical pre-flow behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FlowConfig"]


@dataclass(frozen=True)
class FlowConfig:
    """Flow-control parameters.

    Attributes
    ----------
    pool_bytes:
        Governed buffer-pool capacity per staging node.  This is the
        knob that caps staging memory below the physical node size
        (e.g. 1/4 of the working set for the memory-pressure
        experiments).  ``None`` means the whole node memory.
    high_watermark / low_watermark:
        Occupancy fractions of the pool.  Crossing ``high`` starts
        spilling cold (unpinned) chunks to the file system until
        occupancy falls back to ``low``; between ``low`` and ``high``
        new fetches are progressively throttled.
    spill_enabled:
        When False the pool never spills: waiters simply block until
        releases make room (pure backpressure).
    credit_bytes:
        Byte credits each staging rank grants to the compute clients it
        serves.  ``None`` derives the budget from the pool capacity
        divided evenly among the ranks sharing the node.
    codel_target:
        CoDel-style sojourn-time target for the credit admission queue.
        A write whose credit wait exceeds the (progressively shrinking)
        allowance *degrades* to the synchronous fallback path instead
        of queueing forever.  ``None`` (default) disables degradation:
        writes block until credits free up, which keeps operator
        results byte-identical to an uncapped run.
    codel_interval:
        Sliding window over which the degrade allowance recovers after
        a grant whose sojourn met the target.
    throttle_floor:
        Minimum fetch-rate multiplier applied at ``high_watermark``
        (pressure never slows fetches below this fraction of full
        speed; the hard stop is the pool acquire itself).
    throttle_rate:
        Reference bytes/s used to convert the pressure multiplier into
        a pacing delay.  ``None`` falls back to the client's
        ``fetch_rate_cap``, then to the node memory bandwidth.
    max_block:
        Anti-starvation bound on how long one admission may hold a
        fetch at/above the high watermark before it proceeds anyway
        (the pool acquire still enforces the hard memory bound).
    """

    pool_bytes: Optional[float] = None
    high_watermark: float = 0.85
    low_watermark: float = 0.60
    spill_enabled: bool = True
    credit_bytes: Optional[float] = None
    codel_target: Optional[float] = None
    codel_interval: float = 0.1
    throttle_floor: float = 0.1
    throttle_rate: Optional[float] = None
    max_block: float = 5.0

    def __post_init__(self) -> None:
        if self.pool_bytes is not None and self.pool_bytes <= 0:
            raise ValueError("pool_bytes must be positive")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        if self.credit_bytes is not None and self.credit_bytes <= 0:
            raise ValueError("credit_bytes must be positive")
        if self.codel_target is not None and self.codel_target <= 0:
            raise ValueError("codel_target must be positive")
        if self.codel_interval <= 0:
            raise ValueError("codel_interval must be positive")
        if not 0.0 < self.throttle_floor <= 1.0:
            raise ValueError("throttle_floor must be in (0, 1]")
        if self.throttle_rate is not None and self.throttle_rate <= 0:
            raise ValueError("throttle_rate must be positive")
        if self.max_block <= 0:
            raise ValueError("max_block must be positive")
