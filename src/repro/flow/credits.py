"""Credit-based admission control between compute clients and stagers.

Each staging rank owns a :class:`CreditBank` holding a byte budget.  A
compute-side write must be granted credits for its packed chunk before
the fetch request is even routed; the grant is released when the chunk
has been mapped (or at commit, idempotently).  When the budget is
exhausted, requests queue FIFO in simulated time.

One structural rule keeps the protocol deadlock-free: a compute rank
holding *no* outstanding grant is always admitted, even over budget.
The staging service gathers every request of a step before fetching
any of them, so admission may never hold back part of a step whose
other chunks are already admitted — credits therefore bound how far a
client runs *ahead* (buffered-step bytes), while the
:class:`~repro.flow.pool.BufferPool` remains the hard per-chunk bound.

With a ``codel_target`` configured, the queue is bounded CoDel-style:
the first over-target sojourn degrades that write to the synchronous
fallback path, and while the queue stays congested the allowance for
successive waiters shrinks as ``target / sqrt(n_rejections + 1)`` —
the standard CoDel control law — until a grant's sojourn comes back
under target.  Degrading (rather than dropping) preserves every dump.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Generator, Optional

from repro.flow.config import FlowConfig
from repro.sim.engine import Engine

__all__ = ["CreditBank"]


class CreditBank:
    """Byte-credit budget of one staging rank."""

    def __init__(self, env: Engine, rank: int, capacity: float, config: FlowConfig):
        if capacity <= 0:
            raise ValueError("credit capacity must be positive")
        self.env = env
        self.rank = rank
        self.capacity = float(capacity)
        self.config = config
        #: extra metric labels (e.g. ``tenant=...`` under the jobs layer)
        self.labels: dict = {}
        #: optional share group for work-conserving borrow across sibling
        #: banks carved from the same physical budget (see ``repro.jobs``)
        self.group = None
        self._granted = 0.0
        #: outstanding grants keyed by (compute_rank, step)
        self._grants: dict = {}
        #: outstanding grant count per source (compute rank)
        self._source_out: dict = {}
        #: FIFO credit waiters: [event, key, nbytes, t_enqueue]
        self._waiters: Deque[list] = deque()
        self._reject_streak = 0
        # -- always-on stats ------------------------------------------
        self.grants = 0
        self.rejections = 0
        self.forced = 0
        self.total_sojourn = 0.0
        self.max_sojourn = 0.0
        self._last_good_grant = 0.0

    # -- introspection ------------------------------------------------------
    @property
    def available(self) -> float:
        return self.capacity - self._granted

    @property
    def outstanding(self) -> float:
        return self._granted

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def queued_bytes(self) -> float:
        return sum(entry[2] for entry in self._waiters)

    def mean_sojourn(self) -> float:
        """Mean queue sojourn (seconds) across this bank's grants."""
        return self.total_sojourn / self.grants if self.grants else 0.0

    # -- grant bookkeeping --------------------------------------------------
    @staticmethod
    def _source_of(key):
        """Source identity behind a grant key: everything but the step.

        Grant keys are ``(compute_rank, step)`` or, under the jobs
        layer, ``(tenant, compute_rank, step)`` — either way the last
        element is the step and the prefix identifies the source.
        Taking ``key[0]`` of a tenant-qualified key would merge all of
        one tenant's ranks into a single "source", so a rank with
        nothing outstanding could be starved behind its siblings —
        breaking the fresh-source progress rule the deadlock-freedom
        argument rests on.
        """
        if isinstance(key, tuple) and key:
            src = key[:-1]
            return src[0] if len(src) == 1 else src
        return key

    def _fits(self, nbytes: float) -> bool:
        """May *nbytes* be granted right now under the byte budget?

        An idle bank always admits (a single chunk may exceed the whole
        budget).  A bank in a share group may additionally borrow idle
        budget from the group — the work-conserving redistribution of
        the fair-share layer.
        """
        if self._granted + nbytes <= self.capacity or self._granted == 0.0:
            return True
        return self.group is not None and self.group.can_borrow(self, nbytes)

    def _grant(self, key, nbytes: float) -> None:
        self._grants[key] = nbytes
        self._granted += nbytes
        src = self._source_of(key)
        self._source_out[src] = self._source_out.get(src, 0) + 1
        self.grants += 1
        obs = self.env.obs
        if obs is not None:
            obs.metrics.gauge_max(
                "flow_credit_peak_bytes", self._granted, stage=self.rank, **self.labels
            )

    def _note_sojourn(self, sojourn: float) -> None:
        self.total_sojourn += sojourn
        self.max_sojourn = max(self.max_sojourn, sojourn)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.observe(
                "flow_credit_sojourn_seconds", sojourn, stage=self.rank, **self.labels
            )
        target = self.config.codel_target
        if target is not None and sojourn < target:
            # congestion cleared: reset the CoDel control law once the
            # recovery interval has passed without another rejection
            if self.env.now - self._last_good_grant >= self.config.codel_interval:
                self._reject_streak = 0
            self._last_good_grant = self.env.now

    def _allowed_sojourn(self) -> float:
        target = self.config.codel_target
        if self._reject_streak == 0:
            return target
        return target / math.sqrt(self._reject_streak + 1.0)

    def _pump(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # byte-budget grants are strictly FIFO (head-of-line)
            while self._waiters:
                ev, key, nbytes, _t = self._waiters[0]
                if not self._fits(nbytes):
                    break
                self._waiters.popleft()
                self._grant(key, nbytes)
                ev.succeed()
                progressed = True
            # progress rule: a source with nothing outstanding may not
            # be held back by other sources' budget debt (see module
            # docstring — the gather barrier makes that a deadlock)
            for entry in list(self._waiters):
                ev, key, nbytes, _t = entry
                if self._source_out.get(self._source_of(key), 0) == 0:
                    self._waiters.remove(entry)
                    self._grant(key, nbytes)
                    ev.succeed()
                    progressed = True

    # -- public API ---------------------------------------------------------
    def request(self, key, nbytes: float, *, can_degrade: bool = False) -> Generator:
        """Process body: wait for *nbytes* of credits for chunk *key*.

        Returns True when granted.  Returns False only when
        ``codel_target`` is set, *can_degrade* is True, and the queue
        sojourn exceeded the (shrinking) allowance — the caller must
        then take the synchronous fallback path.
        """
        if key in self._grants:
            return True  # redelivery/idempotent re-request
        fresh_source = self._source_out.get(self._source_of(key), 0) == 0
        if (not self._waiters and self._fits(nbytes)) or fresh_source:
            self._grant(key, nbytes)
            self._note_sojourn(0.0)
            return True
        ev = self.env.event()
        entry = [ev, key, nbytes, self.env.now]
        self._waiters.append(entry)
        target = self.config.codel_target
        if target is None or not can_degrade:
            try:
                yield ev
            except BaseException:
                self._cancel(ev, entry, key, nbytes)
                raise
            self._note_sojourn(self.env.now - entry[3])
            return True
        deadline = self.env.timeout(self._allowed_sojourn())
        try:
            yield self.env.any_of([ev, deadline])
        except BaseException:
            self._cancel(ev, entry, key, nbytes)
            raise
        if ev.triggered:
            self._note_sojourn(self.env.now - entry[3])
            return True
        self._cancel(ev, entry, key, nbytes)
        self._reject_streak += 1
        self.rejections += 1
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("flow_credit_rejections", stage=self.rank, **self.labels)
            obs.instant(
                "credit_reject", "flow", tid=f"stage{self.rank}",
                key=repr(key), sojourn=self.env.now - entry[3],
            )
        return False

    def _cancel(self, ev, entry, key, nbytes: float) -> None:
        try:
            self._waiters.remove(entry)
            return
        except ValueError:
            pass
        if ev.triggered:  # granted in the same instant we gave up
            self.release(key)

    def release(self, key) -> None:
        """Return the credits of chunk *key* (idempotent)."""
        nbytes = self._grants.pop(key, None)
        if nbytes is None:
            return
        self._granted = max(0.0, self._granted - nbytes)
        src = self._source_of(key)
        left = self._source_out.get(src, 0) - 1
        if left > 0:
            self._source_out[src] = left
        else:
            self._source_out.pop(src, None)
        self._pump()
        if self.group is not None:
            self.group.pump(exclude=self)

    def force_grant(self, key, nbytes: float) -> None:
        """Failover adoption: record a grant even when it overcommits.

        The chunk's bytes are already packed on the compute node; the
        adopting rank must account for them or its budget leaks on
        release.
        """
        if key in self._grants:
            return
        self._grants[key] = nbytes
        self._granted += nbytes
        src = self._source_of(key)
        self._source_out[src] = self._source_out.get(src, 0) + 1
        self.forced += 1

    def revoke_all(self) -> dict:
        """Dead-rank teardown: return and clear all outstanding grants."""
        moved = dict(self._grants)
        self._grants.clear()
        self._source_out.clear()
        self._granted = 0.0
        self._pump()
        if self.group is not None:
            self.group.pump(exclude=self)
        return moved
