"""Micro-benchmarks for the hot-path layer + regression guard.

Benchmark groups, one ``BENCH_*.json`` sidecar each:

- :func:`bench_kernels` — every registered kernel, ``naive`` vs
  ``vectorized`` vs ``parallel``, on adversarially dense inputs
  (default 1M elements);
- :func:`bench_ffs` — FFS packing, allocate-per-step ``encode`` vs
  zero-copy ``encode_into`` with a warm :class:`~repro.ffs.PackBuffer`;
- :func:`bench_engine` — event-queue backends (``heap`` vs
  ``calendar``) on a bursty same-timestamp workload, plus legacy vs
  batched :class:`~repro.core.scheduler.MovementScheduler` wakeups;
- :func:`repro.perf.scale.bench_scale` — 10k/50k/100k-rank weak
  scaling of the whole engine + scheduler stack, cross-checked
  bit-for-bit against the heap-queue/dict-bookkeeping reference path.

Each record carries a ``guards`` dict of *machine-portable* ratio
metrics (fast path relative to the reference path, measured in the same
process on the same host).  :func:`compare` fails a run when any guard
falls more than ``tolerance`` (default 20 %) below the committed
baseline in ``benchmarks/perf/baselines/`` — absolute wall seconds are
recorded for humans but never compared, so the guard is stable across
host speeds.  A record may additionally carry ``floors`` —
``{metric: {floor, measured}}`` acceptance criteria enforced by
:func:`check_floors` on *every* run, baseline or not (e.g. the ≥2x
parallel-kernel speedup on hosts with ≥4 cores, or fingerprint
equality in the weak-scaling cross-check).

``python -m repro perf`` drives everything from the command line
(``python -m repro perf --scale`` includes the weak-scaling sweep).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from repro.perf import kernels as K
from repro.perf import parallel as P
from repro.perf.registry import REGISTRY

__all__ = [
    "bench_kernels",
    "bench_ffs",
    "bench_engine",
    "compare",
    "check_floors",
    "write_record",
    "default_baseline_dir",
    "main",
]

#: kernels whose vectorized speedup is an acceptance criterion
HOT_KERNELS = ("histogram1d", "histogram2d", "wah_encode")


def _best_of(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best wall time of *repeat* calls (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_cases(n: int, rng: np.random.Generator) -> dict[str, tuple]:
    """Argument tuples per kernel, sized to *n* elements."""
    values = rng.normal(size=n)
    edges = np.linspace(-4.0, 4.0, 1001)
    x, y = rng.normal(size=n), rng.normal(size=n)
    ex, ey = np.linspace(-4.0, 4.0, 257), np.linspace(-4.0, 4.0, 257)
    # encode: run-heavy mask (the compressible case WAH exists for);
    # decode/count: literal-heavy words, where per-word bit extraction
    # is the hot loop
    mask = np.repeat(rng.random(max(n // 31, 1)) < 0.5, 31)[:n]
    dense = rng.random(n) < 0.5
    words = K.wah_encode(dense)
    pool = rng.normal(size=min(n, 1 << 16))
    splitters = np.sort(rng.normal(size=63))
    keys = rng.normal(size=n)
    buckets = K.partition_rows(keys, splitters)
    rows = rng.normal(size=(n // 8, 4))
    row_buckets = np.asarray(buckets[: n // 8])
    side = max(int(round((n // 16) ** (1 / 3))), 4)
    piece = rng.normal(size=(side, side, side))
    pieces = [((i * side, 0, 0), piece) for i in range(4)]
    return {
        "histogram1d": (values, edges),
        "histogram2d": (x, y, ex, ey),
        "wah_encode": (mask,),
        "wah_decode": (words, dense.size),
        "wah_count": (words,),
        "select_splitters": (pool, 64),
        "partition_rows": (keys, splitters),
        "group_rows": (rows, row_buckets),
        "paste_pieces": ((4 * side, side, side), np.float64, pieces, 0),
    }


def bench_kernels(n: int = 1_000_000, repeat: int = 3, seed: int = 11) -> dict:
    """Time every kernel in all three variants; guards are the speedups.

    The ``speedup:*`` guards (naive vs vectorized) are ratio metrics
    compared against the committed baseline.  The parallel variant is
    timed inside one warm pool; on hosts with ≥4 usable workers the
    ≥2x-over-vectorized acceptance floor for the hot kernels is emitted
    in ``floors`` (enforced by the CLI on every run) — pool overhead on
    smaller hosts makes an absolute floor meaningless there, so the
    timings are recorded but unenforced.
    """
    cases = _kernel_cases(n, np.random.default_rng(seed))
    results: dict[str, dict] = {}
    guards: dict[str, float] = {}
    floors: dict[str, dict] = {}
    workers = P.configured_workers()
    with P.pooled(workers):
        for name in REGISTRY.names():
            args = cases[name]
            t_naive = _best_of(lambda: REGISTRY.get(name, "naive")(*args), repeat)
            t_vec = _best_of(
                lambda: REGISTRY.get(name, "vectorized")(*args), repeat
            )
            t_par = _best_of(
                lambda: REGISTRY.get(name, "parallel")(*args), repeat
            )
            speedup = t_naive / max(t_vec, 1e-9)
            par_speedup = t_vec / max(t_par, 1e-9)
            results[name] = {
                "naive_seconds": t_naive,
                "vectorized_seconds": t_vec,
                "parallel_seconds": t_par,
                "speedup": speedup,
                "parallel_speedup": par_speedup,
            }
            guards[f"speedup:{name}"] = speedup
            if workers >= 4 and (os.cpu_count() or 1) >= 4 and name in HOT_KERNELS:
                floors[f"parallel_speedup:{name}"] = {
                    "floor": 2.0,
                    "measured": par_speedup,
                }
    return {
        "bench": "kernels",
        "n": n,
        "workers": workers,
        "kernels": results,
        "guards": guards,
        "floors": floors,
    }


def bench_ffs(
    nelems: int = 1_000_000, nfields: int = 4, repeat: int = 5, seed: int = 12
) -> dict:
    """Allocate-per-step ``encode`` vs zero-copy ``encode_into``."""
    from repro.ffs import Field, PackBuffer, Schema, encode, encode_into

    rng = np.random.default_rng(seed)
    per = nelems // nfields
    schema = Schema(
        "bench", tuple(Field(f"f{i}", "<f8", (-1,)) for i in range(nfields))
    )
    values = {f"f{i}": rng.normal(size=per) for i in range(nfields)}
    nbytes = sum(v.nbytes for v in values.values())
    # warm the allocator until large-block reuse kicks in (glibc adapts
    # its mmap threshold over several alloc/free cycles): the guard
    # should compare steady-state packing, not first-touch page faults
    for _ in range(8):
        encode(schema, values)
    t_bytes = _best_of(lambda: encode(schema, values), repeat)
    scratch = PackBuffer()
    encode_into(schema, values, scratch)  # warm the scratch to capacity
    grows_warm = scratch.grows
    t_zero = _best_of(lambda: encode_into(schema, values, scratch), repeat)
    ratio = t_bytes / max(t_zero, 1e-9)
    return {
        "bench": "ffs",
        "payload_bytes": nbytes,
        "encode_seconds": t_bytes,
        "encode_into_seconds": t_zero,
        "encode_mb_per_s": nbytes / 1e6 / max(t_bytes, 1e-9),
        "encode_into_mb_per_s": nbytes / 1e6 / max(t_zero, 1e-9),
        "scratch_grows_after_warmup": scratch.grows - grows_warm,
        "guards": {
            "speedup:encode_into": ratio,
            "no_growth_after_warmup": 1.0
            if scratch.grows == grows_warm
            else 0.0,
        },
    }


def _engine_burst(queue: str, nbacklog: int, nworkers: int, nhops: int) -> float:
    """Seconds to drain a bursty workload on one queue backend.

    ``nbacklog`` processes park on far-future timeouts (the standing
    deadline/monitor population of a long pipeline); ``nworkers`` then
    cascade ``nhops`` zero-delay event hops each at one shared instant —
    the same-timestamp burst shape the calendar queue buckets.
    """
    from repro.sim.engine import Engine

    eng = Engine(queue=queue)

    def sleeper(i):
        yield eng.timeout(1e6 + i)

    def worker():
        yield eng.timeout(1000.0)
        for _ in range(nhops):
            ev = eng.event()
            ev.succeed()
            yield ev

    for i in range(nbacklog):
        eng.process(sleeper(i))
    for _ in range(nworkers):
        eng.process(worker())
    t0 = time.perf_counter()
    eng.run(until=2000.0)
    return time.perf_counter() - t0


def _scheduler_storm(batch: bool, nwaiters: int, ncycles: int) -> float:
    """Seconds to push *nwaiters* deferred fetches through comm cycles."""
    from repro.core.scheduler import MovementScheduler
    from repro.sim.engine import Engine

    eng = Engine()
    sched = MovementScheduler(eng, max_defer=1e6, batch_wakeups=batch)

    def app():
        for _ in range(ncycles):
            sched.enter_comm_phase(0)
            yield eng.timeout(1.0)
            sched.exit_comm_phase(0)
            yield eng.timeout(1.0)

    def fetcher():
        for _ in range(ncycles):
            yield from sched.wait_clear(0)
            yield eng.timeout(2.0)

    eng.process(app())
    # phase-align fetchers: first wait lands inside the first comm phase
    for _ in range(nwaiters):
        eng.process(fetcher())
    t0 = time.perf_counter()
    eng.run()
    return time.perf_counter() - t0


def bench_engine(
    nbacklog: int = 10_000, nworkers: int = 100, nhops: int = 300,
    nwaiters: int = 300, ncycles: int = 10, repeat: int = 3,
) -> dict:
    """Queue backends + scheduler wakeup strategies on bursty loads."""
    t_heap = _best_of(
        lambda: _engine_burst("heap", nbacklog, nworkers, nhops), repeat
    )
    t_cal = _best_of(
        lambda: _engine_burst("calendar", nbacklog, nworkers, nhops), repeat
    )
    t_legacy = _best_of(lambda: _scheduler_storm(False, nwaiters, ncycles), repeat)
    t_batch = _best_of(lambda: _scheduler_storm(True, nwaiters, ncycles), repeat)
    nevents = nbacklog + nworkers * nhops
    return {
        "bench": "engine",
        "burst_events": nevents,
        "heap_seconds": t_heap,
        "calendar_seconds": t_cal,
        "calendar_events_per_s": nevents / max(t_cal, 1e-9),
        "scheduler_legacy_seconds": t_legacy,
        "scheduler_batched_seconds": t_batch,
        "guards": {
            "ratio:calendar_vs_heap": t_heap / max(t_cal, 1e-9),
            "ratio:batched_vs_legacy": t_legacy / max(t_batch, 1e-9),
        },
    }


# ---------------------------------------------------------------------
# sidecars + regression guard
# ---------------------------------------------------------------------

def write_record(name: str, record: dict, out_dir: Path) -> Path:
    """Write one ``BENCH_<name>.json`` sidecar; returns its path."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def default_baseline_dir() -> Path:
    """The committed baseline directory (benchmarks/perf/baselines)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "baselines"


def compare(record: dict, baseline: dict, tolerance: float = 0.2) -> list[str]:
    """Regressions of *record* against *baseline* (empty when clean).

    Only ``guards`` entries present in the *baseline* are enforced: a
    guard regresses when it falls more than ``tolerance`` below the
    baseline value.  Guards are ratios measured within one process, so
    the comparison is host-speed independent.
    """
    problems = []
    base_guards = baseline.get("guards", {})
    cur_guards = record.get("guards", {})
    for key, base_val in base_guards.items():
        cur = cur_guards.get(key)
        if cur is None:
            problems.append(f"guard {key!r} missing from current run")
            continue
        floor = base_val * (1.0 - tolerance)
        if cur < floor:
            problems.append(
                f"guard {key!r} regressed: {cur:.3g} < floor {floor:.3g} "
                f"(baseline {base_val:.3g}, tolerance {tolerance:.0%})"
            )
    return problems


def check_floors(record: dict) -> list[str]:
    """Unmet acceptance floors of *record* (empty when clean).

    Unlike :func:`compare`, floors need no baseline: each entry of
    ``record["floors"]`` carries its own bound and measurement, so
    hard acceptance criteria (parallel-kernel speedup, weak-scaling
    fingerprint equality) fail the CLI on any run that can measure
    them.
    """
    return [
        f"floor {key!r} not met: {v['measured']:.3g} < {v['floor']:.3g}"
        for key, v in record.get("floors", {}).items()
        if v["measured"] < v["floor"]
    ]


def _bench_query() -> dict:
    # lazy: repro.serve pulls in repro.query/operators, which must not
    # load just because the perf module was imported
    from repro.serve.bench import bench_query

    return bench_query()


def _bench_stream() -> dict:
    # lazy for the same reason: repro.stream pulls in the machine and
    # dataspaces layers
    from repro.stream.bench import bench_stream

    return bench_stream()


def _bench_scale(ranks: Optional[list[int]] = None) -> dict:
    # lazy: repro.perf.scale pulls in the engine and scheduler layers
    from repro.perf.scale import bench_scale

    return bench_scale(ranks=ranks)


_BENCHES: dict[str, Callable[..., dict]] = {
    "kernels": bench_kernels,
    "ffs": bench_ffs,
    "engine": bench_engine,
    "query": _bench_query,
    "stream": _bench_stream,
    "scale": _bench_scale,
}


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: run benchmarks, write sidecars, optionally guard vs baseline."""
    ap = argparse.ArgumentParser(
        prog="repro perf", description="hot-path micro-benchmarks"
    )
    ap.add_argument(
        "benches", nargs="*", choices=[*_BENCHES, "all"], default=["all"],
        help="benchmark groups to run (default: all)",
    )
    ap.add_argument(
        "--out", type=Path, default=Path("."), help="sidecar output directory"
    )
    ap.add_argument(
        "--n", type=int, default=1_000_000,
        help="kernel benchmark element count (default 1M)",
    )
    ap.add_argument(
        "--scale", action="store_true",
        help="include the weak-scaling benchmark in the selection",
    )
    ap.add_argument(
        "--scale-ranks", type=int, nargs="+", default=None, metavar="N",
        help="weak-scaling rank counts (default 10000 50000 100000)",
    )
    ap.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline dir to guard against (use 'default' for the "
        "committed benchmarks/perf/baselines)",
    )
    ap.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional guard regression (default 0.2)",
    )
    args = ap.parse_args(argv)
    names = list(_BENCHES) if "all" in args.benches else list(dict.fromkeys(args.benches))
    if args.scale and "scale" not in names:
        names.append("scale")
    failures = []
    for name in names:
        if name == "kernels":
            record = _BENCHES[name](args.n)
        elif name == "scale":
            record = _BENCHES[name](args.scale_ranks)
        else:
            record = _BENCHES[name]()
        path = write_record(name, record, args.out)
        print(f"[perf] {name}: wrote {path}")
        for key, val in sorted(record["guards"].items()):
            print(f"[perf]   {key} = {val:.3g}")
        for key, bound in sorted(record.get("floors", {}).items()):
            print(
                f"[perf]   floor {key}: {bound['measured']:.3g} "
                f"(required >= {bound['floor']:.3g})"
            )
        floor_problems = check_floors(record)
        for p in floor_problems:
            print(f"[perf]   FAILED {p}")
        failures.extend(floor_problems)
        if args.baseline is not None:
            base_dir = (
                default_baseline_dir()
                if str(args.baseline) == "default"
                else args.baseline
            )
            base_path = base_dir / f"BENCH_{name}.json"
            if not base_path.exists():
                print(f"[perf]   no baseline at {base_path}; skipping guard")
                continue
            problems = compare(
                record, json.loads(base_path.read_text()), args.tolerance
            )
            for p in problems:
                print(f"[perf]   REGRESSION {p}")
            failures.extend(problems)
    if failures:
        print(f"[perf] FAILED: {len(failures)} regression(s)")
        return 1
    print("[perf] all guards clean")
    return 0
