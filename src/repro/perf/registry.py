"""Kernel registry: selectable hot-path implementations.

Every measured hot path in the pipeline (histogram binning, WAH bitmap
run-length coding, sample-sort splitter selection and row partitioning,
array-merge chunk stitching) exists in three registered variants:

- ``naive`` — the straightforward reference implementation (per-element
  Python loops or the pre-optimisation code path).  This is the oracle
  baseline: slow, obviously correct, and kept forever so the
  differential checks in :mod:`repro.check` can compare against it.
- ``vectorized`` — the numpy fast path the pipeline actually runs.
- ``parallel`` — the vectorized kernels chunked over a shared-memory
  :mod:`multiprocessing` pool (:mod:`repro.perf.parallel`): real cores,
  order-independent merges, results identical to the other two.

All variants of a kernel must be *bit-for-bit* interchangeable: the
property tests in ``tests/test_kernel_properties.py`` drive adversarial
inputs through every pair and assert exact agreement, and the
flag-matrix fingerprint test proves a full pipeline run is
byte-identical under any selection.

Selection is process-global (the simulation is single-threaded):
``REGISTRY.variant`` defaults to ``vectorized``, the environment
variable ``REPRO_KERNELS`` overrides the default at import, and
``REGISTRY.use("naive")`` switches temporarily::

    from repro.perf import REGISTRY

    with REGISTRY.use("naive"):
        counts = kernels.histogram1d(values, edges)

A variant may register *teardown hooks* (the parallel pool does): they
run when a selection of that variant is released — ``use()`` exits or
``set_variant`` switches away — so worker processes never outlive the
selection that spawned them.  Nested ``use("parallel")`` blocks tear
down only at the outermost exit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = ["VARIANTS", "KernelRegistry", "REGISTRY", "use_kernels", "kernel_variant"]

VARIANTS = ("naive", "vectorized", "parallel")


class KernelRegistry:
    """Name -> variant -> implementation table with an active variant."""

    def __init__(self, variant: str = "vectorized"):
        self._check_variant(variant)
        self._impls: dict[tuple[str, str], Callable] = {}
        self._teardowns: dict[str, list[Callable[[], None]]] = {}
        self._variant = variant

    @staticmethod
    def _check_variant(variant: str) -> None:
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown kernel variant {variant!r}; expected one of {VARIANTS}"
            )

    # -- selection -------------------------------------------------------
    @property
    def variant(self) -> str:
        """The active variant; :meth:`get` resolves against it."""
        return self._variant

    def set_variant(self, variant: str) -> None:
        """Switch the active variant for the rest of the process."""
        self._check_variant(variant)
        previous, self._variant = self._variant, variant
        self._release(previous)

    @contextmanager
    def use(self, variant: str) -> Iterator["KernelRegistry"]:
        """Temporarily switch the active variant.

        On exit the previous variant is restored and the temporary
        variant's teardown hooks run — unless the restored variant is
        the same one (nested ``use``), in which case resources stay
        live for the enclosing selection.
        """
        self._check_variant(variant)
        saved, self._variant = self._variant, variant
        try:
            yield self
        finally:
            self._variant = saved
            self._release(variant)

    def _release(self, leaving: str) -> None:
        """Run *leaving*'s teardown hooks if it is no longer active."""
        if leaving == self._variant:
            return
        for fn in self._teardowns.get(leaving, ()):
            fn()

    # -- registration ----------------------------------------------------
    def register(self, name: str, variant: str) -> Callable[[Callable], Callable]:
        """Decorator registering one implementation of kernel *name*."""
        self._check_variant(variant)

        def deco(fn: Callable) -> Callable:
            key = (name, variant)
            if key in self._impls:
                raise ValueError(f"kernel {name!r} variant {variant!r} already registered")
            self._impls[key] = fn
            return fn

        return deco

    def register_teardown(self, variant: str, fn: Callable[[], None]) -> None:
        """Register *fn* to run whenever a *variant* selection ends.

        Hooks must be idempotent: they also run on a direct
        :meth:`set_variant` away from *variant* and may therefore fire
        when the resource they release was never created.
        """
        self._check_variant(variant)
        hooks = self._teardowns.setdefault(variant, [])
        if fn not in hooks:
            hooks.append(fn)

    def get(self, name: str, variant: Optional[str] = None) -> Callable:
        """Implementation of *name* in *variant* (default: active)."""
        v = variant or self._variant
        try:
            return self._impls[(name, v)]
        except KeyError:
            raise KeyError(f"no kernel {name!r} in variant {v!r}") from None

    def names(self) -> list[str]:
        """Sorted kernel names with at least one registered variant."""
        return sorted({n for n, _v in self._impls})

    def variants_of(self, name: str) -> list[str]:
        """Variants registered for kernel *name*, in VARIANTS order."""
        return [v for v in VARIANTS if (name, v) in self._impls]


def _default_variant() -> str:
    env = os.environ.get("REPRO_KERNELS", "").strip()
    if not env:
        return "vectorized"
    if env not in VARIANTS:
        raise ValueError(
            f"REPRO_KERNELS={env!r} is not a kernel variant; expected one of {VARIANTS}"
        )
    return env


#: process-global registry used by the operators in :mod:`repro.operators`
REGISTRY = KernelRegistry(_default_variant())

#: module-level conveniences mirroring the registry methods
use_kernels = REGISTRY.use


def kernel_variant() -> str:
    """The currently active kernel variant."""
    return REGISTRY.variant
