"""Hot-path performance layer: selectable operator kernels + benchmarks.

Three hot paths of the reproduction have dedicated fast
implementations, all selectable and all locked to their reference
counterparts by differential tests:

- :mod:`repro.perf.kernels` — vectorized numpy kernels for histogram
  binning, WAH bitmap coding, sample-sort splitter selection /
  partitioning, and array-merge chunk stitching, registered next to
  their ``naive`` reference twins in :data:`REGISTRY`;
- zero-copy FFS packing (:class:`repro.ffs.PackBuffer`,
  :func:`repro.ffs.encode_into`) used by the compute-side client;
- the bucketed calendar queue in :class:`repro.sim.engine.Engine` and
  batched :meth:`~repro.core.scheduler.MovementScheduler.wait_clear`
  wakeups.

:mod:`repro.perf.bench` drives micro-benchmarks over all of them and
emits ``BENCH_*.json`` sidecars consumed by the perf-regression test
harness (``tests/test_perf_regression.py``) and CI.
"""

from repro.perf.registry import (
    REGISTRY,
    VARIANTS,
    KernelRegistry,
    kernel_variant,
    use_kernels,
)
from repro.perf import kernels  # noqa: E402  (registers naive + vectorized)
from repro.perf import parallel  # noqa: E402  (registers the pool variant)

__all__ = [
    "kernels",
    "parallel",
    "REGISTRY",
    "VARIANTS",
    "KernelRegistry",
    "kernel_variant",
    "use_kernels",
]
