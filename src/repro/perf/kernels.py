"""Hot-path operator kernels, each in ``naive`` and ``vectorized`` form.

The public functions at the bottom (:func:`histogram1d`,
:func:`histogram2d`, :func:`wah_encode`, :func:`wah_decode`,
:func:`wah_count`, :func:`select_splitters`, :func:`partition_rows`,
:func:`group_rows`, :func:`paste_pieces`) dispatch through
:data:`~repro.perf.registry.REGISTRY`; the operators in
:mod:`repro.operators` call only these.

Contracts (shared by both variants — property-tested bit-for-bit):

- histogram kernels take *strictly increasing* edge arrays; values
  outside ``[edges[0], edges[-1]]`` and NaNs are dropped, the last bin
  is right-inclusive.  This matches ``np.histogram``/``np.histogram2d``
  exactly.
- WAH words are ``("lit", payload, 1)`` or ``("fill", bit, ngroups)``
  tuples over 31-bit groups, adjacent equal fills merged maximally.
- ``select_splitters`` reproduces
  ``np.unique(np.quantile(pool, linspace-cuts))`` including numpy's
  linear-interpolation rounding and NaN collapsing.
- ``partition_rows`` is ``searchsorted(splitters, keys, side="right")``.
- ``group_rows`` yields ``(bucket, rows)`` pairs in ascending bucket
  order with rows in their original order.
- ``paste_pieces`` pastes ``(offsets, piece)`` blocks into a zeroed
  slab and reports the count of never-written cells.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Optional, Sequence

import numpy as np

from repro.perf.registry import REGISTRY

__all__ = [
    "histogram1d",
    "histogram2d",
    "wah_encode",
    "wah_decode",
    "wah_count",
    "select_splitters",
    "partition_rows",
    "group_rows",
    "paste_pieces",
    "WAH_WORD_BITS",
]

#: payload bits per WAH word (31, as in word-aligned-hybrid coding)
WAH_WORD_BITS = 31
_FULL = (1 << WAH_WORD_BITS) - 1


# =====================================================================
# 1-D histogram
# =====================================================================

@REGISTRY.register("histogram1d", "naive")
def _histogram1d_naive(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    edges_l = np.asarray(edges, dtype=float).tolist()
    counts = [0] * (len(edges_l) - 1)
    lo, hi = edges_l[0], edges_l[-1]
    last = len(counts) - 1
    for v in values.ravel().tolist():
        if not (lo <= v <= hi):  # NaN fails both comparisons
            continue
        if v == hi:
            counts[last] += 1
        else:
            counts[bisect_right(edges_l, v) - 1] += 1
    return np.asarray(counts, dtype=np.int64)


@REGISTRY.register("histogram1d", "vectorized")
def _histogram1d_vectorized(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    counts, _ = np.histogram(np.asarray(values, dtype=float), bins=edges)
    return counts.astype(np.int64)


# =====================================================================
# 2-D histogram
# =====================================================================

def _bin_of(v: float, edges_l: list) -> Optional[int]:
    lo, hi = edges_l[0], edges_l[-1]
    if not (lo <= v <= hi):
        return None
    if v == hi:
        return len(edges_l) - 2
    return bisect_right(edges_l, v) - 1


@REGISTRY.register("histogram2d", "naive")
def _histogram2d_naive(
    x: np.ndarray, y: np.ndarray, ex: np.ndarray, ey: np.ndarray
) -> np.ndarray:
    ex_l = np.asarray(ex, dtype=float).tolist()
    ey_l = np.asarray(ey, dtype=float).tolist()
    counts = np.zeros((len(ex_l) - 1, len(ey_l) - 1), dtype=np.int64)
    xs = np.asarray(x, dtype=float).ravel().tolist()
    ys = np.asarray(y, dtype=float).ravel().tolist()
    for v, w in zip(xs, ys):
        bx = _bin_of(v, ex_l)
        if bx is None:
            continue
        by = _bin_of(w, ey_l)
        if by is None:
            continue
        counts[bx, by] += 1
    return counts


@REGISTRY.register("histogram2d", "vectorized")
def _histogram2d_vectorized(
    x: np.ndarray, y: np.ndarray, ex: np.ndarray, ey: np.ndarray
) -> np.ndarray:
    counts, _, _ = np.histogram2d(
        np.asarray(x, dtype=float), np.asarray(y, dtype=float), bins=(ex, ey)
    )
    return counts.astype(np.int64)


# =====================================================================
# WAH bitmap run-length coding
# =====================================================================

def _payloads(mask: np.ndarray) -> np.ndarray:
    """31-bit group payloads of a boolean mask (zero-padded)."""
    mask = np.asarray(mask, dtype=bool).ravel()
    pad = (-mask.size) % WAH_WORD_BITS
    padded = np.concatenate([mask, np.zeros(pad, dtype=bool)])
    groups = padded.reshape(-1, WAH_WORD_BITS)
    weights = (1 << np.arange(WAH_WORD_BITS, dtype=np.int64))[::-1]
    return groups @ weights


@REGISTRY.register("wah_encode", "naive")
def _wah_encode_naive(mask: np.ndarray) -> list:
    words: list[tuple[str, int, int]] = []
    for p in _payloads(mask):
        p = int(p)
        if p == 0 or p == _FULL:
            bit = 1 if p == _FULL else 0
            if words and words[-1][0] == "fill" and words[-1][1] == bit:
                words[-1] = ("fill", bit, words[-1][2] + 1)
            else:
                words.append(("fill", bit, 1))
        else:
            words.append(("lit", p, 1))
    return words


def _payloads_packed(mask: np.ndarray) -> np.ndarray:
    """31-bit group payloads via ``np.packbits`` (identical values to
    :func:`_payloads`, an order of magnitude faster on large masks)."""
    mask = np.asarray(mask, dtype=bool).ravel()
    ngroups = (mask.size + WAH_WORD_BITS - 1) // WAH_WORD_BITS
    if ngroups == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.zeros((ngroups, 32), dtype=bool)
    padded = np.zeros(ngroups * WAH_WORD_BITS, dtype=bool)
    padded[: mask.size] = mask
    bits[:, :WAH_WORD_BITS] = padded.reshape(ngroups, WAH_WORD_BITS)
    packed = np.packbits(bits, axis=1).view(">u4").ravel()
    # bit i of the group carries weight 2^(30-i); the packed 32-bit word
    # weighted it 2^(31-i), i.e. exactly payload << 1
    return (packed >> 1).astype(np.int64)


@REGISTRY.register("wah_encode", "vectorized")
def _wah_encode_vectorized(mask: np.ndarray) -> list:
    payloads = _payloads_packed(mask)
    n = payloads.size
    if n == 0:
        return []
    is_fill = (payloads == 0) | (payloads == _FULL)
    fill_bit = payloads == _FULL
    # run boundaries: a group starts a new word run unless it continues
    # a fill run of the same bit value (literals never merge)
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = ~(is_fill[1:] & is_fill[:-1] & (fill_bit[1:] == fill_bit[:-1]))
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], n)
    run_fill = is_fill[starts]
    kinds = np.where(run_fill, "fill", "lit").tolist()
    vals = np.where(run_fill, fill_bit[starts].astype(np.int64), payloads[starts])
    counts = np.where(run_fill, ends - starts, 1)
    return list(zip(kinds, vals.tolist(), counts.tolist()))


@REGISTRY.register("wah_decode", "naive")
def _wah_decode_naive(words: Sequence, nbits: int) -> np.ndarray:
    ngroups = (nbits + WAH_WORD_BITS - 1) // WAH_WORD_BITS
    out = np.zeros(ngroups * WAH_WORD_BITS, dtype=bool)
    pos = 0
    for kind, value, count in words:
        if kind == "fill":
            if value:
                out[pos : pos + count * WAH_WORD_BITS] = True
            pos += count * WAH_WORD_BITS
        else:
            bits = [(value >> (WAH_WORD_BITS - 1 - i)) & 1 for i in range(WAH_WORD_BITS)]
            out[pos : pos + WAH_WORD_BITS] = np.array(bits, dtype=bool)
            pos += WAH_WORD_BITS
    return out[:nbits]


@REGISTRY.register("wah_decode", "vectorized")
def _wah_decode_vectorized(words: Sequence, nbits: int) -> np.ndarray:
    ngroups = (nbits + WAH_WORD_BITS - 1) // WAH_WORD_BITS
    if not words or ngroups == 0:
        return np.zeros(nbits, dtype=bool)
    kinds, vals, counts = zip(*words)
    is_fill = np.asarray(kinds) == "fill"
    vals_arr = np.asarray(vals, dtype=np.int64)
    counts_arr = np.asarray(counts, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts_arr)[:-1]])
    # per-group payloads: literals scatter, one-fill runs flood via a
    # +1/-1 delta array (run-length to membership without any loop)
    group_pay = np.zeros(ngroups, dtype=np.int64)
    lit = ~is_fill
    group_pay[starts[lit]] = vals_arr[lit]
    ones = is_fill & (vals_arr != 0)
    if ones.any():
        delta = np.zeros(ngroups + 1, dtype=np.int64)
        np.add.at(delta, starts[ones], 1)
        np.add.at(delta, starts[ones] + counts_arr[ones], -1)
        group_pay[np.cumsum(delta[:-1]) > 0] = _FULL
    raw = (group_pay.astype(np.uint32) << 1).astype(">u4").view(np.uint8)
    bits = np.unpackbits(raw).reshape(ngroups, 32)[:, :WAH_WORD_BITS]
    return bits.reshape(-1).astype(bool)[:nbits]


@REGISTRY.register("wah_count", "naive")
def _wah_count_naive(words: Sequence) -> int:
    total = 0
    for kind, value, count in words:
        if kind == "fill":
            total += value * count * WAH_WORD_BITS
        else:
            total += bin(value).count("1")
    return total


@REGISTRY.register("wah_count", "vectorized")
def _wah_count_vectorized(words: Sequence) -> int:
    if not words:
        return 0
    kinds, vals, counts = zip(*words)
    is_fill = np.asarray(kinds) == "fill"
    vals_arr = np.asarray(vals, dtype=np.int64)
    counts_arr = np.asarray(counts, dtype=np.int64)
    fill_total = int((vals_arr * counts_arr)[is_fill].sum()) * WAH_WORD_BITS
    lits = vals_arr[~is_fill]
    if lits.size == 0:
        return fill_total
    raw = lits.astype(">u4").view(np.uint8)
    return fill_total + int(np.unpackbits(raw).sum())


# =====================================================================
# Sample-sort splitter selection
# =====================================================================

def _lerp(a: float, b: float, t: float) -> float:
    """numpy's quantile interpolation, bit for bit (incl. the t>=0.5 branch)."""
    diff = b - a
    if t >= 0.5:
        return b - diff * (1 - t)
    return a + diff * t


@REGISTRY.register("select_splitters", "naive")
def _select_splitters_naive(pool: np.ndarray, nworkers: int) -> np.ndarray:
    if nworkers <= 1:
        return np.array([])
    arr = np.sort(np.asarray(pool, dtype=float).ravel()).tolist()
    n = len(arr)
    if any(math.isnan(v) for v in arr):
        # np.quantile: one NaN poisons every quantile; np.unique then
        # collapses the all-NaN cut list to a single NaN
        return np.asarray([math.nan])
    qs = np.linspace(0, 1, nworkers + 1)[1:-1].tolist()
    cuts = []
    for q in qs:
        virtual = q * (n - 1)
        prev = math.floor(virtual)
        gamma = virtual - prev
        lo = arr[int(prev)]
        hi = arr[min(int(prev) + 1, n - 1)]
        cuts.append(_lerp(lo, hi, gamma))
    # np.unique: ascending, exact duplicates dropped, NaNs collapse to one
    finite = sorted(c for c in cuts if not math.isnan(c))
    uniq: list[float] = []
    for c in finite:
        if not uniq or c != uniq[-1]:
            uniq.append(c)
    if len(finite) != len(cuts):
        uniq.append(math.nan)
    return np.asarray(uniq, dtype=float)


@REGISTRY.register("select_splitters", "vectorized")
def _select_splitters_vectorized(pool: np.ndarray, nworkers: int) -> np.ndarray:
    if nworkers <= 1:
        return np.array([])
    qs = np.linspace(0, 1, nworkers + 1)[1:-1]
    return np.unique(np.quantile(np.asarray(pool, dtype=float), qs))


# =====================================================================
# Sample-sort row partitioning / bucket grouping
# =====================================================================

@REGISTRY.register("partition_rows", "naive")
def _partition_rows_naive(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    spl = np.asarray(splitters).tolist()
    return np.asarray(
        [bisect_right(spl, k) for k in np.asarray(keys).ravel().tolist()],
        dtype=np.intp,
    )


@REGISTRY.register("partition_rows", "vectorized")
def _partition_rows_vectorized(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    return np.searchsorted(splitters, keys, side="right")


@REGISTRY.register("group_rows", "naive")
def _group_rows_naive(data: np.ndarray, buckets: np.ndarray) -> list:
    out = []
    for b in np.unique(buckets):
        out.append((int(b), data[buckets == b]))
    return out


@REGISTRY.register("group_rows", "vectorized")
def _group_rows_vectorized(data: np.ndarray, buckets: np.ndarray) -> list:
    buckets = np.asarray(buckets)
    if buckets.size == 0:
        return []
    order = np.argsort(buckets, kind="stable")
    sorted_buckets = buckets[order]
    rows = data[order]
    uniq, starts = np.unique(sorted_buckets, return_index=True)
    bounds = np.append(starts[1:], sorted_buckets.size)
    return [
        (int(b), rows[s:e])
        for b, s, e in zip(uniq.tolist(), starts.tolist(), bounds.tolist())
    ]


# =====================================================================
# Array-merge chunk stitching
# =====================================================================

@REGISTRY.register("paste_pieces", "naive")
def _paste_pieces_naive(
    slab_shape: tuple, dtype: Any, pieces: Sequence, s_lo: int
) -> tuple:
    slab = np.zeros(slab_shape, dtype=dtype)
    filled = np.zeros(slab_shape, dtype=bool)
    for offsets, piece in pieces:
        piece = np.asarray(piece)
        base = tuple(
            (o - s_lo) if axis == 0 else o for axis, o in enumerate(offsets)
        )
        for idx in np.ndindex(piece.shape):
            dst = tuple(b + i for b, i in zip(base, idx))
            slab[dst] = piece[idx]
            filled[dst] = True
    return slab, int((~filled).sum())


@REGISTRY.register("paste_pieces", "vectorized")
def _paste_pieces_vectorized(
    slab_shape: tuple, dtype: Any, pieces: Sequence, s_lo: int
) -> tuple:
    slab = np.zeros(slab_shape, dtype=dtype)
    filled = np.zeros(slab_shape, dtype=bool)
    for offsets, piece in pieces:
        piece = np.asarray(piece)
        sel = tuple(
            slice(o - (s_lo if axis == 0 else 0), o - (s_lo if axis == 0 else 0) + d)
            for axis, (o, d) in enumerate(zip(offsets, piece.shape))
        )
        slab[sel] = piece
        filled[sel] = True
    return slab, int((~filled).sum())


# =====================================================================
# Dispatchers — the only functions operators call
# =====================================================================

def histogram1d(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """int64 counts of *values* over strictly increasing *edges*."""
    return REGISTRY.get("histogram1d")(values, edges)


def histogram2d(
    x: np.ndarray, y: np.ndarray, ex: np.ndarray, ey: np.ndarray
) -> np.ndarray:
    """int64 joint counts of ``(x, y)`` over edge grids ``(ex, ey)``."""
    return REGISTRY.get("histogram2d")(x, y, ex, ey)


def wah_encode(mask: np.ndarray) -> list:
    """WAH word list of a boolean mask."""
    return REGISTRY.get("wah_encode")(mask)


def wah_decode(words: Sequence, nbits: int) -> np.ndarray:
    """Boolean mask of length *nbits* from a WAH word list."""
    return REGISTRY.get("wah_decode")(words, nbits)


def wah_count(words: Sequence) -> int:
    """Popcount over a WAH word list (padding bits are zero)."""
    return REGISTRY.get("wah_count")(words)


def select_splitters(pool: np.ndarray, nworkers: int) -> np.ndarray:
    """Strictly increasing sample-sort splitters (``nworkers - 1`` cuts,
    deduplicated) from a sample pool."""
    return REGISTRY.get("select_splitters")(pool, nworkers)


def partition_rows(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Bucket index per key: ``searchsorted(splitters, keys, "right")``."""
    return REGISTRY.get("partition_rows")(keys, splitters)


def group_rows(data: np.ndarray, buckets: np.ndarray) -> list:
    """``(bucket, rows)`` pairs, ascending bucket, original row order."""
    return REGISTRY.get("group_rows")(data, buckets)


def paste_pieces(slab_shape: tuple, dtype: Any, pieces: Sequence, s_lo: int) -> tuple:
    """Paste ``(offsets, piece)`` blocks into a zeroed slab.

    Returns ``(slab, n_uncovered)`` where ``n_uncovered`` counts cells
    no piece ever wrote.
    """
    return REGISTRY.get("paste_pieces")(slab_shape, dtype, pieces, s_lo)
