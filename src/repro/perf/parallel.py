"""``parallel`` kernel variant: chunked kernels on a shared-memory pool.

Every kernel registered by :mod:`repro.perf.kernels` gains a third
implementation here that splits its input across a persistent
:mod:`multiprocessing` pool — real cores, not simulated ones — and
merges the per-chunk results with *order-independent, exact* combines,
so the output is bit-for-bit identical to the ``naive`` and
``vectorized`` variants no matter the worker count or chunk layout:

- histogram counts are int64 partial sums (integer addition is
  associative and exact);
- WAH word lists are encoded per 31-bit-aligned chunk and stitched by
  merging equal fill runs at the seams — exactly the run structure the
  serial encoder produces;
- sample-sort partials (``partition_rows``) concatenate per-chunk
  ``searchsorted`` results in chunk order; ``group_rows`` merges
  per-chunk groups bucket-by-bucket in chunk order, preserving the
  original row order;
- ``paste_pieces`` overlays per-chunk sub-slabs in chunk order, so
  overlapping pieces resolve exactly as the serial left-to-right paste;
- ``select_splitters`` sorts chunks in parallel, merges the sorted
  runs, and applies numpy's exact quantile interpolation.

Large array inputs travel through POSIX shared memory
(:mod:`multiprocessing.shared_memory`): the parent copies the operand
once into a segment, workers attach read-only views of their slice, and
only the small per-chunk results are pickled back.

Pool lifecycle
--------------
The pool is created lazily on the first dispatch that is worth
splitting and lives for the duration of the active ``parallel``
selection: :func:`shutdown` is registered as a registry teardown hook,
so ``with use_kernels("parallel"):`` joins every worker deterministically
on context exit (the leak-detection fixture in ``conftest.py`` enforces
this between tests).  ``REPRO_KERNEL_WORKERS`` pins the worker count
(default ``min(4, cpu_count)``); :func:`pooled` scopes an explicit
worker count, which the parity tests use to sweep pool sizes 1/2/4.

Inputs smaller than :data:`SMALL_INPUT_CUTOFF` elements are computed
in-process with the vectorized implementation (identical by
construction) — IPC latency would dwarf the work.  Tests that need to
force tiny inputs through the real pool path set the cutoff to 0 via
:func:`pooled`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.perf import kernels as K
from repro.perf.registry import REGISTRY

__all__ = [
    "SMALL_INPUT_CUTOFF",
    "configured_workers",
    "effective_workers",
    "pool_active",
    "pooled",
    "shutdown",
]

#: below this many elements a kernel runs in-process (vectorized path)
SMALL_INPUT_CUTOFF = 4096

#: default worker count when ``REPRO_KERNEL_WORKERS`` is unset
_DEFAULT_WORKERS = max(1, min(4, os.cpu_count() or 1))

_pool: Optional[Any] = None
_pool_size: int = 0
#: (workers, cutoff) overrides installed by :func:`pooled`
_override_workers: Optional[int] = None
_override_cutoff: Optional[int] = None


def configured_workers() -> int:
    """Worker count the next pool will start with."""
    if _override_workers is not None:
        return max(1, _override_workers)
    env = os.environ.get("REPRO_KERNEL_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_KERNEL_WORKERS={env!r} is not an integer"
            ) from None
    return _DEFAULT_WORKERS


def effective_workers() -> int:
    """Workers in the live pool, or what :func:`configured_workers` says."""
    return _pool_size if _pool is not None else configured_workers()


def _cutoff() -> int:
    return SMALL_INPUT_CUTOFF if _override_cutoff is None else _override_cutoff


def pool_active() -> bool:
    """True while worker processes are alive (leak-detection probe)."""
    return _pool is not None


def shutdown() -> None:
    """Join the pool deterministically (idempotent; teardown hook)."""
    global _pool, _pool_size
    if _pool is None:
        return
    pool, _pool = _pool, None
    _pool_size = 0
    pool.close()
    pool.join()


def _get_pool():
    """The live pool, (re)created to match the configured worker count."""
    global _pool, _pool_size
    want = configured_workers()
    if _pool is not None and _pool_size != want:
        shutdown()
    if _pool is None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        _pool = ctx.Pool(want)
        _pool_size = want
    return _pool


@contextmanager
def pooled(
    workers: Optional[int] = None, *, cutoff: Optional[int] = None
) -> Iterator[int]:
    """Scope a worker count (and optionally the small-input cutoff).

    Restores the previous configuration and joins the scoped pool on
    exit.  Yields the worker count in effect.
    """
    global _override_workers, _override_cutoff
    saved = (_override_workers, _override_cutoff)
    if workers is not None:
        _override_workers = workers
    if cutoff is not None:
        _override_cutoff = cutoff
    try:
        yield configured_workers()
    finally:
        _override_workers, _override_cutoff = saved
        shutdown()


REGISTRY.register_teardown("parallel", shutdown)


# =====================================================================
# shared-memory scatter
# =====================================================================

class _Scatter:
    """One contiguous array copied into a shared-memory segment.

    The handle (segment name, dtype, shape) is what workers receive;
    :meth:`close` releases and unlinks the segment once the pool map
    has returned.
    """

    __slots__ = ("shm", "handle")

    def __init__(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(arr.nbytes, 1)
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self.shm.buf)
        view[...] = arr
        del view
        self.handle = (self.shm.name, arr.dtype.str, arr.shape)

    def close(self) -> None:
        self.shm.close()
        self.shm.unlink()


def _attach(handle) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Worker side: map a scattered array (read-only by convention)."""
    name, dtype, shape = handle
    # Attaching re-registers the segment with the resource tracker; the
    # fork pool shares the parent's tracker (a name *set*), so that is a
    # no-op and the parent's unlink after the map is the sole teardown.
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Even ``[lo, hi)`` split of ``range(n)`` into *parts* chunks."""
    if n <= 0:
        return [(0, 0)]
    parts = max(1, min(parts, n))
    step = -(-n // parts)
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)]


def _map(worker, tasks: list) -> list:
    """Run *tasks* on the pool (single tasks skip the pool dispatch)."""
    if len(tasks) == 1:
        return [worker(tasks[0])]
    return _get_pool().map(worker, tasks)


def _split(arr: np.ndarray) -> Optional[tuple[_Scatter, list[tuple[int, int]]]]:
    """Scatter *arr* and plan chunk bounds; None if not worth the pool."""
    if arr.size < max(_cutoff(), 1):
        return None
    return _Scatter(arr), _bounds(arr.shape[0], configured_workers())


# =====================================================================
# workers (top-level so fork/spawn pools can import them by reference)
# =====================================================================

def _w_histogram1d(task):
    handle, lo, hi, edges = task
    shm, arr = _attach(handle)
    try:
        counts, _ = np.histogram(arr[lo:hi], bins=edges)
        return counts.astype(np.int64)
    finally:
        del arr
        shm.close()


def _w_histogram2d(task):
    hx, hy, lo, hi, ex, ey = task
    shm_x, x = _attach(hx)
    shm_y, y = _attach(hy)
    try:
        counts, _, _ = np.histogram2d(x[lo:hi], y[lo:hi], bins=(ex, ey))
        return counts
    finally:
        del x, y
        shm_x.close()
        shm_y.close()


def _w_wah_encode(task):
    handle, lo, hi = task
    shm, mask = _attach(handle)
    try:
        return K._wah_encode_vectorized(mask[lo:hi])
    finally:
        del mask
        shm.close()


def _w_wah_decode(task):
    words, span_bits = task
    return K._wah_decode_vectorized(words, span_bits)


def _w_wah_count(words):
    return K._wah_count_vectorized(words)


def _w_sort_chunk(task):
    handle, lo, hi = task
    shm, arr = _attach(handle)
    try:
        return np.sort(arr[lo:hi])
    finally:
        del arr
        shm.close()


def _w_partition_rows(task):
    handle, lo, hi, splitters = task
    shm, keys = _attach(handle)
    try:
        return np.searchsorted(splitters, keys[lo:hi], side="right")
    finally:
        del keys
        shm.close()


def _w_group_rows(task):
    hdata, hbuckets, lo, hi = task
    shm_d, data = _attach(hdata)
    shm_b, buckets = _attach(hbuckets)
    try:
        groups = K._group_rows_vectorized(data[lo:hi], buckets[lo:hi])
        # rows are views into the shared segment; copy before it unmaps
        return [(b, np.ascontiguousarray(rows)) for b, rows in groups]
    finally:
        del data, buckets
        shm_d.close()
        shm_b.close()


def _w_paste_pieces(task):
    slab_shape, dtype, pieces, s_lo = task
    slab = np.zeros(slab_shape, dtype=dtype)
    filled = np.zeros(slab_shape, dtype=bool)
    for offsets, piece in pieces:
        piece = np.asarray(piece)
        sel = tuple(
            slice(o - (s_lo if axis == 0 else 0), o - (s_lo if axis == 0 else 0) + d)
            for axis, (o, d) in enumerate(zip(offsets, piece.shape))
        )
        slab[sel] = piece
        filled[sel] = True
    return slab, filled


# =====================================================================
# parallel variants
# =====================================================================

@REGISTRY.register("histogram1d", "parallel")
def _histogram1d_parallel(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float).ravel()
    plan = _split(values)
    if plan is None:
        return K._histogram1d_vectorized(values, edges)
    scatter, bounds = plan
    try:
        edges = np.asarray(edges)
        parts = _map(
            _w_histogram1d,
            [(scatter.handle, lo, hi, edges) for lo, hi in bounds],
        )
    finally:
        scatter.close()
    # int64 partial sums: associative and exact, so the merge is
    # independent of chunk count and order
    return np.sum(parts, axis=0, dtype=np.int64)


@REGISTRY.register("histogram2d", "parallel")
def _histogram2d_parallel(
    x: np.ndarray, y: np.ndarray, ex: np.ndarray, ey: np.ndarray
) -> np.ndarray:
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size < max(_cutoff(), 1):
        return K._histogram2d_vectorized(x, y, ex, ey)
    sx, sy = _Scatter(x), _Scatter(y)
    try:
        ex, ey = np.asarray(ex), np.asarray(ey)
        tasks = [
            (sx.handle, sy.handle, lo, hi, ex, ey)
            for lo, hi in _bounds(x.shape[0], configured_workers())
        ]
        parts = _map(_w_histogram2d, tasks)
    finally:
        sx.close()
        sy.close()
    # np.histogram2d counts are integer-valued float64; their sums stay
    # exact (well under 2**53), matching the serial count before the
    # final int64 cast
    return np.sum(parts, axis=0).astype(np.int64)


@REGISTRY.register("wah_encode", "parallel")
def _wah_encode_parallel(mask: np.ndarray) -> list:
    mask = np.asarray(mask, dtype=bool).ravel()
    if mask.size < max(_cutoff(), 1):
        return K._wah_encode_vectorized(mask)
    # chunk on 31-bit group boundaries: every chunk but the last packs
    # whole words, so per-chunk encodes see exactly the groups the
    # serial encoder sees
    ngroups = (mask.size + K.WAH_WORD_BITS - 1) // K.WAH_WORD_BITS
    scatter = _Scatter(mask)
    try:
        tasks = [
            (scatter.handle, g_lo * K.WAH_WORD_BITS,
             min(g_hi * K.WAH_WORD_BITS, mask.size))
            for g_lo, g_hi in _bounds(ngroups, configured_workers())
        ]
        parts = _map(_w_wah_encode, tasks)
    finally:
        scatter.close()
    words: list = []
    for chunk in parts:
        if (
            words
            and chunk
            and words[-1][0] == "fill"
            and chunk[0][0] == "fill"
            and words[-1][1] == chunk[0][1]
        ):
            # a fill run crossing the seam: merge, as serial coding would
            words[-1] = ("fill", words[-1][1], words[-1][2] + chunk[0][2])
            words.extend(chunk[1:])
        else:
            words.extend(chunk)
    return words


@REGISTRY.register("wah_decode", "parallel")
def _wah_decode_parallel(words: Sequence, nbits: int) -> np.ndarray:
    words = list(words)
    if not words or nbits < max(_cutoff(), 1):
        return K._wah_decode_vectorized(words, nbits)
    # each word covers `count` 31-bit groups; prefix sums give every
    # chunk its exact bit offset, so per-chunk decodes concatenate into
    # the serial output
    counts = np.asarray([w[2] for w in words], dtype=np.int64)
    starts_bits = np.concatenate([[0], np.cumsum(counts)]) * K.WAH_WORD_BITS
    ngroups = (nbits + K.WAH_WORD_BITS - 1) // K.WAH_WORD_BITS
    tasks = []
    for lo, hi in _bounds(len(words), configured_workers()):
        span = int(
            min(starts_bits[hi], ngroups * K.WAH_WORD_BITS) - starts_bits[lo]
        )
        tasks.append((words[lo:hi], span))
    parts = _map(_w_wah_decode, tasks)
    return np.concatenate(parts)[:nbits]


@REGISTRY.register("wah_count", "parallel")
def _wah_count_parallel(words: Sequence) -> int:
    words = list(words)
    if len(words) < max(_cutoff(), 1) // K.WAH_WORD_BITS:
        return K._wah_count_vectorized(words)
    tasks = [words[lo:hi] for lo, hi in _bounds(len(words), configured_workers())]
    return int(sum(_map(_w_wah_count, tasks)))


@REGISTRY.register("select_splitters", "parallel")
def _select_splitters_parallel(pool: np.ndarray, nworkers: int) -> np.ndarray:
    if nworkers <= 1:
        return np.array([])
    arr = np.asarray(pool, dtype=float).ravel()
    if arr.size < max(_cutoff(), 1):
        return K._select_splitters_vectorized(arr, nworkers)
    if np.isnan(arr).any():
        # np.quantile: one NaN poisons every cut; np.unique collapses
        # the all-NaN list to a single NaN (see the naive reference)
        return np.asarray([math.nan])
    scatter, bounds = _Scatter(arr), _bounds(arr.shape[0], configured_workers())
    try:
        runs = _map(
            _w_sort_chunk, [(scatter.handle, lo, hi) for lo, hi in bounds]
        )
    finally:
        scatter.close()
    # timsort exploits the pre-sorted runs: the concatenate+stable-sort
    # is effectively a k-way merge
    s = np.sort(np.concatenate(runs), kind="stable")
    n = s.size
    qs = np.linspace(0, 1, nworkers + 1)[1:-1]
    virtual = qs * (n - 1)
    prev = np.floor(virtual).astype(np.intp)
    gamma = virtual - prev
    lo = s[prev]
    hi = s[np.minimum(prev + 1, n - 1)]
    with np.errstate(invalid="ignore", over="ignore"):
        # numpy's two-branch linear interpolation, bit for bit
        diff = hi - lo
        cuts = np.where(gamma >= 0.5, hi - diff * (1 - gamma), lo + diff * gamma)
    return np.unique(cuts)


@REGISTRY.register("partition_rows", "parallel")
def _partition_rows_parallel(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys)
    plan = _split(keys.ravel())
    if plan is None:
        return K._partition_rows_vectorized(keys, splitters)
    scatter, bounds = plan
    try:
        splitters = np.asarray(splitters)
        parts = _map(
            _w_partition_rows,
            [(scatter.handle, lo, hi, splitters) for lo, hi in bounds],
        )
    finally:
        scatter.close()
    return np.concatenate(parts)


@REGISTRY.register("group_rows", "parallel")
def _group_rows_parallel(data: np.ndarray, buckets: np.ndarray) -> list:
    data = np.asarray(data)
    buckets = np.asarray(buckets)
    if buckets.size == 0:
        return []
    if buckets.size < max(_cutoff(), 1):
        return K._group_rows_vectorized(data, buckets)
    sd, sb = _Scatter(data), _Scatter(buckets)
    try:
        tasks = [
            (sd.handle, sb.handle, lo, hi)
            for lo, hi in _bounds(buckets.shape[0], configured_workers())
        ]
        parts = _map(_w_group_rows, tasks)
    finally:
        sd.close()
        sb.close()
    # merge per-chunk groups in chunk order: within a bucket the chunks
    # are disjoint, in-order row ranges, so concatenation reproduces the
    # serial original-order guarantee
    merged: dict[int, list[np.ndarray]] = {}
    for chunk in parts:
        for b, rows in chunk:
            merged.setdefault(b, []).append(rows)
    return [
        (b, pieces[0] if len(pieces) == 1 else np.concatenate(pieces))
        for b, pieces in sorted(merged.items())
    ]


@REGISTRY.register("paste_pieces", "parallel")
def _paste_pieces_parallel(
    slab_shape: tuple, dtype: Any, pieces: Sequence, s_lo: int
) -> tuple:
    pieces = list(pieces)
    cells = int(np.prod(slab_shape)) if slab_shape else 1
    if len(pieces) < 2 or cells < max(_cutoff(), 1):
        return K._paste_pieces_vectorized(slab_shape, dtype, pieces, s_lo)
    tasks = [
        (slab_shape, dtype, pieces[lo:hi], s_lo)
        for lo, hi in _bounds(len(pieces), configured_workers())
    ]
    parts = _map(_w_paste_pieces, tasks)
    slab = np.zeros(slab_shape, dtype=dtype)
    filled = np.zeros(slab_shape, dtype=bool)
    # overlay in chunk order: later chunks overwrite earlier ones,
    # exactly like the serial left-to-right paste resolves overlaps
    for part_slab, part_filled in parts:
        slab[part_filled] = part_slab[part_filled]
        filled |= part_filled
    return slab, int((~filled).sum())
