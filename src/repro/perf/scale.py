"""Weak-scaling benchmark: the event engine at Jaguar-scale rank counts.

PreDatA's evaluation regime is 10k–100k+ MPI ranks (§V.B); the
simulation only reproduces it if the discrete-event core survives that
many concurrent rank processes.  :func:`bench_scale` drives a synthetic
but representative staging workload — per-node applications cycling
through communication phases while every rank's fetch admission goes
through :meth:`~repro.core.scheduler.MovementScheduler.wait_clear` —
at 10k/50k/100k ranks and records events/second per point.

Every scale point is run twice:

- the **optimized** path — calendar queue with batched bucket drains,
  batched scheduler wakeups, numpy :class:`~repro.core.accounting.RankLedger`
  bookkeeping;
- the **reference** path — binary-heap queue (per-pop loop), legacy
  per-waiter wakeups, plain-dict bookkeeping.

Both must produce the *same fingerprint* (sha256 over final simulated
time, the per-rank visible-seconds array, and the scheduler's deferral
counters).  The fingerprint match is emitted as a floor metric, so
``python -m repro perf scale`` fails on any observable divergence even
without a baseline; events/second and the weak-scaling ratio are
``guards`` compared against the committed ``BENCH_scale.json``.
"""

from __future__ import annotations

import hashlib
import struct
import time
from typing import Generator, Iterable, Optional

import numpy as np

from repro.core.accounting import RankLedger

__all__ = ["bench_scale", "DEFAULT_RANKS"]

#: default weak-scaling points (MPI rank counts)
DEFAULT_RANKS = (10_000, 50_000, 100_000)


class _DictDepth(dict):
    """Plain-dict stand-in for the scheduler's RankLedger (reference)."""

    def add(self, rank: int, amount: int) -> None:
        self[rank] = self.get(rank, 0) + amount


def _run_point(
    nranks: int,
    cycles: int,
    ranks_per_node: int,
    seed: int,
    *,
    reference: bool,
) -> dict:
    """One scale point; returns timing + fingerprint inputs."""
    from repro.core.scheduler import MovementScheduler
    from repro.sim.engine import Engine

    nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
    rng = np.random.default_rng(seed)
    # deterministic per-node comm-phase shapes and per-rank start jitter
    comm_len = np.round(0.5 + rng.random(nnodes), 6)
    gap_len = np.round(0.5 + rng.random(nnodes), 6)
    jitter = np.round(rng.random(nranks) * 0.25, 6)

    eng = Engine(queue="heap" if reference else "calendar")
    sched = MovementScheduler(
        eng, max_defer=1.0, batch_wakeups=not reference
    )
    if reference:
        sched._depth = _DictDepth()
    visible: dict = {} if reference else RankLedger(dtype="float64")

    def app(node: int) -> Generator:
        for _ in range(cycles):
            sched.enter_comm_phase(node)
            yield eng.timeout(comm_len[node].item())
            sched.exit_comm_phase(node)
            yield eng.timeout(gap_len[node].item())

    def rank_proc(rank: int) -> Generator:
        node = rank // ranks_per_node
        for _ in range(cycles):
            yield eng.timeout(jitter[rank].item())
            deferred = yield from sched.wait_clear(node)
            if reference:
                visible[rank] = visible.get(rank, 0.0) + deferred
            else:
                visible.add(rank, deferred)

    t0 = time.perf_counter()
    for node in range(nnodes):
        eng.process(app(node), name=f"app-{node}")
    for rank in range(nranks):
        eng.process(rank_proc(rank), name=f"rank-{rank}")
    eng.run()
    elapsed = time.perf_counter() - t0

    if reference:
        dense = np.zeros(nranks, dtype=np.float64)
        for r, v in visible.items():
            dense[r] = v
    else:
        dense = visible.dense(nranks)
    h = hashlib.sha256()
    h.update(struct.pack("<d", eng.now))
    h.update(dense.tobytes())
    h.update(struct.pack("<q", sched.deferred_fetches))
    h.update(struct.pack("<d", sched.total_defer_seconds))
    return {
        "events": eng._seq,
        "seconds": elapsed,
        "sim_now": eng.now,
        "deferred_fetches": sched.deferred_fetches,
        "total_defer_seconds": sched.total_defer_seconds,
        "fingerprint": h.hexdigest(),
    }


def bench_scale(
    ranks: Optional[Iterable[int]] = None,
    cycles: int = 2,
    ranks_per_node: int = 128,
    seed: int = 13,
) -> dict:
    """Weak-scaling sweep; every point cross-checked vs the reference.

    Guards: absolute events/second at the largest point (the satellite
    regression bound), the weak-scaling throughput ratio largest/
    smallest, and — as an always-enforced floor — fingerprint equality
    between the optimized and reference engine paths.
    """
    rank_points = sorted(dict.fromkeys(int(r) for r in (ranks or DEFAULT_RANKS)))
    points: dict[str, dict] = {}
    all_match = True
    for nranks in rank_points:
        fast = _run_point(
            nranks, cycles, ranks_per_node, seed, reference=False
        )
        ref = _run_point(
            nranks, cycles, ranks_per_node, seed, reference=True
        )
        match = fast["fingerprint"] == ref["fingerprint"]
        all_match = all_match and match
        points[str(nranks)] = {
            **fast,
            "events_per_sec": fast["events"] / max(fast["seconds"], 1e-9),
            "reference_seconds": ref["seconds"],
            "reference_fingerprint": ref["fingerprint"],
            "fingerprint_match": match,
        }
    lo, hi = str(rank_points[0]), str(rank_points[-1])
    eps_hi = points[hi]["events_per_sec"]
    guards = {
        f"events_per_sec_{hi}": eps_hi,
        "weak_scaling_ratio": eps_hi / max(points[lo]["events_per_sec"], 1e-9),
        "fingerprint_match:reference": 1.0 if all_match else 0.0,
    }
    return {
        "bench": "scale",
        "ranks": rank_points,
        "cycles": cycles,
        "ranks_per_node": ranks_per_node,
        "seed": seed,
        "points": points,
        "guards": guards,
        "floors": {
            "fingerprint_match:reference": {
                "floor": 1.0,
                "measured": 1.0 if all_match else 0.0,
            }
        },
    }
