"""EVPath-style event-path middleware (§IV: the staging area's
buffering/manipulation substrate).

The paper builds PreDatA's staging internals on EVPath [17], an event
system in which *stones* — small processing elements — are composed
into dataflow graphs: events submitted at a source stone flow through
filters, transforms, splits and routers to terminal handlers, possibly
crossing nodes through bridge stones.

This package provides that substrate on the simulation engine:

- :class:`~repro.evpath.graph.EventGraph` builds stone graphs;
- terminal / filter / transform / split / router stones process events
  inline (with optional per-event simulated cost);
- queue stones decouple submitters from downstream work through a
  bounded buffer drained by a worker process (back-pressure included);
- bridge stones move events between machine nodes, charging the
  network model for the event's wire size.

It is exercised directly by tests and available for building custom
staging pipelines beyond the Map/Reduce skeleton.
"""

from repro.evpath.graph import EventGraph, Stone

__all__ = ["EventGraph", "Stone"]
