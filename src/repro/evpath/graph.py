"""Stone graphs: composable event dataflow on the simulation engine.

Submission is a process body: ``yield from graph.submit(stone, event)``
walks the graph depth-first, yielding for any simulated costs (handler
work, bridge transfers) and blocking on full queue stones — which is
how back-pressure propagates to the submitter, exactly the property
PreDatA's bounded staging buffers rely on.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional, Sequence

from repro.machine.network import Network
from repro.mpi.datasize import nbytes_of
from repro.sim.engine import Engine
from repro.sim.resources import Store

__all__ = ["Stone", "EventGraph"]


class Stone:
    """One processing element of an event graph."""

    def __init__(self, graph: "EventGraph", kind: str, stone_id: int):
        self.graph = graph
        self.kind = kind
        self.id = stone_id
        self.events_in = 0
        self.events_out = 0

    def _deliver(self, event: Any) -> Generator:  # pragma: no cover
        raise NotImplementedError
        yield

    def __repr__(self) -> str:
        return f"Stone(id={self.id}, kind={self.kind!r})"


class _Terminal(Stone):
    def __init__(self, graph, stone_id, handler, cost_seconds):
        super().__init__(graph, "terminal", stone_id)
        self.handler = handler
        self.cost_seconds = cost_seconds

    def _deliver(self, event):
        self.events_in += 1
        if self.cost_seconds:
            yield self.graph.env.timeout(self.cost_seconds(event))
        self.handler(event)


class _Filter(Stone):
    def __init__(self, graph, stone_id, predicate, target):
        super().__init__(graph, "filter", stone_id)
        self.predicate = predicate
        self.target = target

    def _deliver(self, event):
        self.events_in += 1
        if self.predicate(event):
            self.events_out += 1
            yield from self.target._deliver(event)


class _Transform(Stone):
    def __init__(self, graph, stone_id, fn, target):
        super().__init__(graph, "transform", stone_id)
        self.fn = fn
        self.target = target

    def _deliver(self, event):
        self.events_in += 1
        out = self.fn(event)
        if out is not None:
            self.events_out += 1
            yield from self.target._deliver(out)


class _Split(Stone):
    def __init__(self, graph, stone_id, targets):
        super().__init__(graph, "split", stone_id)
        self.targets = list(targets)

    def _deliver(self, event):
        self.events_in += 1
        self.events_out += len(self.targets)
        for t in self.targets:
            yield from t._deliver(event)


class _Router(Stone):
    def __init__(self, graph, stone_id, route_fn, targets):
        super().__init__(graph, "router", stone_id)
        self.route_fn = route_fn
        self.targets = list(targets)

    def _deliver(self, event):
        self.events_in += 1
        idx = self.route_fn(event)
        if idx is None:
            return
        self.events_out += 1
        yield from self.targets[idx % len(self.targets)]._deliver(event)


class _Queue(Stone):
    """Bounded buffer + worker: decouples submitter from downstream."""

    def __init__(self, graph, stone_id, target, capacity):
        super().__init__(graph, "queue", stone_id)
        self.target = target
        self.store = Store(graph.env, capacity=capacity)
        self._worker = graph.env.process(
            self._drain(), name=f"evpath-queue[{stone_id}]"
        )

    def _drain(self):
        while True:
            event = yield self.store.get()
            if event is _STOP:
                return
            self.events_out += 1
            yield from self.target._deliver(event)

    def _deliver(self, event):
        self.events_in += 1
        yield self.store.put(event)  # blocks when the queue is full

    def close(self) -> None:
        """Stop the worker once the queue drains."""
        self.store.put(_STOP)

    @property
    def depth(self) -> int:
        return len(self.store)


class _Bridge(Stone):
    """Cross-node hop: charges the network for the event's size."""

    def __init__(self, graph, stone_id, src_node, dst_node, network, target,
                 wire_scale):
        super().__init__(graph, "bridge", stone_id)
        self.src_node = src_node
        self.dst_node = dst_node
        self.network = network
        self.target = target
        self.wire_scale = wire_scale
        self.bytes_moved = 0.0

    def _deliver(self, event):
        self.events_in += 1
        nbytes = nbytes_of(event) * self.wire_scale
        yield from self.network.transfer(self.src_node, self.dst_node, nbytes)
        self.bytes_moved += nbytes
        self.events_out += 1
        yield from self.target._deliver(event)


_STOP = object()


class EventGraph:
    """Factory/owner of a stone dataflow graph."""

    def __init__(self, env: Engine):
        self.env = env
        self._ids = itertools.count()
        self.stones: list[Stone] = []

    def _add(self, stone: Stone) -> Stone:
        self.stones.append(stone)
        return stone

    # -- constructors -----------------------------------------------------
    def terminal(
        self,
        handler: Callable[[Any], None],
        cost_seconds: Optional[Callable[[Any], float]] = None,
    ) -> Stone:
        """Sink stone: invokes *handler* per event (after optional cost)."""
        return self._add(
            _Terminal(self, next(self._ids), handler, cost_seconds)
        )

    def filter(self, predicate: Callable[[Any], bool], target: Stone) -> Stone:
        """Pass events satisfying *predicate* to *target*."""
        return self._add(_Filter(self, next(self._ids), predicate, target))

    def transform(self, fn: Callable[[Any], Any], target: Stone) -> Stone:
        """Map events through *fn*; None results are dropped."""
        return self._add(_Transform(self, next(self._ids), fn, target))

    def split(self, targets: Sequence[Stone]) -> Stone:
        """Fan each event out to every target."""
        if not targets:
            raise ValueError("split needs at least one target")
        return self._add(_Split(self, next(self._ids), targets))

    def router(
        self,
        route_fn: Callable[[Any], Optional[int]],
        targets: Sequence[Stone],
    ) -> Stone:
        """Send each event to ``targets[route_fn(event)]`` (None drops)."""
        if not targets:
            raise ValueError("router needs at least one target")
        return self._add(_Router(self, next(self._ids), route_fn, targets))

    def queue(self, target: Stone, capacity: int = 16) -> "_Queue":
        """Bounded asynchronous buffer in front of *target*."""
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        return self._add(_Queue(self, next(self._ids), target, capacity))

    def bridge(
        self,
        src_node: int,
        dst_node: int,
        network: Network,
        target: Stone,
        *,
        wire_scale: float = 1.0,
    ) -> Stone:
        """Cross-node hop charging the interconnect model."""
        if wire_scale <= 0:
            raise ValueError("wire_scale must be positive")
        return self._add(
            _Bridge(self, next(self._ids), src_node, dst_node, network,
                    target, wire_scale)
        )

    # -- submission ----------------------------------------------------------
    def submit(self, stone: Stone, event: Any) -> Generator:
        """Process body: push *event* into the graph at *stone*."""
        yield from stone._deliver(event)
