"""Fig. 11 — read time of one global array: merged vs unmerged BP files.

The paper reads one global array of one time step out of two ~80 GB
BP files produced by 4096-compute-core Pixie3D runs: one written
directly from compute nodes ('unmerged' — the array scattered over
4096 small chunks) and one written from the Staging Area after the
array-merge operator ('merged' — a handful of large contiguous
chunks).  Reorganisation yields ~10x faster reads.

This experiment has two halves:

1. *functional*: a representative-scale run through both transports,
   verifying that both files reassemble to the identical global array
   and counting their extents;
2. *timing*: the file-system model prices reading one array at the
   full 4096-writer geometry (extent counts taken from the logical
   layout) for each of the eight Pixie3D variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.pixie3d import PIXIE3D_VARS, Pixie3DConfig
from repro.experiments.report import fmt_seconds, format_table
from repro.experiments.runner import run_pixie3d
from repro.machine.filesystem import ParallelFileSystem
from repro.machine.presets import JAGUAR_XT4
from repro.sim.engine import Engine

__all__ = ["Fig11Row", "run_fig11", "main"]


@dataclass
class Fig11Row:
    var: str
    array_bytes: float
    extents_unmerged: int
    extents_merged: int
    read_unmerged: float
    read_merged: float

    @property
    def speedup(self) -> float:
        return self.read_unmerged / self.read_merged


@dataclass
class Fig11Result:
    rows: list[Fig11Row]
    functional_identical: bool
    rep_extents_unmerged: int
    rep_extents_merged: int


def _model_read(
    extents: int, nbytes: float, nclients: int = 1, stripes: int = None
) -> float:
    """Price one array read against a fresh XT4 file-system model.

    A merged file's few large contiguous chunks stream from many OSTs
    concurrently (wide effective striping); an unmerged file's
    thousands of small chunks each pay a seek/dispatch and read at
    default striping.
    """
    eng = Engine()
    fs = ParallelFileSystem(eng, JAGUAR_XT4.filesystem, interference=False)

    def reader():
        t = yield from fs.read(
            nbytes, nclients=nclients, extents=extents,
            stripes=stripes, metadata_ops=1,
        )
        return t

    p = eng.process(reader())
    eng.run()
    return p.value


def run_fig11(
    *,
    writers_logical: int = 4096,
    staging_procs_logical: int = 32,
    local_size: int = 32,
    rep_cores: int = 512,
    nclients: int = 1,
    functional: bool = True,
) -> Fig11Result:
    """Build the Fig. 11 comparison.

    ``writers_logical`` and ``staging_procs_logical`` define the file
    geometry of the paper's 4096-core runs (128:1 staging ratio,
    2 procs/staging node -> 32 staging writers).
    """
    # ---- functional half: representative run through both transports
    identical = True
    rep_unmerged = rep_merged = 0
    if functional:
        ic = run_pixie3d(
            rep_cores, "incompute", collect_files=True,
            ndumps=1, iterations_per_dump=2, collective_rounds=2,
            fs_interference=False,
        )
        st = run_pixie3d(
            rep_cores, "staging", collect_files=True,
            ndumps=1, iterations_per_dump=2, collective_rounds=2,
            fs_interference=False,
        )
        unmerged, merged = ic.unmerged_file, st.merged_file
        rep_unmerged = unmerged.extents_for("rho", 0)
        rep_merged = merged.extents_for("rho", 0)
        for var in PIXIE3D_VARS:
            a = unmerged.read_global_array(var, 0)
            b = merged.read_global_array(var, 0)
            if not np.array_equal(a, b):
                identical = False

    # ---- timing half at the paper's logical geometry
    cfg = Pixie3DConfig(local_size=local_size)
    array_bytes = writers_logical * local_size**3 * 8
    rows = []
    fs_cfg = JAGUAR_XT4.filesystem
    for var in PIXIE3D_VARS:
        t_un = _model_read(
            writers_logical, array_bytes, nclients,
            stripes=fs_cfg.stripe_count,
        )
        t_me = _model_read(
            staging_procs_logical, array_bytes, nclients,
            stripes=min(fs_cfg.n_osts, staging_procs_logical * 4),
        )
        rows.append(
            Fig11Row(
                var=var,
                array_bytes=array_bytes,
                extents_unmerged=writers_logical,
                extents_merged=staging_procs_logical,
                read_unmerged=t_un,
                read_merged=t_me,
            )
        )
    return Fig11Result(rows, identical, rep_unmerged, rep_merged)


def main(**kw) -> str:
    """Print the Fig. 11 table; returns the formatted text."""
    res = run_fig11(**kw)
    text = format_table(
        ["var", "bytes", "extents unmerged", "extents merged",
         "read unmerged", "read merged", "speedup"],
        [
            [
                r.var,
                f"{r.array_bytes / 1e9:.2f} GB",
                r.extents_unmerged,
                r.extents_merged,
                fmt_seconds(r.read_unmerged),
                fmt_seconds(r.read_merged),
                f"{r.speedup:.1f}x",
            ]
            for r in res.rows
        ],
        title=(
            "Fig. 11 — read one global array / one step, merged vs "
            f"unmerged (functional files identical: {res.functional_identical})"
        ),
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
