"""Fig. 9 — DataSpaces setup, hashing and query time.

Reproduces §V.B.4: GTC particles are sorted, then indexed by
DataSpaces on their ``(local id, rank)`` attributes into a 2-D domain
distributed over the staging servers.  A querying application on
additional compute cores partitions the domain and issues 11
consecutive queries to disjoint ~200 MB sub-regions.  The first query
carries one-time setup (hashing, discovery, routing); subsequent
queries are much faster.  Query time grows with the number of querying
cores because the (weak-scaled) domain grows and maps onto more
staging cores.

Paper reference points: data fetch 20.3 s, sorting 30.6 s, indexing
2.08 s (all well inside the 120 s I/O interval); all queries answered
in <80 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dataspaces import DataSpaces, DSQueryStats, Region
from repro.experiments.report import fmt_seconds, format_table
from repro.machine.machine import Machine
from repro.machine.presets import JAGUAR_XT5
from repro.sim.engine import Engine

__all__ = ["Fig9Row", "run_fig9", "main"]

#: logical rows per querying core (~200 MB = 100k x 256 x 8 B)
ROWS_PER_CORE_LOGICAL = 100_000
FUNCTIONAL_ROWS_PER_CORE = 64
N_QUERIES = 11


@dataclass
class Fig9Row:
    """Per querying-core-count averages (the Fig. 9 series)."""

    n_query_cores: int
    n_servers: int
    setup_seconds: float  # first-query one-time cost (avg/core)
    hashing_seconds: float  # index hashing (avg/core, first query)
    query_seconds: float  # steady-state query (avg over 10 later)
    index_seconds: float  # time to insert the domain into DataSpaces
    all_queries_seconds: float  # wall time until every core finished


def run_fig9(
    n_query_cores_list: Optional[list[int]] = None,
    *,
    index_seconds_per_cell: float = 1.2e-8,
    seed: int = 3,
) -> list[Fig9Row]:
    """Run the DataSpaces experiment for each querying-core count."""
    rows = []
    for q in n_query_cores_list or [32, 64, 128, 256]:
        rows.append(_one_scale(q, index_seconds_per_cell, seed))
    return rows


def _one_scale(q: int, index_seconds_per_cell: float, seed: int) -> Fig9Row:
    nservers = max(4, q // 8)
    eng = Engine()
    machine = Machine(
        eng,
        n_compute_nodes=q,
        n_staging_nodes=max(1, nservers // 2),
        spec=JAGUAR_XT5,
        fs_interference=False,
    )
    server_nodes = [
        list(machine.staging_node_ids)[i % machine.n_staging_nodes]
        for i in range(nservers)
    ]
    wire_scale = ROWS_PER_CORE_LOGICAL / FUNCTIONAL_ROWS_PER_CORE
    ds = DataSpaces(
        eng,
        machine,
        server_nodes,
        wire_scale=wire_scale,
        blocks_per_server=8,
        hash_seconds_per_block=0.01,
        serve_bandwidth=0.25e9,
        setup_server_seconds=0.02,
        reply_overhead_seconds=0.02,
    )
    rows_func = q * FUNCTIONAL_ROWS_PER_CORE
    ds.declare("particles", (rows_func, 256))
    rng = np.random.default_rng(seed)
    domain = rng.random((rows_func, 256))

    # ---- indexing: each server inserts its slice of the sorted data
    index_done = {}

    def indexer(server: int):
        lo = server * rows_func // nservers
        hi = (server + 1) * rows_func // nservers
        if hi <= lo:
            return
        region = Region((lo, 0), (hi, 256))
        yield from ds.put(
            server_nodes[server], "particles", region,
            domain[lo:hi],
        )
        # per-entry index insertion cost at logical scale
        cells_logical = (hi - lo) * 256 * wire_scale
        yield eng.timeout(cells_logical * index_seconds_per_cell / nservers)
        index_done[server] = eng.now

    t_index_start = eng.now
    for s in range(nservers):
        eng.process(indexer(s), name=f"index[{s}]")
    eng.run()
    index_seconds = max(index_done.values()) - t_index_start

    # ---- querying application
    stats_first: list[DSQueryStats] = []
    stats_later: list[DSQueryStats] = []
    finished = {}

    def query_core(core: int):
        lo = core * rows_func // q
        hi = (core + 1) * rows_func // q
        span = max((hi - lo) // N_QUERIES, 1)
        for k in range(N_QUERIES):
            qlo = lo + k * span
            qhi = min(lo + (k + 1) * span, hi)
            if qhi <= qlo:
                break
            stats = DSQueryStats()
            yield from ds.get(
                core, "particles", Region((qlo, 0), (qhi, 256)), stats=stats
            )
            (stats_first if k == 0 else stats_later).append(stats)
        finished[core] = eng.now

    t_q_start = eng.now
    for c in range(q):
        eng.process(query_core(c), name=f"query[{c}]")
    eng.run()

    return Fig9Row(
        n_query_cores=q,
        n_servers=nservers,
        setup_seconds=float(
            np.mean([s.setup_seconds for s in stats_first])
        ),
        hashing_seconds=float(
            np.mean([s.hashing_seconds for s in stats_first])
        ),
        query_seconds=float(
            np.mean([s.query_seconds for s in stats_later])
        ),
        index_seconds=index_seconds,
        all_queries_seconds=max(finished.values()) - t_q_start,
    )


def main(n_query_cores_list: Optional[list[int]] = None, **kw) -> str:
    """Print the Fig. 9 table; returns the formatted text."""
    rows = run_fig9(n_query_cores_list, **kw)
    text = format_table(
        ["query cores", "servers", "setup", "hashing", "query",
         "indexing", "all queries done"],
        [
            [
                r.n_query_cores,
                r.n_servers,
                fmt_seconds(r.setup_seconds),
                fmt_seconds(r.hashing_seconds),
                fmt_seconds(r.query_seconds),
                fmt_seconds(r.index_seconds),
                fmt_seconds(r.all_queries_seconds),
            ]
            for r in rows
        ],
        title="Fig. 9 — DataSpaces setup, hashing and query time",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
