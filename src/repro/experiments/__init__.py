"""Experiment harness: one module per figure of the paper's §V.

Each ``fig*`` module exposes a ``run_*`` function that executes the
experiment at (scaled-down but ratio-faithful) configurations and
returns structured rows, plus a ``main()`` that prints the same
series the paper plots.  ``benchmarks/`` wraps these with
pytest-benchmark and asserts the paper's shape claims.

Representative-rank methodology (see DESIGN.md): runs at paper scales
simulate ``R`` representative MPI ranks standing for ``P`` logical
ranks.  Per-rank quantities (output volume, staging load, NIC traffic)
are kept at full scale; collective cost models price the logical
``P``-rank job via ``World.model_size``; machine-wide shared resources
(file-system aggregate bandwidth) are scaled by ``R/P`` so each
representative's share is faithful.
"""

from repro.experiments.runner import (
    GTCRunResult,
    Pixie3DRunResult,
    gtc_operators,
    run_gtc,
    run_pixie3d,
)
from repro.experiments.report import format_table

__all__ = [
    "GTCRunResult",
    "Pixie3DRunResult",
    "format_table",
    "gtc_operators",
    "run_gtc",
    "run_pixie3d",
]
