"""Fig. 8 — GTC simulation performance, In-Compute-Node vs Staging.

Fig. 8(b): total execution time and its breakdown (main loop,
operations, visible I/O) for both configurations at 512..16,384 cores.
Fig. 8(a): the Staging configuration's improvement in total execution
time (paper: 2.7 %–5.1 %) and the saving in total CPU usage (wall time
x cores, with the Staging configuration billed for its extra 1.5 %
staging cores).

All three GTC operations run together (sorting + histogram +
2-D histogram on both species), matching the production configuration
the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.operator import PreDatAOperator
from repro.experiments.report import fmt_pct, fmt_seconds, format_table
from repro.experiments.runner import gtc_operators, gtc_scales, run_gtc

__all__ = ["Fig8Row", "run_fig8", "main"]


def _all_operations(which: str, filesystem=None) -> list[PreDatAOperator]:
    """All three §V.B operations together (ignores the *which* key)."""
    ops: list[PreDatAOperator] = []
    for op_kind in ("sort", "histogram", "histogram2d"):
        ops.extend(gtc_operators(op_kind, filesystem))
    return ops


@dataclass
class Fig8Row:
    """One scale's paired measurement."""

    cores: int
    total_incompute: float
    total_staging: float
    mainloop_incompute: float
    mainloop_staging: float
    ops_incompute: float
    io_incompute: float
    io_staging: float
    improvement_pct: float
    cpu_incompute: float
    cpu_staging: float
    cpu_saving_pct: float
    interference_pct: float  # staging main-loop slowdown vs in-compute


def run_fig8(
    scales: Optional[list[int]] = None,
    *,
    ndumps: int = 2,
    iterations_per_dump: int = 4,
    compute_seconds_per_iteration: float = 27.0,
    **run_kwargs,
) -> list[Fig8Row]:
    """Run GTC at each scale in both configurations (all operations)."""
    rows = []
    for cores in scales or gtc_scales():
        ic = run_gtc(
            cores, "incompute", "all",
            operators_factory=_all_operations,
            ndumps=ndumps,
            iterations_per_dump=iterations_per_dump,
            compute_seconds_per_iteration=compute_seconds_per_iteration,
            **run_kwargs,
        )
        st = run_gtc(
            cores, "staging", "all",
            operators_factory=_all_operations,
            ndumps=ndumps,
            iterations_per_dump=iterations_per_dump,
            compute_seconds_per_iteration=compute_seconds_per_iteration,
            **run_kwargs,
        )
        im, sm = ic.metrics, st.metrics
        improvement = (im.total - sm.total) / im.total
        cpu_saving = (ic.cpu_seconds - st.cpu_seconds) / ic.cpu_seconds
        interference = (sm.main_loop - im.main_loop) / im.main_loop
        rows.append(
            Fig8Row(
                cores=cores,
                total_incompute=im.total,
                total_staging=sm.total,
                mainloop_incompute=im.main_loop,
                mainloop_staging=sm.main_loop,
                ops_incompute=im.operations,
                io_incompute=im.io_blocking,
                io_staging=sm.io_blocking,
                improvement_pct=improvement,
                cpu_incompute=ic.cpu_seconds,
                cpu_staging=st.cpu_seconds,
                cpu_saving_pct=cpu_saving,
                interference_pct=interference,
            )
        )
    return rows


def main(scales: Optional[list[int]] = None, **run_kwargs) -> str:
    """Print the Fig. 8 tables; returns the formatted text."""
    rows = run_fig8(scales, **run_kwargs)
    t1 = format_table(
        ["cores", "total IC", "total ST", "main IC", "main ST",
         "ops IC", "io IC", "io ST"],
        [
            [
                r.cores,
                fmt_seconds(r.total_incompute),
                fmt_seconds(r.total_staging),
                fmt_seconds(r.mainloop_incompute),
                fmt_seconds(r.mainloop_staging),
                fmt_seconds(r.ops_incompute),
                fmt_seconds(r.io_incompute),
                fmt_seconds(r.io_staging),
            ]
            for r in rows
        ],
        title="Fig. 8(b) — GTC total execution time breakdown",
    )
    t2 = format_table(
        ["cores", "time improvement", "CPU saving", "interference"],
        [
            [
                r.cores,
                fmt_pct(r.improvement_pct),
                fmt_pct(r.cpu_saving_pct),
                fmt_pct(r.interference_pct),
            ]
            for r in rows
        ],
        title="Fig. 8(a) — Staging improvement over In-Compute-Node",
    )
    text = t1 + "\n\n" + t2
    print(text)
    return text


if __name__ == "__main__":
    main()
