"""Fig. 7 — timing of individual operations, both placements.

Reproduces Fig. 7(a)-(f): for each GTC operation (sort, histogram,
2-D histogram) and each scale from 512 to 16,384 compute cores, the
operation's time broken into computation / communication / I/O in the
In-Compute-Node configuration, and the staging-pipeline phase times +
completion latency in the Staging configuration.

Paper shape claims this experiment reproduces:

- sorting is communication-dominant; its In-Compute-Node cost grows
  with scale and is visible to the simulation, while the Staging cost
  stays bounded (paper: <= ~33 s) and well inside the 120 s I/O
  interval — at the price of ~2 orders of magnitude more latency;
- histograms are computation-dominant with a visible result-file
  write in the In-Compute-Node configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.report import fmt_seconds, format_table
from repro.experiments.runner import gtc_scales, run_gtc

__all__ = ["Fig7Row", "run_fig7", "main", "OPERATIONS"]

OPERATIONS = ("sort", "histogram", "histogram2d")


@dataclass
class Fig7Row:
    """One (operation, scale, placement) measurement."""

    operation: str
    cores: int
    placement: str
    compute: float
    communicate: float
    io: float
    movement: float  # staging-side data fetch (0 for in-compute)
    total: float  # operation time (excl. movement), the Fig. 7 y-axis
    latency: float  # dump start -> results available


def run_fig7(
    operation: str,
    scales: Optional[list[int]] = None,
    **run_kwargs,
) -> list[Fig7Row]:
    """Run one operation across scales in both placements."""
    rows: list[Fig7Row] = []
    for cores in scales or gtc_scales():
        ic = run_gtc(cores, "incompute", operation, **run_kwargs)
        compute = sum(t.compute for t in ic.in_compute_timings.values())
        communicate = sum(t.communicate for t in ic.in_compute_timings.values())
        io = sum(t.io for t in ic.in_compute_timings.values())
        total = compute + communicate + io
        rows.append(
            Fig7Row(
                operation, cores, "incompute",
                compute, communicate, io, 0.0, total, latency=total,
            )
        )
        st = run_gtc(cores, "staging", operation, **run_kwargs)
        rep = st.staging_reports[0]
        op_time = (
            rep.map + rep.shuffle + rep.reduce + rep.finalize + rep.aggregate
        )
        rows.append(
            Fig7Row(
                operation,
                cores,
                "staging",
                compute=rep.map + rep.reduce + rep.finalize,
                communicate=rep.shuffle + rep.aggregate,
                io=st.metrics.io_blocking / max(len(st.staging_reports), 1),
                movement=rep.fetch,
                total=op_time,
                latency=rep.latency,
            )
        )
    return rows


def main(
    scales: Optional[list[int]] = None,
    trace: Optional[str] = None,
    **run_kwargs,
) -> str:
    """Print the Fig. 7 series; returns the formatted text.

    ``trace``: path of a Chrome ``trace_event`` JSON file to write
    (viewable at https://ui.perfetto.dev); every run's pipeline phases
    become one track group, a ``.jsonl`` sidecar carries the raw spans,
    and the metrics summary table is appended to the output.
    """
    obs = None
    if trace is not None:
        from repro.obs import Observability

        obs = Observability(label="fig7")
        run_kwargs = dict(run_kwargs, obs=obs)
    blocks = []
    for op in OPERATIONS:
        rows = run_fig7(op, scales, **run_kwargs)
        table = format_table(
            ["cores", "config", "compute", "communicate", "io",
             "movement", "op time", "latency"],
            [
                [
                    r.cores,
                    r.placement,
                    fmt_seconds(r.compute),
                    fmt_seconds(r.communicate),
                    fmt_seconds(r.io),
                    fmt_seconds(r.movement),
                    fmt_seconds(r.total),
                    fmt_seconds(r.latency),
                ]
                for r in rows
            ],
            title=f"Fig. 7 — {op} operation (In-Compute-Node vs Staging)",
        )
        blocks.append(table)
    if obs is not None:
        written = obs.dump(trace)
        blocks.append(obs.metrics.summary_table(title="Fig. 7 metrics"))
        blocks.append(
            "trace written: " + ", ".join(written)
            + "  (open the .json in https://ui.perfetto.dev)"
        )
    text = "\n\n".join(blocks)
    print(text)
    return text


def _cli(argv=None) -> None:
    import argparse

    p = argparse.ArgumentParser(description="Fig. 7 — individual operations")
    p.add_argument(
        "--trace", nargs="?", const="fig7_trace.json", default=None,
        metavar="PATH",
        help="write a Chrome trace (default PATH: fig7_trace.json) "
             "plus a .jsonl sidecar and a metrics summary",
    )
    p.add_argument("--fast", action="store_true", help="trimmed runs")
    p.add_argument(
        "--flow", nargs="?", const=0.25, default=None, type=float,
        metavar="FRACTION",
        help="enable flow control; cap each staging node's buffer pool "
             "at FRACTION of its per-step working set (default 0.25)",
    )
    a = p.parse_args(argv)
    kw = (
        dict(ndumps=1, iterations_per_dump=2,
             compute_seconds_per_iteration=10.0)
        if a.fast else {}
    )
    if a.flow is not None:
        kw["flow_fraction"] = a.flow
    main(trace=a.trace, **kw)


if __name__ == "__main__":
    _cli()
