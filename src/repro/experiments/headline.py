"""Headline quoted numbers of §V (the H-gtc / H-pixie rows of DESIGN.md).

Collects, from the same runs that power Figs. 7–11, the specific
numbers the paper quotes in prose, and prints paper-vs-measured:

GTC at 16,384 cores:
- synchronous write time ~8.6 s vs visible staged write ~0.30 s
  (write latency hidden 'by up to 99.9 %');
- total simulation time improved by 2.7 % (Fig. 8a band 2.7–5.1 %);
- ~1.5 % additional resources, net CPU saving at all scales;
- statistics (histograms) on the 260 GB step in ~40 s;
- sorting in the staging area bounded (~33 s) at all scales;
- DataSpaces: fetch 20.3 s, sort 30.6 s, index 2.08 s, queries <80 s.

Pixie3D at 4,096 cores:
- staging slows the simulation by only 0.01–0.7 %;
- ~0.93 % extra simulation cost buys ~10x faster reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.report import format_table
from repro.experiments.runner import run_gtc

__all__ = ["HeadlineRow", "run_headline", "main"]


@dataclass
class HeadlineRow:
    metric: str
    paper: str
    measured: str
    holds: bool


def run_headline(*, fast: bool = False, obs=None) -> list[HeadlineRow]:
    """Measure every §V prose claim; ``fast`` trims run lengths.

    ``obs``: optional :class:`repro.obs.Observability` sink bound to
    the direct GTC runs (the figure sub-experiments own their engines
    and stay untraced).
    """
    rows: list[HeadlineRow] = []
    kw = dict(ndumps=1, iterations_per_dump=2,
              compute_seconds_per_iteration=10.0) if fast else {}
    if obs is not None:
        kw["obs"] = obs

    # --- GTC write latency hiding at 16,384 cores
    ic = run_gtc(16384, "incompute", "sort", **kw)
    st = run_gtc(16384, "staging", "sort", **kw)
    ndumps = len(st.staging_reports)
    sync_write = ic.visible_write_seconds
    staged_write = st.visible_write_seconds
    hidden = 1.0 - staged_write / sync_write
    rows.append(
        HeadlineRow(
            "GTC@16k sync write / step",
            "~8.6 s",
            f"{sync_write:.2f} s",
            2.0 < sync_write < 30.0,
        )
    )
    rows.append(
        HeadlineRow(
            "GTC@16k visible staged write",
            "~0.30 s",
            f"{staged_write:.3f} s",
            staged_write < 1.0,
        )
    )
    rows.append(
        HeadlineRow(
            "write latency hidden",
            "up to 99.9 %",
            f"{hidden * 100:.1f} %",
            hidden > 0.95,
        )
    )

    # --- staging sort bounded; latency ~2 orders above in-compute
    rep = st.staging_reports[0]
    sort_op = rep.map + rep.shuffle + rep.reduce + rep.finalize + rep.aggregate
    ic_sort = sum(t.total for t in ic.in_compute_timings.values())
    rows.append(
        HeadlineRow(
            "staging sort op time",
            "<= ~33 s, within 120 s interval",
            f"{sort_op:.1f} s",
            sort_op < 60.0,
        )
    )
    rows.append(
        HeadlineRow(
            "staging sort latency vs in-compute",
            "~2 orders of magnitude",
            f"{rep.latency / max(ic_sort, 1e-9):.0f}x",
            rep.latency / max(ic_sort, 1e-9) > 10,
        )
    )

    # --- histograms: statistics on the step in ~40 s
    sth = run_gtc(16384, "staging", "histogram", **kw)
    hist_latency = sth.staging_reports[0].latency
    rows.append(
        HeadlineRow(
            "statistics on 260 GB step",
            "~40 s",
            f"{hist_latency:.1f} s",
            10.0 < hist_latency < 80.0,
        )
    )

    # --- Fig. 8 improvement and CPU saving
    # keep the real dump interval even in fast mode: the improvement
    # metric is a fraction of the interval, not of an arbitrary run
    f8 = run_fig8(scales=[16384], **(
        dict(ndumps=1, iterations_per_dump=4,
             compute_seconds_per_iteration=27.0) if fast else {}
    ))[0]
    rows.append(
        HeadlineRow(
            "GTC@16k total-time improvement",
            "2.7 % (band 2.7-5.1 %)",
            f"{f8.improvement_pct * 100:.2f} %",
            0.01 < f8.improvement_pct < 0.15,
        )
    )
    rows.append(
        HeadlineRow(
            "GTC@16k CPU saving (w/ 1.5 % extra cores)",
            "positive (98 CPU-hours / 30 min run)",
            f"{f8.cpu_saving_pct * 100:.2f} %",
            f8.cpu_saving_pct > 0,
        )
    )

    # --- DataSpaces preparation + query budget
    ds = run_fig9([64])[0]
    fetch = rep.fetch
    rows.append(
        HeadlineRow(
            "DataSpaces data fetch",
            "20.3 s",
            f"{fetch:.1f} s",
            10.0 < fetch < 40.0,
        )
    )
    prepare = fetch + sort_op + ds.index_seconds
    rows.append(
        HeadlineRow(
            "prepare (fetch+sort+index)",
            "<= 55 s",
            f"{prepare:.1f} s",
            prepare < 80.0,
        )
    )
    rows.append(
        HeadlineRow(
            "all queries answered",
            "< 80 s",
            f"{ds.all_queries_seconds:.1f} s",
            ds.all_queries_seconds < 80.0,
        )
    )

    # --- Pixie3D
    f10 = run_fig10(scales=[4096])[0]
    rows.append(
        HeadlineRow(
            "Pixie3D staging slowdown",
            "0.01-0.7 %",
            f"{f10.slowdown_pct * 100:.2f} %",
            -0.002 < f10.slowdown_pct < 0.012,
        )
    )
    f11 = run_fig11(functional=False)
    speedup = f11.rows[0].speedup
    rows.append(
        HeadlineRow(
            "merged-read speedup",
            "~10x",
            f"{speedup:.1f}x",
            5.0 < speedup < 20.0,
        )
    )
    extra = f10.cpu_extra_pct
    rows.append(
        HeadlineRow(
            "Pixie3D extra cost for reorg",
            "~0.93 %",
            f"{extra * 100:.2f} %",
            -0.01 < extra < 0.03,
        )
    )
    return rows


def main(trace: Optional[str] = None, **kw) -> str:
    """Print the headline paper-vs-measured table; returns the text.

    ``trace``: path of a Chrome ``trace_event`` JSON to write for the
    directly-run GTC experiments, plus a metrics summary table.
    """
    obs = None
    if trace is not None:
        from repro.obs import Observability

        obs = Observability(label="headline")
        kw = dict(kw, obs=obs)
    rows = run_headline(**kw)
    text = format_table(
        ["metric", "paper", "measured", "holds"],
        [[r.metric, r.paper, r.measured, "yes" if r.holds else "NO"] for r in rows],
        title="Headline §V numbers — paper vs measured",
    )
    if obs is not None:
        written = obs.dump(trace)
        text += "\n\n" + obs.metrics.summary_table(title="Headline metrics")
        text += (
            "\ntrace written: " + ", ".join(written)
            + "  (open the .json in https://ui.perfetto.dev)"
        )
    print(text)
    return text


def _cli(argv=None) -> None:
    import argparse

    p = argparse.ArgumentParser(description="Headline §V numbers")
    p.add_argument(
        "--trace", nargs="?", const="headline_trace.json", default=None,
        metavar="PATH",
        help="write a Chrome trace (default PATH: headline_trace.json) "
             "plus a .jsonl sidecar and a metrics summary",
    )
    p.add_argument("--fast", action="store_true", help="trimmed runs")
    a = p.parse_args(argv)
    main(trace=a.trace, fast=a.fast)


if __name__ == "__main__":
    _cli()
