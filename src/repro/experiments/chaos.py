"""Chaos experiment: staging-node crash mid-step, recovery measured.

Exercises the resilience subsystem end to end at 512–2048 *logical*
ranks (representative-rank methodology, see DESIGN.md): a Pixie3D-like
application dumps 3-D field steps through the Staging configuration
with the layout-reorganisation operator, and a seeded
:class:`~repro.faults.injector.FaultInjector` kills one staging node in
the middle of a step.  The run must then demonstrate the protocol's
guarantees:

- the surviving staging processes detect the death via heartbeats,
  adopt the dead node's compute clients and re-execute the interrupted
  step from the commit point (recovery latency);
- the run completes and **every** dump step is readable back from the
  merged BP file (or the synchronous fallback file under degradation)
  bit-for-bit — zero data loss;
- the whole scenario is reproducible event-for-event under a fixed
  injector seed (the :func:`fingerprint` of two same-seed runs is
  identical).

``main()`` prints one row per logical scale, comparing against an
identical no-fault baseline to isolate recovery interference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.adios.bp import BPFile, BPWriter
from repro.adios.group import ChunkMeta, GroupDef, OutputStep, VarDef, VarKind
from repro.adios.io import SyncMPIIO
from repro.core import PreDatA
from repro.experiments.report import fmt_pct, fmt_seconds, format_table
from repro.faults import FaultInjector, ResilienceConfig
from repro.flow import FlowConfig
from repro.machine import Machine, TESTING_TINY
from repro.mpi import World
from repro.operators.array_merge import ArrayMergeOperator
from repro.sim import Engine

__all__ = ["ChaosResult", "ChaosRun", "fingerprint", "main", "run_chaos", "run_once"]

#: Pixie3D-like output group: one 3-D global array (stand-in for the
#: eight fields; the merge path is identical per variable).
FIELD_GROUP = GroupDef(
    "fields",
    (VarDef("rho", "float64", VarKind.GLOBAL_ARRAY, ndim=3),),
)


def _expected_field(nprocs: int, local_n: int, step: int) -> np.ndarray:
    """The deterministic global array every reader must recover."""
    gx = nprocs * local_n
    cells = np.arange(gx * local_n * local_n, dtype=float)
    return (cells + 1000.0 * step).reshape(gx, local_n, local_n)


def _field_step(
    rank: int, nprocs: int, local_n: int, step: int, scale: float
) -> OutputStep:
    """One rank's 1-D slab of the global field (Pixie3D decomposition)."""
    gx = nprocs * local_n
    lo = rank * local_n
    base = _expected_field(nprocs, local_n, step)
    return OutputStep(
        group=FIELD_GROUP,
        step=step,
        rank=rank,
        values={"rho": base[lo : lo + local_n]},
        chunks={"rho": ChunkMeta((gx, local_n, local_n), (lo, 0, 0))},
        volume_scale=scale,
    )


@dataclass
class ChaosRun:
    """Everything one chaos run produced (handles + derived metrics)."""

    logical_ranks: int
    rep_ranks: int
    nsteps: int
    injected: bool
    killed_node: int
    crash_seconds: float
    wall_seconds: float
    complete: bool
    missing_steps: list[int]
    detection_seconds: Optional[float]
    recovery_seconds: Optional[float]
    restarts: int
    fetch_retries: int
    degraded_steps: int
    merged: BPFile
    fallback_file: Optional[BPFile]
    engine: Engine = field(repr=False, default=None)
    predata: PreDatA = field(repr=False, default=None)
    injector: Optional[FaultInjector] = field(repr=False, default=None)
    # -- flow-control counters (all zero when flow is disabled) -----------
    flow_spill_bytes: float = 0.0
    flow_unspill_bytes: float = 0.0
    flow_mean_sojourn: float = 0.0
    flow_rejections: int = 0
    flow_overflow_steps: int = 0
    flow_pool_waits: int = 0


@dataclass
class ChaosResult:
    """One printed row: fault run vs. its no-fault baseline."""

    logical_ranks: int
    rep_ranks: int
    nstaging_procs: int
    killed_node: int
    detection_seconds: Optional[float]
    recovery_seconds: Optional[float]
    restarts: int
    fetch_retries: int
    degraded_steps: int
    complete: bool
    baseline_seconds: float
    wall_seconds: float
    overhead_fraction: float


def run_once(
    *,
    logical_ranks: int = 512,
    rep_ranks: int = 8,
    nsteps: int = 4,
    local_n: int = 8,
    per_logical_rank_mb: float = 0.5,
    io_interval: float = 2.0,
    nstaging_nodes: int = 2,
    procs_per_staging_node: int = 2,
    inject: bool = True,
    kill_step: int = 1,
    kill_offset: float = 0.2,
    seed: int = 7,
    resilience: Optional[ResilienceConfig] = None,
    make_injector: bool = True,
    obs=None,
    flow: Optional[FlowConfig] = None,
    flow_fraction: Optional[float] = None,
    fetch_pipeline_depth: int = 2,
    tie_breaker=None,
    schedule_trace=None,
    check=None,
    stream_bridge=None,
    scenario_harness=None,
    topology=None,
) -> ChaosRun:
    """One complete chaos scenario; returns metrics + readable files.

    The ``rep_ranks`` simulated processes stand for ``logical_ranks``
    logical ones: each carries its share of the logical dump volume
    (``per_logical_rank_mb`` MB per logical rank) as wire/memory
    inflation, so fetch and shuffle take realistic simulated time and
    the kill genuinely lands inside an in-flight step.

    ``inject=False`` runs the *identical* configuration (same seed,
    same injector object constructed) with every injection disabled —
    the interference baseline and the determinism control.
    ``make_injector=False`` goes further and builds no injector at
    all, for asserting that a disabled injector is bit-identical to
    its complete absence.  ``obs`` binds an
    :class:`repro.obs.Observability` sink to the run's engine so the
    crash/detection/recovery protocol shows up as trace instants.

    ``flow`` / ``flow_fraction`` enable the flow-control subsystem:
    ``flow_fraction=f`` caps each staging node's buffer pool at ``f``
    times its per-step working set.  ``fetch_pipeline_depth`` is
    forwarded to the staging service (deeper pipelines buffer more
    chunks concurrently, exercising spill under a capped pool).

    ``tie_breaker``/``schedule_trace``/``check`` are the verification
    subsystem's engine hooks (see :mod:`repro.check`); all default off
    and leave the run byte-identical.

    ``stream_bridge`` attaches a :class:`repro.stream.StreamBridge` to
    the staging service's commit hook — a pure synchronous recorder,
    so the run stays byte-identical (fingerprint *and* schedule hash)
    with streaming enabled; the recorded steps are replayed into a
    live stream as a separate post-pass.

    ``scenario_harness`` attaches an adversarial scenario set
    (:class:`repro.scenarios.ScenarioHarness`) to the run before the
    application starts; a harness whose every scenario has zero
    intensity attaches nothing and leaves the run byte-identical.
    ``topology`` is forwarded to :class:`~repro.machine.Machine`
    (regional scenarios pass a ``RegionalTopology`` factory).
    """
    eng = Engine(tie_breaker=tie_breaker)
    if schedule_trace is not None:
        eng.schedule_trace = schedule_trace
    if check is not None:
        check.bind(eng)
    if obs is not None:
        kind = "fault" if inject else "baseline"
        obs.bind(eng, label=f"chaos:{logical_ranks}:{kind}")
    machine = Machine(
        eng, rep_ranks, nstaging_nodes, spec=TESTING_TINY,
        fs_interference=False, topology=topology,
    )
    real_bytes = local_n * local_n * local_n * 8
    scale = max(
        1.0,
        logical_ranks * per_logical_rank_mb * 1e6 / (rep_ranks * real_bytes),
    )
    writer = BPWriter("merged.bp", FIELD_GROUP)
    op = ArrayMergeOperator(["rho"], out_group=FIELD_GROUP, writer=writer)
    fallback = SyncMPIIO(machine.filesystem)
    flow_cfg = flow
    if flow_cfg is None and flow_fraction is not None:
        # one step's logical bytes landing on each staging node
        working_set = rep_ranks * real_bytes * scale / nstaging_nodes
        flow_cfg = FlowConfig(pool_bytes=flow_fraction * working_set)
    predata = PreDatA(
        eng,
        machine,
        FIELD_GROUP,
        [op],
        ncompute_procs=rep_ranks,
        nsteps=nsteps,
        procs_per_staging_node=procs_per_staging_node,
        volume_scale=scale,
        fetch_pipeline_depth=fetch_pipeline_depth,
        resilience=resilience or ResilienceConfig(),
        fallback_io=fallback,
        flow=flow_cfg,
    )
    if stream_bridge is not None:
        stream_bridge.attach(predata.service)
    crash_t = kill_step * io_interval + kill_offset
    injector = None
    killed = -1
    if make_injector:
        injector = FaultInjector(eng, machine, seed=seed, enabled=inject)
        injector.arm(predata.client)
        killed = injector.crash_staging_node(at=crash_t)
    if scenario_harness is not None:
        scenario_harness.attach(eng, machine, predata, nsteps=nsteps)

    app = World(
        eng,
        machine.network,
        list(range(rep_ranks)),
        name="app",
        node_lookup=machine.node,
        wire_scale=scale,
        model_size=logical_ranks,
    )
    predata.start()

    def app_main(comm):
        for s in range(nsteps):
            step = _field_step(comm.rank, rep_ranks, local_n, s, scale)
            yield from predata.transport.write_step(comm, step)
            yield from comm.sleep(io_interval)

    app.spawn(app_main)
    eng.run()
    wall = eng.now

    fallback.finalize()
    merged = writer.close()
    try:
        fallback_file: Optional[BPFile] = fallback.file(FIELD_GROUP.name)
    except KeyError:
        fallback_file = None

    # -- completeness: every step readable back, bit-for-bit --------------
    missing: list[int] = []
    for s in range(nsteps):
        expected = _expected_field(rep_ranks, local_n, s)
        if not _step_recovered(merged, fallback_file, s, expected):
            missing.append(s)

    controller = predata.controller
    detection = controller.detection_latency() if controller else None
    # Recovery latency: crash -> commit of the step the survivors had to
    # re-execute (the restart step recorded in the recovery timeline).
    recovery = None
    if inject and controller is not None:
        restart_step = next(
            (d["step"] for k, _t, d in controller.timeline if k == "recovery"),
            None,
        )
        commit = (
            predata.service.commit_times.get(restart_step)
            if restart_step is not None
            else None
        )
        if commit is not None and commit > crash_t:
            recovery = commit - crash_t
    fc = predata.flow
    return ChaosRun(
        logical_ranks=logical_ranks,
        rep_ranks=rep_ranks,
        nsteps=nsteps,
        injected=inject,
        killed_node=killed,
        crash_seconds=crash_t,
        wall_seconds=wall,
        complete=not missing,
        missing_steps=missing,
        detection_seconds=detection,
        recovery_seconds=recovery,
        restarts=predata.service.restarts,
        fetch_retries=predata.service.fetch_retries,
        degraded_steps=predata.transport.degraded_steps,
        merged=merged,
        fallback_file=fallback_file,
        engine=eng,
        predata=predata,
        injector=injector,
        flow_spill_bytes=fc.spill_bytes() if fc else 0.0,
        flow_unspill_bytes=fc.unspill_bytes() if fc else 0.0,
        flow_mean_sojourn=fc.mean_sojourn() if fc else 0.0,
        flow_rejections=fc.rejections() if fc else 0,
        flow_overflow_steps=predata.transport.overflow_steps,
        flow_pool_waits=(
            sum(p.waits for p in fc.pools.values()) if fc else 0
        ),
    )


def _step_recovered(
    merged: BPFile,
    fallback_file: Optional[BPFile],
    step: int,
    expected: np.ndarray,
) -> bool:
    """Whether *step*'s global array reads back exactly from any file."""
    for f in (merged, fallback_file):
        if f is None:
            continue
        try:
            got = f.read_global_array("rho", step)
        except Exception:
            continue
        if np.array_equal(got, expected):
            return True
    return False


def fingerprint(run: ChaosRun) -> str:
    """Digest of everything observable about a run (determinism guard).

    Covers the injected-fault log, the recovery timeline, per-step
    commit times, the final wall clock, and the full content of every
    process-group record written — two runs with the same seed must
    produce the same digest, event-for-event and bit-for-bit.
    """
    h = hashlib.sha256()
    for kind, t, detail in run.injector.injected if run.injector else ():
        h.update(f"inj|{kind}|{t:.9f}|{detail!r};".encode())
    controller = run.predata.controller
    if controller is not None:
        for kind, t, detail in controller.timeline:
            h.update(f"tl|{kind}|{t:.9f}|{detail!r};".encode())
    for s in sorted(run.predata.service.commit_times):
        h.update(f"commit|{s}|{run.predata.service.commit_times[s]:.9f};".encode())
    h.update(f"wall|{run.wall_seconds:.9f};".encode())
    if run.predata.flow is not None:
        # Flow-control schedule digest — only mixed in when flow is
        # enabled so pre-flow fingerprints stay exactly comparable.
        fc = run.predata.flow
        for nid in sorted(fc.pools):
            p = fc.pools[nid]
            h.update(
                f"pool|{nid}|{p.spills}|{p.unspills}|{p.waits}|"
                f"{p.spill_bytes:.3f}|{p.peak_bytes:.3f}|"
                f"{p.wait_seconds:.9f};".encode()
            )
        for rank in sorted(fc.banks):
            b = fc.banks[rank]
            h.update(
                f"bank|{rank}|{b.grants}|{b.rejections}|{b.forced}|"
                f"{b.total_sojourn:.9f};".encode()
            )
    for f in (run.merged, run.fallback_file):
        if f is None:
            continue
        for pg in f.pgs:
            h.update(f"pg|{f.name}|{pg.rank}|{pg.step}|".encode())
            h.update(pg.payload)
    return h.hexdigest()


def run_chaos(
    logical_ranks_list: Optional[list[int]] = None,
    *,
    seed: int = 7,
    **kwargs,
) -> list[ChaosResult]:
    """Fault run + no-fault baseline at each logical scale."""
    rows = []
    for logical in logical_ranks_list or [512, 1024, 2048]:
        fault = run_once(logical_ranks=logical, inject=True, seed=seed, **kwargs)
        base = run_once(logical_ranks=logical, inject=False, seed=seed, **kwargs)
        overhead = (
            (fault.wall_seconds - base.wall_seconds) / base.wall_seconds
            if base.wall_seconds > 0
            else 0.0
        )
        rows.append(
            ChaosResult(
                logical_ranks=logical,
                rep_ranks=fault.rep_ranks,
                nstaging_procs=fault.predata.nstaging_procs,
                killed_node=fault.killed_node,
                detection_seconds=fault.detection_seconds,
                recovery_seconds=fault.recovery_seconds,
                restarts=fault.restarts,
                fetch_retries=fault.fetch_retries,
                degraded_steps=fault.degraded_steps,
                complete=fault.complete,
                baseline_seconds=base.wall_seconds,
                wall_seconds=fault.wall_seconds,
                overhead_fraction=overhead,
            )
        )
    return rows


def main(
    trace: Optional[str] = None, flow_fraction: Optional[float] = None
) -> None:
    """Print the chaos-recovery series (one staging node killed mid-step).

    ``trace``: path of a Chrome ``trace_event`` JSON to write; fault
    and baseline runs each get a track group, recovery-protocol events
    (crash/detected/recovery/replayed) appear as instants, and the
    metrics summary is printed after the table.

    ``flow_fraction``: enable flow control with the staging buffer
    pool capped at that fraction of the per-node working set (the
    ``--flow`` CLI flag); a deeper fetch pipeline is used so the cap
    genuinely bites.
    """
    obs = None
    kwargs = {}
    if trace is not None:
        from repro.obs import Observability

        obs = Observability(label="chaos")
        kwargs["obs"] = obs
    if flow_fraction is not None:
        kwargs["flow_fraction"] = flow_fraction
        kwargs["fetch_pipeline_depth"] = 6
    rows = run_chaos(**kwargs)
    table = [
        [
            r.logical_ranks,
            r.nstaging_procs,
            r.killed_node,
            fmt_seconds(r.detection_seconds) if r.detection_seconds else "-",
            fmt_seconds(r.recovery_seconds) if r.recovery_seconds else "-",
            r.restarts,
            r.fetch_retries,
            "yes" if r.complete else "NO",
            fmt_pct(r.overhead_fraction),
        ]
        for r in rows
    ]
    print(
        format_table(
            [
                "logical ranks",
                "stagers",
                "killed node",
                "detect",
                "recover",
                "restarts",
                "retries",
                "all steps readable",
                "overhead",
            ],
            table,
            title="Chaos: one staging node killed mid-step (seeded, deterministic)",
        )
    )
    if obs is not None:
        written = obs.dump(trace)
        print()
        print(obs.metrics.summary_table(title="Chaos metrics"))
        print(
            "trace written: " + ", ".join(written)
            + "  (open the .json in https://ui.perfetto.dev)"
        )


def _cli(argv=None) -> None:
    import argparse

    p = argparse.ArgumentParser(description="Chaos: staging-node crash recovery")
    p.add_argument(
        "--trace", nargs="?", const="chaos_trace.json", default=None,
        metavar="PATH",
        help="write a Chrome trace (default PATH: chaos_trace.json) "
             "plus a .jsonl sidecar and a metrics summary",
    )
    p.add_argument(
        "--flow", nargs="?", const=0.25, default=None, type=float,
        metavar="FRACTION",
        help="enable flow control; cap each staging node's buffer pool "
             "at FRACTION of its per-step working set (default 0.25)",
    )
    a = p.parse_args(argv)
    main(trace=a.trace, flow_fraction=a.flow)


if __name__ == "__main__":
    _cli()
