"""Fig. 10 — Pixie3D simulation performance, both configurations.

Fig. 10(b): total execution time breakdown for the In-Compute-Node
configuration (direct synchronous BP writes) vs the Staging
configuration (output staged through PreDatA, where the array-merge
operator reorganises the layout).  Fig. 10(a): total CPU cost.

Paper shape claims:

- the Staging configuration *slows* Pixie3D slightly (0.01 %–0.7 %):
  the reduce/bcast-dense inner loop leaves little computation to
  overlap, so asynchronous movement's interference outweighs the tiny
  hidden I/O time;
- the gap narrows as scale grows (I/O weighs more), trending toward a
  tipping point at larger jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.report import fmt_pct, fmt_seconds, format_table
from repro.experiments.runner import pixie3d_scales, run_pixie3d

__all__ = ["Fig10Row", "run_fig10", "main"]


@dataclass
class Fig10Row:
    cores: int
    total_incompute: float
    total_staging: float
    mainloop_incompute: float
    mainloop_staging: float
    io_incompute: float
    io_staging: float
    slowdown_pct: float  # staging vs in-compute (positive = slower)
    cpu_incompute: float
    cpu_staging: float
    cpu_extra_pct: float


def run_fig10(
    scales: Optional[list[int]] = None, **run_kwargs
) -> list[Fig10Row]:
    """Run Pixie3D at each scale in both configurations."""
    rows = []
    for cores in scales or pixie3d_scales():
        ic = run_pixie3d(cores, "incompute", **run_kwargs)
        st = run_pixie3d(cores, "staging", **run_kwargs)
        im, sm = ic.metrics, st.metrics
        rows.append(
            Fig10Row(
                cores=cores,
                total_incompute=im.total,
                total_staging=sm.total,
                mainloop_incompute=im.main_loop,
                mainloop_staging=sm.main_loop,
                io_incompute=im.io_blocking,
                io_staging=sm.io_blocking,
                slowdown_pct=(sm.total - im.total) / im.total,
                cpu_incompute=ic.cpu_seconds,
                cpu_staging=st.cpu_seconds,
                cpu_extra_pct=(st.cpu_seconds - ic.cpu_seconds)
                / ic.cpu_seconds,
            )
        )
    return rows


def main(scales: Optional[list[int]] = None, **run_kwargs) -> str:
    """Print the Fig. 10 tables; returns the formatted text."""
    rows = run_fig10(scales, **run_kwargs)
    t1 = format_table(
        ["cores", "total IC", "total ST", "main IC", "main ST",
         "io IC", "io ST"],
        [
            [
                r.cores,
                fmt_seconds(r.total_incompute),
                fmt_seconds(r.total_staging),
                fmt_seconds(r.mainloop_incompute),
                fmt_seconds(r.mainloop_staging),
                fmt_seconds(r.io_incompute),
                fmt_seconds(r.io_staging),
            ]
            for r in rows
        ],
        title="Fig. 10(b) — Pixie3D total execution time breakdown",
    )
    t2 = format_table(
        ["cores", "staging slowdown", "CPU cost IC", "CPU cost ST",
         "extra CPU"],
        [
            [
                r.cores,
                fmt_pct(r.slowdown_pct),
                f"{r.cpu_incompute:.0f} cpu-s",
                f"{r.cpu_staging:.0f} cpu-s",
                fmt_pct(r.cpu_extra_pct),
            ]
            for r in rows
        ],
        title="Fig. 10(a) — Pixie3D total CPU cost",
    )
    text = t1 + "\n\n" + t2
    print(text)
    return text


if __name__ == "__main__":
    main()
