"""Regenerate every table/figure of the paper's evaluation in one run.

Usage::

    python -m repro.experiments.run_all          # full scales
    python -m repro.experiments.run_all --fast   # trimmed runs

Prints the Fig. 7/8/9/10/11 series and the headline paper-vs-measured
table; this output is the source of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import fig7, fig8, fig9, fig10, fig11, headline

__all__ = ["run_all"]


def run_all(fast: bool = False, out=sys.stdout) -> None:
    """Run every figure experiment and the headline table in sequence."""
    t_start = time.time()

    def banner(name: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}", file=out)

    gtc_scales = [512, 1024, 2048, 4096, 8192, 16384]
    fig7_kw = dict(ndumps=1, iterations_per_dump=2,
                   compute_seconds_per_iteration=10.0) if fast else {}
    fig8_kw = dict(ndumps=1, iterations_per_dump=4,
                   compute_seconds_per_iteration=27.0) if fast else {}
    if fast:
        gtc_scales = [512, 2048, 16384]

    banner("Fig. 7 — individual operations, In-Compute-Node vs Staging")
    fig7.main(scales=gtc_scales, **fig7_kw)

    banner("Fig. 8 — GTC simulation performance")
    fig8.main(scales=gtc_scales, **fig8_kw)

    banner("Fig. 9 — DataSpaces setup / hashing / query time")
    fig9.main([32, 64, 128, 256])

    banner("Fig. 10 — Pixie3D simulation performance")
    pixie_scales = [256, 1024, 4096] if fast else [256, 512, 1024, 2048, 4096]
    fig10.main(scales=pixie_scales)

    banner("Fig. 11 — merged vs unmerged read performance")
    fig11.main(rep_cores=256)

    banner("Headline §V numbers — paper vs measured")
    headline.main(fast=fast)

    print(f"\n[run_all completed in {time.time() - t_start:.1f} s wall]",
          file=out)


def main() -> None:
    """CLI entry: parse --fast and run the full sweep."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="trimmed runs (shorter simulated intervals)")
    args = parser.parse_args()
    run_all(fast=args.fast)


if __name__ == "__main__":
    main()
