"""Shared experiment plumbing: scale-faithful GTC / Pixie3D runs.

The central builders are :func:`run_gtc` and :func:`run_pixie3d`.
Both accept a *core count* on the paper's x-axis, derive the logical
process counts and staging-area sizing from the paper's ratios
(GTC: 1 process/node, 8 threads, staging 64:1 cores; Pixie3D:
1 process/core, staging 128:1), then execute the run with ``R``
representative ranks and return a structured result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.adios.io import SyncMPIIO
from repro.apps.gtc import GTC_GROUP, GTCApplication, GTCConfig, GTCMetrics
from repro.apps.pixie3d import (
    Pixie3DApplication,
    Pixie3DConfig,
    Pixie3DMetrics,
    pixie3d_group,
)
from repro.core.middleware import PreDatA
from repro.core.operator import PreDatAOperator, StepReport
from repro.core.placement import InComputeNodeRunner, InComputeTiming
from repro.flow import FlowConfig
from repro.machine.machine import Machine
from repro.machine.presets import JAGUAR_XT4, JAGUAR_XT5, MachineSpec
from repro.mpi.world import World
from repro.operators import (
    Histogram2DOperator,
    HistogramOperator,
    SampleSortOperator,
)
from repro.sim.engine import Engine

__all__ = [
    "GTCRunResult",
    "Pixie3DRunResult",
    "gtc_operators",
    "run_gtc",
    "run_pixie3d",
    "gtc_scales",
    "pixie3d_scales",
]

#: Paper scales for the GTC experiments (compute cores).
def gtc_scales() -> list[int]:
    """The paper's GTC scales in compute cores (512..16,384)."""
    return [512, 1024, 2048, 4096, 8192, 16384]


#: Paper scales for the Pixie3D experiments (compute cores, XT4).
def pixie3d_scales() -> list[int]:
    """The paper's Pixie3D scales in compute cores (XT4)."""
    return [256, 512, 1024, 2048, 4096]


def gtc_operators(
    which: str, filesystem=None, key_column: int = 7
) -> list[PreDatAOperator]:
    """The three evaluated GTC operations (§V.B), by name.

    Each operation is applied to *both* particle arrays, as in the
    paper ("each of these operators is applied to both the electron
    and ion particle arrays").
    """
    species = ("electrons", "ions")
    if which == "sort":
        return [
            SampleSortOperator(var, key_column, name=f"sort:{var}")
            for var in species
        ]
    if which == "histogram":
        return [
            HistogramOperator(
                var, column=6, bins=1000, name=f"histogram:{var}",
                filesystem=filesystem,
            )
            for var in species
        ]
    if which == "histogram2d":
        return [
            Histogram2DOperator(
                var, columns=(0, 3), bins=(256, 256),
                name=f"histogram2d:{var}", filesystem=filesystem,
            )
            for var in species
        ]
    raise ValueError(f"unknown GTC operation {which!r}")


@dataclass
class GTCRunResult:
    """Everything measured from one GTC run."""

    cores: int
    placement: str  # "staging" | "incompute" | "none"
    metrics: GTCMetrics
    cpu_seconds: float
    staging_reports: list[StepReport] = field(default_factory=list)
    in_compute_timings: dict[str, InComputeTiming] = field(default_factory=dict)
    nprocs_logical: int = 0
    nstaging_procs_logical: int = 0
    rep_ranks: int = 0
    visible_write_seconds: float = 0.0
    interference_pct: float = 0.0  # main-loop slowdown vs baseline
    flow_spill_bytes: float = 0.0  # flow control: bytes spilled to FS
    flow_mean_sojourn: float = 0.0  # flow control: mean credit wait (s)
    flow_rejections: int = 0  # flow control: CoDel-degraded writes
    #: live facade of a staging run (operator results, client state) —
    #: the verification subsystem fingerprints/inspects it post-run
    predata: Any = field(default=None, repr=False)


def _scaled_fs(spec: MachineSpec, rep_factor: float):
    """File-system share of R representatives of a P-rank job.

    Aggregate bandwidth *and* OST count scale together so per-stream
    striping behaviour (per-OST bandwidth) stays faithful.
    """
    fs = spec.filesystem
    return replace(
        fs,
        aggregate_bandwidth=fs.aggregate_bandwidth / rep_factor,
        n_osts=max(fs.stripe_count, round(fs.n_osts / rep_factor)),
    )


def _gtc_sizing(cores: int, rep_ranks: int) -> tuple[int, int, int, int]:
    """(procs, staging_procs, R, R_s) for a GTC scale."""
    if cores % 8:
        raise ValueError("GTC cores must be a multiple of 8 (8 cores/node)")
    procs = cores // 8
    staging_procs = max(2, cores // 256)  # 64:1 cores; 2 procs x 4 threads/node
    r = min(procs, rep_ranks)
    r_s = max(2, round(staging_procs * r / procs)) if procs > r else staging_procs
    return procs, staging_procs, r, r_s


def run_gtc(
    cores: int,
    placement: str,
    operation: str = "sort",
    *,
    spec: Optional[MachineSpec] = None,
    rep_ranks: int = 64,
    ndumps: int = 2,
    iterations_per_dump: int = 4,
    compute_seconds_per_iteration: float = 27.0,
    functional_rows: int = 128,
    fetch_rate_cap: Optional[float] = 0.2e9,
    scheduled: bool = True,
    fs_interference: bool = True,
    operators_factory: Optional[Callable] = None,
    obs: Optional[Any] = None,
    flow: Optional[FlowConfig] = None,
    flow_fraction: Optional[float] = None,
    tie_breaker: Optional[Any] = None,
    schedule_trace: Optional[Any] = None,
    check: Optional[Any] = None,
) -> GTCRunResult:
    """One GTC run at *cores* under the chosen operator *placement*.

    ``placement``: ``"staging"`` runs operators in the Staging Area via
    PreDatA; ``"incompute"`` runs them synchronously on the compute
    ranks with synchronous MPI-IO; ``"none"`` is the operator-free
    baseline (used to isolate interference).

    ``obs``: an :class:`repro.obs.Observability` sink; when given it is
    bound to the run's engine so every pipeline phase is traced (one
    Perfetto track group per run).  None (default) disables tracing.

    ``flow`` enables flow control with an explicit
    :class:`~repro.flow.FlowConfig`; ``flow_fraction`` is the
    convenience form — the staging buffer pool is capped at that
    fraction of the per-staging-node working set (one dump step's
    bytes landing on the node).

    ``tie_breaker``/``schedule_trace``/``check`` belong to the
    verification subsystem (:mod:`repro.check`): a seeded
    :class:`~repro.sim.SeededTieBreaker` perturbs same-time event
    order, a :class:`~repro.check.ScheduleTrace` records the executed
    schedule, and a :class:`~repro.check.Checker` audits the pipeline's
    conservation invariants.  All default off (byte-identical run).
    """
    if placement not in ("staging", "incompute", "none"):
        raise ValueError(f"bad placement {placement!r}")
    spec = spec or JAGUAR_XT5
    procs, staging_logical, r, r_s = _gtc_sizing(cores, rep_ranks)
    rep_factor = procs / r
    spec_scaled = replace(spec, filesystem=_scaled_fs(spec, rep_factor))

    eng = Engine(tie_breaker=tie_breaker)
    if schedule_trace is not None:
        eng.schedule_trace = schedule_trace
    if check is not None:
        check.bind(eng)
    if obs is not None:
        obs.bind(eng, label=f"gtc:{operation}:{cores}:{placement}")
    n_staging_nodes = max(1, (r_s + 1) // 2) if placement == "staging" else 0
    machine = Machine(
        eng, r, n_staging_nodes, spec=spec_scaled,
        fs_interference=fs_interference,
    )
    cfg = GTCConfig(
        nprocs_logical=procs,
        functional_rows=functional_rows,
        iterations_per_dump=iterations_per_dump,
        ndumps=ndumps,
        compute_seconds_per_iteration=compute_seconds_per_iteration,
    )
    app_world = World(
        eng,
        machine.network,
        list(range(r)),
        name="gtc",
        node_lookup=machine.node,
        wire_scale=1.0,
        model_size=procs,
    )

    predata = None
    runner = None
    scheduler = None
    if placement == "staging":
        ops = (operators_factory or gtc_operators)(
            operation, machine.filesystem
        )
        flow_cfg = flow
        if flow_cfg is None and flow_fraction is not None:
            # Working set = one dump step's logical bytes landing on
            # each staging node (both particle arrays).
            working_set = (
                r * cfg.logical_bytes_per_proc / machine.n_staging_nodes
            )
            flow_cfg = FlowConfig(pool_bytes=flow_fraction * working_set)
        predata = PreDatA(
            eng,
            machine,
            GTC_GROUP,
            ops,
            ncompute_procs=r,
            nsteps=ndumps,
            volume_scale=cfg.volume_scale,
            scheduled_movement=scheduled,
            fetch_rate_cap=fetch_rate_cap,
            model_size=staging_logical,
            flow=flow_cfg,
        )
        predata.start()
        transport = predata.transport
        scheduler = predata.scheduler
    else:
        transport = SyncMPIIO(machine.filesystem, collect_data=False)
        if placement == "incompute":
            ops = (operators_factory or gtc_operators)(
                operation, machine.filesystem
            )
            runner = InComputeNodeRunner(machine, ops)

    app = GTCApplication(
        machine, app_world, transport, cfg,
        scheduler=scheduler, runner=runner,
        staging_steal=0.005 if placement == "staging" else 0.0,
    )
    app.spawn()
    eng.run()

    metrics = app.max_metrics()
    result = GTCRunResult(
        cores=cores,
        placement=placement,
        metrics=metrics,
        cpu_seconds=metrics.total * cores,
        nprocs_logical=procs,
        nstaging_procs_logical=staging_logical,
        rep_ranks=r,
    )
    if placement == "staging":
        result.predata = predata
        result.staging_reports = [
            predata.service.step_report(s) for s in range(ndumps)
        ]
        result.visible_write_seconds = (
            max(app.metrics.values(), key=lambda m: m.io_blocking).io_blocking
            / ndumps
        )
        # staging adds its own cores to the CPU bill (1.5% extra)
        result.cpu_seconds = metrics.total * (cores + cores // 64)
        if predata.flow is not None:
            result.flow_spill_bytes = predata.flow.spill_bytes()
            result.flow_mean_sojourn = predata.flow.mean_sojourn()
            result.flow_rejections = predata.flow.rejections()
    else:
        result.visible_write_seconds = metrics.io_blocking / ndumps
        if runner is not None:
            result.in_compute_timings = {
                op.name: runner.step_timing(op.name, 0) for op in runner.operators
            }
    return result


@dataclass
class Pixie3DRunResult:
    """Everything measured from one Pixie3D run."""

    cores: int
    placement: str
    metrics: Pixie3DMetrics
    cpu_seconds: float
    staging_reports: list[StepReport] = field(default_factory=list)
    nprocs_logical: int = 0
    rep_ranks: int = 0
    merged_file: object = None
    unmerged_file: object = None


def _pixie_sizing(cores: int, rep_ranks: int) -> tuple[int, int, int, int]:
    procs = cores  # 1 process per core on XT4
    staging_procs = max(1, cores // 256)  # 128:1 cores; 2 procs x 4 threads
    r = min(procs, rep_ranks)
    r_s = max(1, round(staging_procs * r / procs)) if procs > r else staging_procs
    return procs, staging_procs, r, r_s


def run_pixie3d(
    cores: int,
    placement: str,
    *,
    spec: Optional[MachineSpec] = None,
    rep_ranks: int = 64,
    ndumps: int = 1,
    iterations_per_dump: int = 18,
    collective_rounds: int = 8,
    functional_size: int = 6,
    collect_files: bool = False,
    fetch_rate_cap: Optional[float] = 0.1e9,
    scheduled: bool = True,
    fs_interference: bool = True,
    staging_steal: float = 0.008,
    obs: Optional[Any] = None,
) -> Pixie3DRunResult:
    """One Pixie3D run at *cores* with layout reorg in *placement*.

    ``placement``: ``"staging"`` sends output through PreDatA where the
    array-merge operator reorganises it; ``"incompute"`` writes
    unmerged BP directly with synchronous MPI-IO.  ``obs`` binds an
    :class:`repro.obs.Observability` sink to the run's engine.
    """
    from repro.adios.bp import BPWriter
    from repro.operators import ArrayMergeOperator
    from repro.apps.pixie3d import PIXIE3D_VARS

    if placement not in ("staging", "incompute"):
        raise ValueError(f"bad placement {placement!r}")
    spec = spec or JAGUAR_XT4
    procs, staging_logical, r, r_s = _pixie_sizing(cores, rep_ranks)
    rep_factor = procs / r
    spec_scaled = replace(spec, filesystem=_scaled_fs(spec, rep_factor))

    eng = Engine()
    if obs is not None:
        obs.bind(eng, label=f"pixie3d:{cores}:{placement}")
    nodes_needed_for_ranks = max(1, r // spec.node.cores)
    n_staging_nodes = max(1, (r_s + 1) // 2) if placement == "staging" else 0
    machine = Machine(
        eng,
        max(nodes_needed_for_ranks, 1),
        n_staging_nodes,
        spec=spec_scaled,
        fs_interference=fs_interference,
    )
    cfg = Pixie3DConfig(
        nprocs_logical=procs,
        functional_size=functional_size,
        iterations_per_dump=iterations_per_dump,
        ndumps=ndumps,
        collective_rounds_per_iteration=collective_rounds,
    )
    # several ranks share a node (1 proc/core)
    rank_nodes = [i % machine.n_compute_nodes for i in range(r)]
    app_world = World(
        eng,
        machine.network,
        rank_nodes,
        name="pixie3d",
        node_lookup=machine.node,
        model_size=procs,
    )
    group = pixie3d_group()

    predata = None
    writer = None
    transport = None
    scheduler = None
    if placement == "staging":
        writer = BPWriter("pixie3d_merged.bp", group) if collect_files else None
        op = ArrayMergeOperator(
            list(PIXIE3D_VARS),
            out_group=group,
            filesystem=machine.filesystem,
            writer=writer,
        )
        predata = PreDatA(
            eng,
            machine,
            group,
            [op],
            ncompute_procs=r,
            nsteps=ndumps,
            volume_scale=cfg.volume_scale,
            scheduled_movement=scheduled,
            fetch_rate_cap=fetch_rate_cap,
            model_size=staging_logical,
            procs_per_staging_node=max(1, min(2, r_s)),
        )
        predata.start()
        transport = predata.transport
        scheduler = predata.scheduler
    else:
        transport = SyncMPIIO(machine.filesystem, collect_data=collect_files)

    app = Pixie3DApplication(
        machine, app_world, transport, cfg, scheduler=scheduler,
        staging_steal=staging_steal if placement == "staging" else 0.0,
    )
    app.spawn()
    eng.run()

    metrics = app.max_metrics()
    result = Pixie3DRunResult(
        cores=cores,
        placement=placement,
        metrics=metrics,
        cpu_seconds=metrics.total * cores,
        nprocs_logical=procs,
        rep_ranks=r,
    )
    if placement == "staging":
        result.staging_reports = [
            predata.service.step_report(s) for s in range(ndumps)
        ]
        result.cpu_seconds = metrics.total * (cores + max(1, cores // 128))
        if collect_files and writer is not None:
            result.merged_file = writer.close()
    else:
        if collect_files:
            transport.finalize()
            result.unmerged_file = transport.file(group.name)
    return result
