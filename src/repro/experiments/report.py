"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "fmt_seconds", "fmt_bytes", "fmt_pct"]


def fmt_seconds(v: float) -> str:
    """Human-readable seconds (s / ms / us as magnitude requires)."""
    if v >= 100:
        return f"{v:.0f} s"
    if v >= 1:
        return f"{v:.2f} s"
    if v >= 1e-3:
        return f"{v * 1e3:.2f} ms"
    return f"{v * 1e6:.1f} us"


def fmt_bytes(v: float) -> str:
    """Human-readable byte count (TB / GB / MB / KB / B)."""
    for unit, scale in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if v >= scale:
            return f"{v / scale:.2f} {unit}"
    return f"{v:.0f} B"


def fmt_pct(v: float) -> str:
    """Fraction rendered as a percentage with two decimals."""
    return f"{v * 100:.2f}%"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [c if isinstance(c, str) else f"{c}" for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
