"""Staging-node utilization between dumps (§VI's premise).

"One observation is that the computational resources on staging nodes
are often under-utilized and the time intervals between I/O dumps are
sufficiently large for extra processing on buffered data."

This experiment quantifies that premise in the model: run GTC through
the Staging configuration and measure what fraction of each staging
node's core-seconds the pipeline actually consumed, and what fraction
of the I/O interval the pipeline occupied — the headroom PreDatA
exploits (and the slack available for even richer operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.report import fmt_pct, fmt_seconds, format_table
from repro.experiments.runner import run_gtc

__all__ = ["UtilizationRow", "run_utilization", "main"]


@dataclass
class UtilizationRow:
    cores: int
    io_interval: float
    pipeline_seconds: float  # staging wall time consumed per dump
    interval_occupancy: float  # pipeline / interval
    core_busy_fraction: float  # staging core-seconds used / available


def run_utilization(
    scales: Optional[list[int]] = None,
    *,
    operation: str = "sort",
    **run_kwargs,
) -> list[UtilizationRow]:
    """Measure staging occupancy for each scale."""
    rows = []
    for cores in scales or [512, 4096, 16384]:
        r = run_gtc(cores, "staging", operation, **run_kwargs)
        rep = r.staging_reports[0]
        interval = (
            run_kwargs.get("iterations_per_dump", 4)
            * run_kwargs.get("compute_seconds_per_iteration", 27.0)
        )
        pipeline = rep.operation_time
        # core-seconds: the run's machine is discarded, so reconstruct
        # from the report — busy per staging node = pipeline compute
        # phases; the fetch phase occupies the NIC, not cores.
        busy = rep.map + rep.reduce + rep.finalize
        rows.append(
            UtilizationRow(
                cores=cores,
                io_interval=interval,
                pipeline_seconds=pipeline,
                interval_occupancy=pipeline / interval,
                core_busy_fraction=busy / interval,
            )
        )
    return rows


def main(scales: Optional[list[int]] = None, **kw) -> str:
    """Print the utilization table; returns the formatted text."""
    kw.setdefault("ndumps", 1)
    kw.setdefault("iterations_per_dump", 4)
    kw.setdefault("compute_seconds_per_iteration", 27.0)
    rows = run_utilization(scales, **kw)
    text = format_table(
        ["cores", "I/O interval", "pipeline busy", "interval occupancy",
         "staging-core busy"],
        [
            [
                r.cores,
                fmt_seconds(r.io_interval),
                fmt_seconds(r.pipeline_seconds),
                fmt_pct(r.interval_occupancy),
                fmt_pct(r.core_busy_fraction),
            ]
            for r in rows
        ],
        title=("Staging-area utilization between dumps "
               "(the under-utilization premise, §VI)"),
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
