"""The BP log-structured file format (in-model representation).

A BP file is a sequence of *process group* (PG) records — one per
writing process per step — followed by an index that maps each variable
to the chunks holding it.  Writing is append-only and requires no
inter-writer coordination, which is why it is fast to write (§II.B);
the price is that a global array's chunks end up scattered across the
file, so *reading* one variable touches one extent per chunk.  PreDatA's
layout-reorganisation operator exists exactly to collapse those extents
(Fig. 11).

Files live in memory as structured objects plus (optionally) real
on-disk bytes via :meth:`BPFile.save` / :meth:`BPFile.load`, so tests
can exercise genuine serialisation.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.adios.group import ChunkMeta, GroupDef, OutputStep, VarKind

__all__ = ["ProcessGroup", "BPIndexEntry", "BPFile", "BPWriter"]


@dataclass
class ProcessGroup:
    """One writer's record: its packed chunk plus placement info."""

    rank: int
    step: int
    payload: bytes  # FFS packed partial data chunk
    file_offset: int = 0
    logical_nbytes: float = 0.0

    @property
    def nbytes(self) -> int:
        return len(self.payload)


@dataclass(frozen=True)
class BPIndexEntry:
    """Index record: where one var's chunk lives."""

    var: str
    step: int
    pg_index: int
    chunk: Optional[ChunkMeta]  # None for scalars / local arrays
    local_dims: tuple[int, ...]


class BPError(RuntimeError):
    """Malformed BP file or invalid read request."""


@dataclass
class BPFile:
    """A finalized BP file."""

    name: str
    group: GroupDef
    pgs: list[ProcessGroup] = field(default_factory=list)
    index: dict[str, list[BPIndexEntry]] = field(default_factory=dict)

    # -- size ------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return sum(pg.nbytes for pg in self.pgs)

    @property
    def logical_nbytes(self) -> float:
        return sum(pg.logical_nbytes for pg in self.pgs)

    # -- queries -----------------------------------------------------------
    def steps(self) -> list[int]:
        """Sorted list of step numbers present in the file."""
        return sorted({pg.step for pg in self.pgs})

    def entries(self, var: str, step: Optional[int] = None) -> list[BPIndexEntry]:
        """Index entries for *var*, optionally filtered by step."""
        if var not in self.index:
            raise BPError(f"var {var!r} not in file {self.name!r}")
        entries = self.index[var]
        if step is not None:
            entries = [e for e in entries if e.step == step]
        return entries

    def extents_for(self, var: str, step: Optional[int] = None) -> int:
        """Discontiguous file extents a reader must touch for *var*.

        Each chunk is one contiguous region inside its PG record, so
        extents == number of chunks holding the variable.
        """
        return len(self.entries(var, step))

    def read_global_array(
        self, var: str, step: int, *, copy: bool = True
    ) -> np.ndarray:
        """Functionally assemble a global array from its chunks."""
        vdef = self.group.var(var)
        if vdef.kind is not VarKind.GLOBAL_ARRAY:
            raise BPError(f"{var!r} is not a global array")
        entries = self.entries(var, step)
        if not entries:
            raise BPError(f"no chunks for {var!r} at step {step}")
        gdims = entries[0].chunk.global_dims
        out = np.zeros(gdims, dtype=np.dtype(vdef.dtype))
        filled = np.zeros(gdims, dtype=bool)
        for e in entries:
            pg = self.pgs[e.pg_index]
            step_obj = OutputStep.unpack(self.group, pg.payload)
            data = step_obj.values[var]
            sel = tuple(
                slice(o, o + d) for o, d in zip(e.chunk.offsets, data.shape)
            )
            out[sel] = data
            filled[sel] = True
        if not filled.all():
            raise BPError(
                f"global array {var!r} step {step}: "
                f"{int((~filled).sum())} cells not covered by any chunk"
            )
        return out.copy() if copy else out

    def read_region(
        self,
        var: str,
        step: int,
        lb: tuple[int, ...],
        ub: tuple[int, ...],
    ) -> tuple[np.ndarray, int]:
        """Read a sub-box ``[lb, ub)`` of a global array.

        Returns ``(subarray, extents_touched)`` — the extent count is
        the number of chunks intersecting the box, i.e. the seeks a
        reader pays; a VisIt-style subvolume read on an unmerged file
        touches many chunks even for a small box, which is the other
        face of Fig. 11's layout argument.
        """
        vdef = self.group.var(var)
        if vdef.kind is not VarKind.GLOBAL_ARRAY:
            raise BPError(f"{var!r} is not a global array")
        entries = self.entries(var, step)
        if not entries:
            raise BPError(f"no chunks for {var!r} at step {step}")
        gdims = entries[0].chunk.global_dims
        lb = tuple(int(v) for v in lb)
        ub = tuple(int(v) for v in ub)
        if len(lb) != len(gdims) or len(ub) != len(gdims):
            raise BPError("selection rank mismatch")
        for lo, hi, d in zip(lb, ub, gdims):
            if not 0 <= lo < hi <= d:
                raise BPError(f"selection {lb}..{ub} outside {gdims}")
        shape = tuple(hi - lo for lo, hi in zip(lb, ub))
        out = np.zeros(shape, dtype=np.dtype(vdef.dtype))
        filled = np.zeros(shape, dtype=bool)
        extents = 0
        for e in entries:
            offs = e.chunk.offsets
            dims = e.local_dims
            # chunk box: [offs, offs+dims); intersect with [lb, ub)
            cut_lo = tuple(max(o, l) for o, l in zip(offs, lb))
            cut_hi = tuple(
                min(o + d, u) for o, d, u in zip(offs, dims, ub)
            )
            if any(hi <= lo for lo, hi in zip(cut_lo, cut_hi)):
                continue
            extents += 1
            pg = self.pgs[e.pg_index]
            data = OutputStep.unpack(self.group, pg.payload).values[var]
            src = tuple(
                slice(lo - o, hi - o)
                for lo, hi, o in zip(cut_lo, cut_hi, offs)
            )
            dst = tuple(
                slice(lo - l, hi - l)
                for lo, hi, l in zip(cut_lo, cut_hi, lb)
            )
            out[dst] = data[src]
            filled[dst] = True
        if not filled.all():
            raise BPError(
                f"selection {lb}..{ub} of {var!r}: "
                f"{int((~filled).sum())} cells not covered"
            )
        return out, extents

    def read_var_chunks(self, var: str, step: int) -> list[tuple[BPIndexEntry, Any]]:
        """All (entry, value) pairs for *var* at *step*."""
        out = []
        for e in self.entries(var, step):
            pg = self.pgs[e.pg_index]
            step_obj = OutputStep.unpack(self.group, pg.payload)
            out.append((e, step_obj.values[var]))
        return out

    # -- on-disk serialisation ------------------------------------------------
    _MAGIC = b"BPF1"

    def save(self, path) -> int:
        """Write real bytes to *path*; returns file size."""
        header = {
            "name": self.name,
            "group": _group_to_dict(self.group),
            "pgs": [
                {
                    "rank": pg.rank,
                    "step": pg.step,
                    "nbytes": pg.nbytes,
                    "logical_nbytes": pg.logical_nbytes,
                }
                for pg in self.pgs
            ],
            "index": {
                var: [
                    {
                        "step": e.step,
                        "pg": e.pg_index,
                        "chunk": (
                            {
                                "global_dims": list(e.chunk.global_dims),
                                "offsets": list(e.chunk.offsets),
                            }
                            if e.chunk
                            else None
                        ),
                        "local_dims": list(e.local_dims),
                    }
                    for e in entries
                ]
                for var, entries in self.index.items()
            },
        }
        hbytes = json.dumps(header, separators=(",", ":")).encode()
        with open(path, "wb") as f:
            f.write(self._MAGIC)
            f.write(struct.pack("<Q", len(hbytes)))
            f.write(hbytes)
            for pg in self.pgs:
                f.write(pg.payload)
        return 12 + len(hbytes) + sum(pg.nbytes for pg in self.pgs)

    @classmethod
    def load(cls, path) -> "BPFile":
        with open(path, "rb") as f:
            magic = f.read(4)
            if magic != cls._MAGIC:
                raise BPError(f"{path}: not a BP file")
            (hlen,) = struct.unpack("<Q", f.read(8))
            header = json.loads(f.read(hlen).decode())
            group = _group_from_dict(header["group"])
            pgs = []
            for rec in header["pgs"]:
                payload = f.read(rec["nbytes"])
                pgs.append(
                    ProcessGroup(
                        rank=rec["rank"],
                        step=rec["step"],
                        payload=payload,
                        logical_nbytes=rec["logical_nbytes"],
                    )
                )
        index = {
            var: [
                BPIndexEntry(
                    var=var,
                    step=e["step"],
                    pg_index=e["pg"],
                    chunk=(
                        ChunkMeta(
                            tuple(e["chunk"]["global_dims"]),
                            tuple(e["chunk"]["offsets"]),
                        )
                        if e["chunk"]
                        else None
                    ),
                    local_dims=tuple(e["local_dims"]),
                )
                for e in entries
            ]
            for var, entries in header["index"].items()
        }
        return cls(name=header["name"], group=group, pgs=pgs, index=index)


class BPWriter:
    """Builds a :class:`BPFile` from process-group appends."""

    def __init__(self, name: str, group: GroupDef):
        self._file = BPFile(name=name, group=group)
        self._closed = False
        self._offset = 0

    def append_step(self, step: OutputStep) -> None:
        """Append one process's output as a PG record + index entries."""
        if self._closed:
            raise BPError("writer already closed")
        payload = step.pack()
        pg = ProcessGroup(
            rank=step.rank,
            step=step.step,
            payload=payload,
            file_offset=self._offset,
            logical_nbytes=step.nbytes_logical,
        )
        self._offset += pg.nbytes
        pg_index = len(self._file.pgs)
        self._file.pgs.append(pg)
        for vdef in step.group.vars:
            val = step.values[vdef.name]
            local_dims = (
                tuple(int(s) for s in np.asarray(val).shape)
                if isinstance(val, np.ndarray)
                else ()
            )
            entry = BPIndexEntry(
                var=vdef.name,
                step=step.step,
                pg_index=pg_index,
                chunk=step.chunks.get(vdef.name),
                local_dims=local_dims,
            )
            self._file.index.setdefault(vdef.name, []).append(entry)

    def close(self) -> BPFile:
        """Finalize the index and return the immutable :class:`BPFile`."""
        self._closed = True
        return self._file


def _group_to_dict(group: GroupDef) -> dict:
    return {
        "name": group.name,
        "vars": [
            {"name": v.name, "dtype": v.dtype, "kind": v.kind.value, "ndim": v.ndim}
            for v in group.vars
        ],
    }


def _group_from_dict(d: dict) -> GroupDef:
    from repro.adios.group import VarDef  # local import to avoid cycle noise

    return GroupDef(
        d["name"],
        tuple(
            VarDef(v["name"], v["dtype"], VarKind(v["kind"]), v["ndim"])
            for v in d["vars"]
        ),
    )
