"""ADIOS output-group definitions and per-step output payloads.

An application declares *what* it outputs once (a :class:`GroupDef` of
:class:`VarDef`), then at each I/O dump every process emits an
:class:`OutputStep` carrying real values.  The step knows how to pack
itself into an FFS packed partial data chunk (§IV.B Stage 1b) and back.

``volume_scale`` decouples the *functional* data (small arrays that
actually flow through operators in tests) from the *logical* data
volume used for timing — e.g. GTC's 132 MB/process can be represented
functionally by 1.32 MB with ``volume_scale=100``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.ffs import Field as FFSField
from repro.ffs import Schema, decode, encode

__all__ = ["VarKind", "VarDef", "ChunkMeta", "GroupDef", "OutputStep"]


class VarKind(enum.Enum):
    """What a variable is, structurally."""

    SCALAR = "scalar"
    LOCAL_ARRAY = "local_array"  # per-process array, no global shape
    GLOBAL_ARRAY = "global_array"  # partial chunk of a global array


@dataclass(frozen=True)
class VarDef:
    """One declared output variable."""

    name: str
    dtype: str
    kind: VarKind = VarKind.SCALAR
    ndim: int = 0

    def __post_init__(self) -> None:
        np.dtype(self.dtype)  # validate
        if self.kind is VarKind.SCALAR and self.ndim != 0:
            raise ValueError(f"scalar var {self.name!r} cannot have ndim")
        if self.kind is not VarKind.SCALAR and self.ndim < 1:
            raise ValueError(f"array var {self.name!r} needs ndim >= 1")


@dataclass(frozen=True)
class ChunkMeta:
    """Placement of one process's chunk within a global array."""

    global_dims: tuple[int, ...]
    offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.global_dims) != len(self.offsets):
            raise ValueError("global_dims and offsets rank mismatch")
        object.__setattr__(self, "global_dims", tuple(int(d) for d in self.global_dims))
        object.__setattr__(self, "offsets", tuple(int(o) for o in self.offsets))


@dataclass(frozen=True)
class GroupDef:
    """A named, ordered set of output variables."""

    name: str
    vars: tuple[VarDef, ...]

    def __post_init__(self) -> None:
        names = [v.name for v in self.vars]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate var names in group {self.name!r}")
        object.__setattr__(self, "vars", tuple(self.vars))

    def var(self, name: str) -> VarDef:
        """The :class:`VarDef` named *name* (KeyError if absent)."""
        for v in self.vars:
            if v.name == name:
                return v
        raise KeyError(f"group {self.name!r} has no var {name!r}")

    @property
    def var_names(self) -> list[str]:
        return [v.name for v in self.vars]

    def ffs_schema(self) -> Schema:
        """FFS schema for one process's step payload."""
        fields = []
        for v in self.vars:
            if v.kind is VarKind.SCALAR:
                fields.append(FFSField(v.name, v.dtype))
            else:
                fields.append(
                    FFSField(v.name, v.dtype, tuple(-1 for _ in range(v.ndim)))
                )
        return Schema(self.name, tuple(fields))


@dataclass
class OutputStep:
    """Everything one process outputs at one I/O dump.

    Attributes
    ----------
    group: the group definition.
    step: I/O step number.
    rank: producing rank.
    values: var name -> scalar or ndarray (functional data).
    chunks: var name -> :class:`ChunkMeta` for global-array vars.
    volume_scale: logical bytes = real bytes * volume_scale.
    """

    group: GroupDef
    step: int
    rank: int
    values: dict[str, Any]
    chunks: dict[str, ChunkMeta] = field(default_factory=dict)
    volume_scale: float = 1.0

    def __post_init__(self) -> None:
        for v in self.group.vars:
            if v.name not in self.values:
                raise ValueError(f"step missing value for var {v.name!r}")
            if v.kind is VarKind.GLOBAL_ARRAY and v.name not in self.chunks:
                raise ValueError(
                    f"global array {v.name!r} needs ChunkMeta in step"
                )
        if self.volume_scale <= 0:
            raise ValueError("volume_scale must be positive")

    # -- sizes -----------------------------------------------------------
    @property
    def nbytes_real(self) -> float:
        """Actual bytes of functional payload arrays + scalars."""
        total = 0.0
        for v in self.group.vars:
            val = self.values[v.name]
            if isinstance(val, np.ndarray):
                total += val.nbytes
            else:
                total += np.dtype(v.dtype).itemsize
        return total

    @property
    def nbytes_logical(self) -> float:
        """Bytes this step *represents* at full experiment scale."""
        return self.nbytes_real * self.volume_scale

    # -- FFS packing -------------------------------------------------------
    def _runtime_schema(self) -> "Schema":
        """FFS schema using each array value's *actual* dtype.

        FFS buffers are self-describing, so a first-pass operator that
        demoted a variable's precision (float64 -> float32) produces a
        legal, smaller chunk; the embedded schema carries the truth.
        """
        from repro.ffs import Field as FFSField
        from repro.ffs import Schema as FFSSchema

        fields = []
        for v in self.group.vars:
            val = self.values[v.name]
            if v.kind is VarKind.SCALAR:
                fields.append(FFSField(v.name, v.dtype))
            else:
                dtype = np.asarray(val).dtype.str
                fields.append(
                    FFSField(v.name, dtype, tuple(-1 for _ in range(v.ndim)))
                )
        return FFSSchema(self.group.name, tuple(fields))

    def pack(self, extra_attrs: Optional[dict] = None, *, scratch=None):
        """Encode into a packed partial data chunk.

        Without *scratch*, returns immutable ``bytes``.  With a
        :class:`repro.ffs.PackBuffer`, packs zero-copy into the scratch
        and returns a read-only ``memoryview`` borrowing it — the
        donation fast path; the caller owns the scratch lifecycle (see
        :func:`repro.ffs.encode_into`).
        """
        attrs = {
            "step": self.step,
            "rank": self.rank,
            "volume_scale": self.volume_scale,
            "chunks": {
                name: {"global_dims": list(c.global_dims), "offsets": list(c.offsets)}
                for name, c in self.chunks.items()
            },
        }
        if extra_attrs:
            attrs.update(extra_attrs)
        schema = self._runtime_schema()
        if scratch is not None:
            from repro.ffs import encode_into

            return encode_into(schema, self.values, scratch, attrs=attrs)
        return encode(schema, self.values, attrs=attrs)

    @classmethod
    def unpack(cls, group: GroupDef, buf) -> "OutputStep":
        """Decode a packed partial data chunk produced by :meth:`pack`."""
        _, values, attrs = decode(buf)
        chunks = {
            name: ChunkMeta(tuple(c["global_dims"]), tuple(c["offsets"]))
            for name, c in attrs.get("chunks", {}).items()
        }
        return cls(
            group=group,
            step=int(attrs["step"]),
            rank=int(attrs["rank"]),
            values=values,
            chunks=chunks,
            volume_scale=float(attrs.get("volume_scale", 1.0)),
        )
