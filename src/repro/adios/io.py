"""ADIOS transport methods.

The transport is the pluggable bottom of the ADIOS stack: application
code calls ``yield from transport.write_step(comm, step)`` and never
knows whether bytes went synchronously to the file system (the paper's
In-Compute-Node configuration) or asynchronously to the PreDatA staging
area (the Staging configuration — implemented by
:class:`repro.core.client.StagingTransport`, which subclasses
:class:`IOMethod`).

:class:`SyncMPIIO` models ADIOS's synchronous MPI-IO method: the
process blocks until its process-group record reaches the (shared,
variable-performance) parallel file system.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.adios.bp import BPFile, BPWriter
from repro.adios.group import GroupDef, OutputStep
from repro.machine.filesystem import ParallelFileSystem
from repro.mpi.communicator import Communicator

__all__ = ["IOMethod", "SyncMPIIO"]


class IOMethod:
    """Abstract transport.  Subclasses implement :meth:`write_step`."""

    def write_step(self, comm: Communicator, step: OutputStep) -> Generator:
        """Process body: emit one process's output for one I/O dump.

        Returns the seconds of I/O time *visible* to the caller (the
        blocking time the simulation experiences).
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Flush/close any files this transport accumulated."""


class SyncMPIIO(IOMethod):
    """Synchronous MPI-IO writes of BP process groups.

    All ranks of the writing communicator share one BP file per group
    (the paper's production configuration).  The blocking time seen by
    each rank is its share of the contended file-system write.

    Parameters
    ----------
    filesystem: the machine's parallel file system.
    collect_data:
        When True (default) functional payloads are retained so the
        resulting :class:`BPFile` can be read back; disable for pure
        timing runs at large rank counts to save host memory.
    """

    def __init__(
        self,
        filesystem: ParallelFileSystem,
        *,
        collect_data: bool = True,
    ):
        self.filesystem = filesystem
        self.collect_data = collect_data
        self._writers: dict[str, BPWriter] = {}
        self._files: dict[str, BPFile] = {}
        self.visible_write_seconds = 0.0

    # -- file registry -----------------------------------------------------
    def writer_for(self, group: GroupDef) -> BPWriter:
        """The (lazily created) BP writer accumulating *group*'s steps."""
        w = self._writers.get(group.name)
        if w is None:
            w = BPWriter(f"{group.name}.bp", group)
            self._writers[group.name] = w
        return w

    def file(self, group_name: str) -> BPFile:
        """The finalized BP file for *group_name* (after finalize())."""
        if group_name not in self._files:
            raise KeyError(
                f"no finalized file for group {group_name!r}; call finalize()"
            )
        return self._files[group_name]

    # -- transport API ----------------------------------------------------
    def write_step(self, comm: Communicator, step: OutputStep) -> Generator:
        start = comm.env.now
        if self.collect_data:
            self.writer_for(step.group).append_step(step)
        # Each rank streams its PG record; the shared aggregate pipe plus
        # per-client cap reproduce both contention regimes.
        yield from self.filesystem.write(
            step.nbytes_logical, nclients=1, metadata_ops=1
        )
        elapsed = comm.env.now - start
        self.visible_write_seconds += elapsed
        return elapsed

    def finalize(self) -> None:
        for name, writer in list(self._writers.items()):
            self._files[name] = writer.close()
        self._writers.clear()
