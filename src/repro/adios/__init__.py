"""ADIOS-style I/O layer: output groups, BP files, transport methods.

Stands in for the ADIOS library [Lofstead et al.] that PreDatA
integrates with (§IV.A).  Three pieces:

- :mod:`repro.adios.group` — declarative *output group* definitions
  (scalars, local arrays, partial chunks of global arrays) and the
  :class:`~repro.adios.group.OutputStep` a process emits at each I/O
  dump.  Steps pack to/from FFS *packed partial data chunks*.
- :mod:`repro.adios.bp` — the BP log-structured file format: one
  process-group record per writer plus a trailing index.  Chunk layout
  is first-class so the merged-vs-unmerged read contrast of Fig. 11 is
  measurable.
- :mod:`repro.adios.io` — transport methods: synchronous MPI-IO to the
  parallel file system (the paper's In-Compute-Node baseline) and the
  hook point the PreDatA staging transport plugs into.

Changing an application from synchronous I/O to PreDatA staging is a
transport swap — no application-code change — which is the ADIOS
property the paper leans on (§IV.A).
"""

from repro.adios.group import (
    ChunkMeta,
    GroupDef,
    OutputStep,
    VarDef,
    VarKind,
)
from repro.adios.bp import BPFile, BPIndexEntry, BPWriter, ProcessGroup
from repro.adios.io import IOMethod, SyncMPIIO
from repro.adios.api import Adios, AdiosFile
from repro.adios.config import (
    AdiosConfig,
    ConfigError,
    make_transport,
    parse_config,
)

__all__ = [
    "Adios",
    "AdiosConfig",
    "AdiosFile",
    "BPFile",
    "ConfigError",
    "make_transport",
    "parse_config",
    "BPIndexEntry",
    "BPWriter",
    "ChunkMeta",
    "GroupDef",
    "IOMethod",
    "OutputStep",
    "ProcessGroup",
    "SyncMPIIO",
    "VarDef",
    "VarKind",
]
