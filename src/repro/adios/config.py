"""ADIOS XML-style configuration (§IV.A's no-code-change property).

Real ADIOS applications declare their output groups and the transport
*method* in an XML file; switching from synchronous MPI-IO to PreDatA
staging is a one-line edit of that file — "PreDatA processing can be
added without requiring changes to application codes".  This module
reproduces that workflow::

    <adios-config>
      <adios-group name="particles">
        <var name="ntotal"    type="integer" kind="scalar"/>
        <var name="electrons" type="double"  kind="local-array" ndim="2"/>
        <var name="rho"       type="double"  kind="global-array" ndim="3"/>
      </adios-group>
      <method group="particles" method="MPI"/>       <!-- or "PREDATA" -->
      <buffer size-MB="100"/>
    </adios-config>

:func:`parse_config` returns the declared groups plus each group's
method selection; :func:`make_transport` instantiates the matching
transport object against a machine (and a PreDatA deployment for the
staging method).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional

from repro.adios.group import GroupDef, VarDef, VarKind
from repro.adios.io import IOMethod, SyncMPIIO

__all__ = ["AdiosConfig", "ConfigError", "parse_config", "make_transport"]


class ConfigError(ValueError):
    """Malformed adios-config document."""


_TYPE_MAP = {
    "byte": "int8",
    "short": "int16",
    "integer": "int32",
    "long": "int64",
    "unsigned integer": "uint32",
    "real": "float32",
    "float": "float32",
    "double": "float64",
    "complex": "complex64",
    "double complex": "complex128",
}

_KIND_MAP = {
    "scalar": VarKind.SCALAR,
    "local-array": VarKind.LOCAL_ARRAY,
    "global-array": VarKind.GLOBAL_ARRAY,
}

_METHODS = {"MPI", "POSIX", "PREDATA", "NULL"}


@dataclass
class AdiosConfig:
    """Parsed adios-config document."""

    groups: dict[str, GroupDef] = field(default_factory=dict)
    methods: dict[str, str] = field(default_factory=dict)  # group -> method
    buffer_mb: float = 50.0

    def group(self, name: str) -> GroupDef:
        """The declared :class:`GroupDef` named *name*."""
        if name not in self.groups:
            raise ConfigError(f"no group {name!r} declared")
        return self.groups[name]

    def method_for(self, group: str) -> str:
        """The transport method name configured for *group*."""
        if group not in self.methods:
            raise ConfigError(f"no method declared for group {group!r}")
        return self.methods[group]


def parse_config(xml_text: str) -> AdiosConfig:
    """Parse an adios-config XML document."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ConfigError(f"invalid XML: {exc}") from exc
    if root.tag != "adios-config":
        raise ConfigError(f"root element must be adios-config, got {root.tag}")
    cfg = AdiosConfig()
    for group_el in root.findall("adios-group"):
        name = group_el.get("name")
        if not name:
            raise ConfigError("adios-group needs a name attribute")
        if name in cfg.groups:
            raise ConfigError(f"duplicate group {name!r}")
        vars_ = []
        for var_el in group_el.findall("var"):
            vname = var_el.get("name")
            vtype = var_el.get("type", "double")
            vkind = var_el.get("kind", "scalar")
            if not vname:
                raise ConfigError(f"group {name!r}: var needs a name")
            if vtype not in _TYPE_MAP:
                raise ConfigError(
                    f"group {name!r} var {vname!r}: unknown type {vtype!r}"
                )
            if vkind not in _KIND_MAP:
                raise ConfigError(
                    f"group {name!r} var {vname!r}: unknown kind {vkind!r}"
                )
            kind = _KIND_MAP[vkind]
            ndim = int(var_el.get("ndim", "0"))
            if kind is not VarKind.SCALAR and ndim < 1:
                raise ConfigError(
                    f"group {name!r} var {vname!r}: arrays need ndim >= 1"
                )
            vars_.append(VarDef(vname, _TYPE_MAP[vtype], kind, ndim))
        if not vars_:
            raise ConfigError(f"group {name!r} declares no vars")
        cfg.groups[name] = GroupDef(name, tuple(vars_))
    for method_el in root.findall("method"):
        group = method_el.get("group")
        method = (method_el.get("method") or "").upper()
        if not group or group not in cfg.groups:
            raise ConfigError(f"method element references unknown group "
                              f"{group!r}")
        if method not in _METHODS:
            raise ConfigError(f"unknown method {method!r} "
                              f"(expected one of {sorted(_METHODS)})")
        cfg.methods[group] = method
    buffer_el = root.find("buffer")
    if buffer_el is not None:
        try:
            cfg.buffer_mb = float(buffer_el.get("size-MB", "50"))
        except ValueError as exc:
            raise ConfigError("buffer size-MB must be numeric") from exc
        if cfg.buffer_mb <= 0:
            raise ConfigError("buffer size-MB must be positive")
    return cfg


class NullTransport(IOMethod):
    """Discards output (the ADIOS NULL method, used for I/O-off runs)."""

    def write_step(self, comm, step):
        return 0.0
        yield  # pragma: no cover - generator marker


def make_transport(
    cfg: AdiosConfig,
    group_name: str,
    machine,
    *,
    predata: Optional[object] = None,
) -> IOMethod:
    """Instantiate the configured transport for *group_name*.

    ``predata`` (a :class:`repro.core.PreDatA`) is required when the
    method is PREDATA — the deployment carries the staging area.
    """
    method = cfg.method_for(group_name)
    if method in ("MPI", "POSIX"):
        return SyncMPIIO(machine.filesystem)
    if method == "NULL":
        return NullTransport()
    if method == "PREDATA":
        if predata is None:
            raise ConfigError(
                "method PREDATA needs a PreDatA deployment (predata=...)"
            )
        return predata.transport
    raise ConfigError(f"unhandled method {method!r}")
