"""Imperative ADIOS-style write API (open / write / close).

The shape application code actually uses (cf. ADIOS's Fortran/C API):

    adios = Adios(parse_config(xml), machine, predata=predata)
    ...
    fh = adios.open("particles", comm, step)
    fh.write("ntotal", n)
    fh.write("electrons", particles)
    visible = yield from fh.close()      # transport does the rest

``close()`` assembles the :class:`~repro.adios.group.OutputStep`,
validates it against the declared group, and hands it to whichever
transport the config selected — the application never references the
transport, which is the §IV.A integration property.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.adios.config import AdiosConfig, ConfigError, make_transport
from repro.adios.group import ChunkMeta, OutputStep, VarKind
from repro.adios.io import IOMethod
from repro.mpi.communicator import Communicator

__all__ = ["Adios", "AdiosFile"]


class AdiosFile:
    """One process's open output handle for one group/step."""

    def __init__(
        self,
        adios: "Adios",
        group_name: str,
        comm: Communicator,
        step: int,
        *,
        volume_scale: float = 1.0,
    ):
        self._adios = adios
        self.group = adios.config.group(group_name)
        self.comm = comm
        self.step = step
        self.volume_scale = volume_scale
        self._values: dict[str, Any] = {}
        self._chunks: dict[str, ChunkMeta] = {}
        self._closed = False

    def write(
        self,
        var: str,
        value: Any,
        *,
        global_dims: Optional[tuple[int, ...]] = None,
        offsets: Optional[tuple[int, ...]] = None,
    ) -> None:
        """Stage one variable's value for this step.

        Global-array variables require ``global_dims`` and ``offsets``
        (the chunk's placement), matching ``adios_write``'s usage.
        """
        if self._closed:
            raise ConfigError("write() after close()")
        vdef = self.group.var(var)  # raises KeyError for unknown vars
        if vdef.kind is VarKind.GLOBAL_ARRAY:
            if global_dims is None or offsets is None:
                raise ConfigError(
                    f"global array {var!r} needs global_dims and offsets"
                )
            self._chunks[var] = ChunkMeta(tuple(global_dims), tuple(offsets))
        elif global_dims is not None or offsets is not None:
            raise ConfigError(
                f"{var!r} is not a global array; placement not allowed"
            )
        if vdef.kind is not VarKind.SCALAR:
            value = np.asarray(value)
            if value.ndim != vdef.ndim:
                raise ConfigError(
                    f"{var!r}: rank {value.ndim} != declared {vdef.ndim}"
                )
        self._values[var] = value

    def close(self) -> Generator:
        """Process body: flush through the configured transport.

        Returns the visible (blocking) seconds, like ``adios_close``.
        """
        if self._closed:
            raise ConfigError("close() called twice")
        self._closed = True
        step = OutputStep(
            group=self.group,
            step=self.step,
            rank=self.comm.rank,
            values=self._values,
            chunks=self._chunks,
            volume_scale=self.volume_scale,
        )
        transport = self._adios.transport_for(self.group.name)
        t = yield from transport.write_step(self.comm, step)
        return t


class Adios:
    """The per-application ADIOS instance (config + transports)."""

    def __init__(self, config: AdiosConfig, machine, *, predata=None):
        self.config = config
        self.machine = machine
        self.predata = predata
        self._transports: dict[str, IOMethod] = {}

    def transport_for(self, group_name: str) -> IOMethod:
        """The (cached) transport instance configured for *group_name*."""
        t = self._transports.get(group_name)
        if t is None:
            t = make_transport(
                self.config, group_name, self.machine, predata=self.predata
            )
            self._transports[group_name] = t
        return t

    def open(
        self,
        group_name: str,
        comm: Communicator,
        step: int,
        *,
        volume_scale: float = 1.0,
    ) -> AdiosFile:
        """Open a write handle for one group/step on this rank."""
        return AdiosFile(
            self, group_name, comm, step, volume_scale=volume_scale
        )

    def finalize(self) -> None:
        """Flush every transport's accumulated files."""
        for t in self._transports.values():
            t.finalize()
