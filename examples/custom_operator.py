#!/usr/bin/env python
"""Writing a custom PreDatA operator (§IV.C's pluggable framework).

Implements a *top-k outlier finder*: while GTC-like particle data
streams through the staging area, find the k particles with the
largest velocity magnitude — the kind of lightweight "latent data
characteristic" the paper's introduction motivates (validate the
simulation, catch anomalies early).

The operator shows every extension hook:

- ``partial_calculate`` — local velocity percentile on the compute
  node, attached to the fetch request;
- ``aggregate``        — a global pre-filter threshold, known before
  any bulk data moves;
- ``map``              — per-chunk candidate extraction (only rows
  above the threshold survive, so almost nothing is shuffled);
- ``combine/partition/reduce`` — keep a single global top-k;
- ``finalize``         — report the winners.

Run:  python examples/custom_operator.py
"""

import numpy as np

from repro.adios import GroupDef, OutputStep, VarDef, VarKind
from repro.core import Emit, OperatorContext, PreDatA, PreDatAOperator
from repro.machine import Machine, TESTING_TINY
from repro.mpi import World
from repro.sim import Engine

GROUP = GroupDef(
    "particles",
    (VarDef("particles", "float64", VarKind.LOCAL_ARRAY, ndim=2),),
)
NPROCS = 8
ROWS = 400
K = 10
VCOLS = slice(3, 6)  # velocity components


class TopKOutliers(PreDatAOperator):
    """Global top-k particles by velocity magnitude."""

    name = "topk"

    def __init__(self, k: int):
        self.k = k

    # pass 1: a cheap local summary (99th percentile of |v|)
    def partial_calculate(self, step: OutputStep):
        v = np.linalg.norm(step.values["particles"][:, VCOLS], axis=1)
        return float(np.percentile(v, 99)) if v.size else None

    def partial_flops(self, step: OutputStep) -> float:
        return 8.0 * step.nbytes_logical / 8.0

    # stage 2: global pre-filter threshold = max local percentile / 2
    def aggregate(self, partials):
        return max(p for p in partials if p is not None) * 0.5

    # stage 4: stream each chunk, keep candidates above the threshold
    def map(self, ctx: OperatorContext, step: OutputStep):
        data = step.values["particles"]
        v = np.linalg.norm(data[:, VCOLS], axis=1)
        keep = v >= ctx.aggregated
        if not keep.any():
            return []
        return [Emit("topk", (v[keep], data[keep]))]

    def combine(self, ctx, items):
        # local top-k before the shuffle: bounded shuffle volume
        if not items:
            return items
        vs = np.concatenate([v for v, _ in (e.value for e in items)])
        rows = np.concatenate([d for _, d in (e.value for e in items)])
        order = np.argsort(vs)[::-1][: self.k]
        return [Emit("topk", (vs[order], rows[order]))]

    def partition(self, ctx, tag):
        return 0  # a single global reducer

    def reduce(self, ctx, tag, values):
        vs = np.concatenate([v for v, _ in values])
        rows = np.concatenate([d for _, d in values])
        order = np.argsort(vs)[::-1][: self.k]
        return (vs[order], rows[order])

    def finalize(self, ctx, reduced):
        return reduced.get("topk")

    def logical_fraction_shuffled(self) -> float:
        return 0.0  # only top-k candidates cross the shuffle


def main() -> None:
    eng = Engine()
    machine = Machine(eng, NPROCS, 1, spec=TESTING_TINY,
                      fs_interference=False)
    world = World(eng, machine.network, list(range(NPROCS)),
                  node_lookup=machine.node)
    op = TopKOutliers(K)
    predata = PreDatA(eng, machine, GROUP, [op],
                      ncompute_procs=NPROCS, nsteps=1, volume_scale=100.0)
    predata.start()

    all_data = {}

    def app(comm):
        rng = np.random.default_rng(comm.rank)
        data = rng.normal(size=(ROWS, 8))
        data[:, VCOLS] *= rng.uniform(0.5, 2.0)  # per-rank spread
        all_data[comm.rank] = data
        step = OutputStep(group=GROUP, step=0, rank=comm.rank,
                          values={"particles": data}, volume_scale=100.0)
        yield from predata.transport.write_step(comm, step)

    world.spawn(app)
    eng.run()

    result = next(
        r for r in (
            predata.service.result("topk", 0, rank)
            for rank in range(predata.nstaging_procs)
        ) if r is not None
    )
    vs, rows = result
    print(f"Top-{K} particles by |v| (found in-transit):")
    for i, (v, row) in enumerate(zip(vs, rows)):
        print(f"  #{i + 1}: |v|={v:.3f}  v=({row[3]:+.2f}, "
              f"{row[4]:+.2f}, {row[5]:+.2f})")

    # verify against a brute-force pass over all the data
    full = np.concatenate(list(all_data.values()))
    vfull = np.linalg.norm(full[:, VCOLS], axis=1)
    expected = np.sort(vfull)[::-1][:K]
    np.testing.assert_allclose(np.sort(vs)[::-1], expected)
    rep = predata.service.step_report(0)
    print(f"\nverified against brute force; shuffle moved only "
          f"{rep.bytes_shuffled:.0f} B of "
          f"{rep.bytes_fetched:.0f} B fetched")


if __name__ == "__main__":
    main()
