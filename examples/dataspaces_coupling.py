#!/usr/bin/env python
"""Model-to-model coupling through DataSpaces (§IV.D, Fig. 6).

Two concurrently running 'simulations' exchange a field through the
DataSpaces shared space hosted on the staging area:

- a *producer* (think: edge-plasma code) writes its 2-D field every
  step under its own 4-block decomposition;
- a *consumer* (think: core-plasma code) runs on a different number of
  processes and pulls the sub-regions *it* needs — a different
  decomposition — via ``get()``, plus a min/max/avg aggregation query;
- a *monitor* registers a continuous query over a hot region and is
  notified the moment intersecting data arrives.

Run:  python examples/dataspaces_coupling.py
"""

import numpy as np

from repro.dataspaces import DataSpaces, Region
from repro.machine import Machine, TESTING_TINY
from repro.sim import Engine

N = 64  # global field is N x N
NSTEPS = 3
PRODUCERS = 4  # 1-D row-block decomposition
CONSUMERS = 2  # different (column-block) decomposition


def main() -> None:
    eng = Engine()
    machine = Machine(eng, PRODUCERS + CONSUMERS, 2,
                      spec=TESTING_TINY, fs_interference=False)
    ds = DataSpaces(eng, machine, list(machine.staging_node_ids))
    ds.declare("field", (N, N))

    notifications = []
    ds.register_continuous(
        "field", Region((0, 0), (16, 16)), client_node=PRODUCERS,
        callback=lambda region, version:
            notifications.append((eng.now, region, version)),
    )

    def truth(step):
        x = np.linspace(0, 1, N)
        return np.sin(2 * np.pi * (x[:, None] + 0.1 * step)) * x[None, :]

    def producer(rank):
        rows = N // PRODUCERS
        lo = rank * rows
        for step in range(NSTEPS):
            yield eng.timeout(2.0)  # compute
            field = truth(step)
            yield from ds.put(
                rank, "field",
                Region((lo, 0), (lo + rows, N)),
                field[lo : lo + rows],
            )

    checks = []

    def consumer(rank):
        cols = N // CONSUMERS
        lo = rank * cols
        for step in range(NSTEPS):
            yield eng.timeout(2.5)  # its own cadence
            region = Region((0, lo), (N, lo + cols))
            block = yield from ds.get(PRODUCERS + rank, "field", region)
            stats = yield from ds.query_reduce(
                PRODUCERS + rank, "field", region
            )
            checks.append((step, rank, block, stats))

    for r in range(PRODUCERS):
        eng.process(producer(r), name=f"producer[{r}]")
    for r in range(CONSUMERS):
        eng.process(consumer(r), name=f"consumer[{r}]")
    eng.run()

    # Consumers read a *coherent* field: whichever version they saw,
    # it matches some producer step exactly (never a torn mix would
    # pass this column-wise check across all producers' blocks).
    truths = [truth(s) for s in range(NSTEPS)]
    matched = 0
    for step, rank, block, stats in checks:
        cols = N // CONSUMERS
        lo = rank * cols
        candidates = [t[:, lo : lo + cols] for t in truths]
        hit = next(
            (i for i, c in enumerate(candidates)
             if np.allclose(block, c)), None
        )
        assert hit is not None, "consumer observed a torn field"
        # the aggregation query ran moments after the get, so it may
        # reflect a newer coherent version — but always *some* version
        assert any(
            np.isclose(stats["max"], c.max())
            and np.isclose(stats["avg"], c.mean())
            for c in candidates
        ), "aggregation query saw a torn field"
        matched += 1
    print(f"{matched} consumer reads, every one a coherent snapshot of "
          "some producer step")
    print(f"{len(notifications)} continuous-query notifications "
          f"(one per step intersecting the hot region):")
    for t, region, version in notifications:
        print(f"  t={t:6.3f} s  region {region.lb}..{region.ub}  "
              f"version {version}")
    assert len(notifications) == NSTEPS  # rank-0 block intersects each step
    loads = ds.server_load()
    print(f"server storage balance: {[f'{v/1e3:.0f} KB' for v in loads]}")


if __name__ == "__main__":
    main()
