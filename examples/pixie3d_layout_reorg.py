#!/usr/bin/env python
"""Pixie3D layout reorganisation: merged vs unmerged BP files (§V.C).

Runs the Pixie3D skeleton through both transports, writes a real BP
file (bytes on disk) each way, and shows:

- the merged file holds each global array in a few large contiguous
  chunks instead of one small chunk per writer;
- both files reassemble to the *identical* global arrays;
- the read-time model prices the merged layout ~10x faster;
- the in-transit diagnostics operator computed energy / flux /
  max-velocity on the stream, matching a direct computation.

Run:  python examples/pixie3d_layout_reorg.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.adios import BPFile, BPWriter, SyncMPIIO
from repro.apps import (
    DiagnosticsOperator,
    Pixie3DApplication,
    Pixie3DConfig,
    kinetic_energy,
    pixie3d_group,
)
from repro.apps.pixie3d import PIXIE3D_VARS
from repro.core import PreDatA
from repro.experiments.fig11 import _model_read
from repro.machine import JAGUAR_XT4, Machine
from repro.mpi import World
from repro.operators import ArrayMergeOperator
from repro.sim import Engine

NPROCS = 16
CFG = Pixie3DConfig(
    nprocs_logical=NPROCS,
    local_size=16,
    functional_size=8,
    iterations_per_dump=2,
    ndumps=1,
    collective_rounds_per_iteration=3,
)


def run(staged: bool):
    eng = Engine()
    machine = Machine(eng, NPROCS // 4, 1 if staged else 0,
                      spec=JAGUAR_XT4, fs_interference=False)
    rank_nodes = [i % machine.n_compute_nodes for i in range(NPROCS)]
    world = World(eng, machine.network, rank_nodes,
                  name="pixie3d", node_lookup=machine.node)
    group = pixie3d_group()
    writer = None
    predata = None
    if staged:
        writer = BPWriter("pixie3d_merged.bp", group)
        ops = [
            ArrayMergeOperator(list(PIXIE3D_VARS), out_group=group,
                               filesystem=machine.filesystem, writer=writer),
            DiagnosticsOperator(),
        ]
        predata = PreDatA(eng, machine, group, ops, ncompute_procs=NPROCS,
                          nsteps=CFG.ndumps, volume_scale=CFG.volume_scale)
        predata.start()
        transport = predata.transport
        scheduler = predata.scheduler
    else:
        transport = SyncMPIIO(machine.filesystem)
        scheduler = None
    app = Pixie3DApplication(machine, world, transport, CFG,
                             scheduler=scheduler)
    app.spawn()
    eng.run()
    if staged:
        return app, predata, writer.close()
    transport.finalize()
    return app, None, transport.file(group.name)


def main() -> None:
    _, _, unmerged = run(staged=False)
    _, predata, merged = run(staged=True)

    print("Chunk layout of global array 'rho' (one step):")
    print(f"  unmerged: {unmerged.extents_for('rho', 0):4d} extents "
          f"(one per writer)")
    print(f"  merged  : {merged.extents_for('rho', 0):4d} extents "
          f"(one per staging process)\n")

    # both files hold identical data — and survive real disk round-trips
    with tempfile.TemporaryDirectory() as tmp:
        pu, pm = Path(tmp) / "unmerged.bp", Path(tmp) / "merged.bp"
        unmerged.save(pu)
        merged.save(pm)
        print(f"  on-disk sizes: unmerged {pu.stat().st_size:,} B, "
              f"merged {pm.stat().st_size:,} B")
        unmerged2, merged2 = BPFile.load(pu), BPFile.load(pm)
    for var in PIXIE3D_VARS:
        a = unmerged2.read_global_array(var, 0)
        b = merged2.read_global_array(var, 0)
        np.testing.assert_array_equal(a, b)
    print(f"  all {len(PIXIE3D_VARS)} global arrays identical through "
          "both paths\n")

    # price a full-scale read of one array per layout
    nbytes = 4096 * 32**3 * 8  # the paper's 4096-writer geometry
    t_un = _model_read(4096, nbytes, stripes=4)
    t_me = _model_read(32, nbytes, stripes=128)
    print(f"Read one 1 GB global array at the 4096-writer geometry:")
    print(f"  unmerged {t_un:6.2f} s   merged {t_me:6.2f} s   "
          f"speedup {t_un / t_me:.1f}x\n")

    # in-transit diagnostics vs direct computation
    diag = next(
        d for d in (
            predata.service.result("pixie3d_diag", 0, r)
            for r in range(predata.nstaging_procs)
        ) if d is not None
    )
    rho = merged2.read_global_array("rho", 0)
    px = merged2.read_global_array("px", 0)
    py = merged2.read_global_array("py", 0)
    pz = merged2.read_global_array("pz", 0)
    direct = kinetic_energy(rho, px, py, pz)
    print(f"In-transit diagnostics: energy={diag['energy']:.4f} "
          f"(direct {direct:.4f}), max|v|={diag['max_v']:.3f}, "
          f"max|div p|={diag['div_max']:.3f}")
    assert abs(diag["energy"] - direct) < 1e-6 * max(abs(direct), 1.0)


if __name__ == "__main__":
    main()
