#!/usr/bin/env python
"""Quickstart: stage simulation output through PreDatA.

Builds a small machine, runs an 8-process toy simulation that dumps a
particle array each step, and attaches two PreDatA operators in the
staging area: a global min/max characterisation (computed from
compute-node partial results before any bulk data moves) and a 1-D
histogram for online monitoring.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.adios import GroupDef, OutputStep, VarDef, VarKind
from repro.core import PreDatA
from repro.machine import Machine, TESTING_TINY
from repro.mpi import World
from repro.operators import HistogramOperator, MinMaxOperator
from repro.sim import Engine

NPROCS = 8
ROWS = 500  # functional particles per process
VOLUME_SCALE = 1000.0  # each row stands for 1000 rows of real output
NSTEPS = 3

# 1. Declare what the application outputs (the ADIOS group).
group = GroupDef(
    "particles",
    (VarDef("particles", "float64", VarKind.LOCAL_ARRAY, ndim=2),),
)


def main() -> None:
    # 2. One engine carries the whole machine.
    eng = Engine()
    machine = Machine(
        eng, n_compute_nodes=NPROCS, n_staging_nodes=1,
        spec=TESTING_TINY, fs_interference=False,
    )

    # 3. The application's MPI world (one rank per compute node here).
    world = World(
        eng, machine.network, list(range(NPROCS)),
        name="app", node_lookup=machine.node,
    )

    # 4. PreDatA: operators + staging area, wired to a transport.
    operators = [
        MinMaxOperator("particles"),
        HistogramOperator("particles", column=0, bins=32),
    ]
    predata = PreDatA(
        eng, machine, group, operators,
        ncompute_procs=NPROCS, nsteps=NSTEPS,
        volume_scale=VOLUME_SCALE,
    )
    predata.start()

    # 5. The application: compute, then write through the transport —
    #    the same call it would make for synchronous I/O.
    def app(comm):
        rng = np.random.default_rng(comm.rank)
        for step in range(NSTEPS):
            yield from comm.sleep(5.0)  # "the simulation computes"
            data = rng.normal(loc=step, scale=1.0, size=(ROWS, 4))
            out = OutputStep(
                group=group, step=step, rank=comm.rank,
                values={"particles": data}, volume_scale=VOLUME_SCALE,
            )
            visible = yield from predata.transport.write_step(comm, out)
            if comm.rank == 0:
                print(f"  step {step}: rank 0 blocked "
                      f"{visible * 1e3:.2f} ms on I/O")

    world.spawn(app)
    eng.run()

    # 6. Results: every operator's finalize() output, per step.
    print("\nPer-step staging pipeline (simulated seconds):")
    for step in range(NSTEPS):
        rep = predata.service.step_report(step)
        print(f"  step {step}: fetch={rep.fetch:.3f} map={rep.map:.3f} "
              f"shuffle={rep.shuffle:.3f} reduce={rep.reduce:.3f} "
              f"latency={rep.latency:.3f}")

    mm = predata.service.result("minmax:particles", step=NSTEPS - 1)
    print(f"\nGlobal stats of the last step: count={mm.count}, "
          f"col-0 range [{mm.mins[0]:.2f}, {mm.maxs[0]:.2f}]")

    hist_results = [
        predata.service.result("hist:particles[0]", NSTEPS - 1, r)
        for r in range(predata.nstaging_procs)
    ]
    hist = next(h for h in hist_results if h is not None)
    total = int(hist["counts"].sum())
    peak_bin = int(np.argmax(hist["counts"]))
    lo, hi = hist["edges"][peak_bin], hist["edges"][peak_bin + 1]
    print(f"Histogram: {total} particles, mode bin [{lo:.2f}, {hi:.2f})")
    assert total == NPROCS * ROWS


if __name__ == "__main__":
    main()
