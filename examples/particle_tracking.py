#!/usr/bin/env python
"""GTC particle tracking and range queries on prepared data (§II.A).

The payoff of in-transit preparation: after the staging area sorts and
indexes each dump, the two GTC analysis tasks become cheap.

1. run the GTC skeleton for several dumps with the sorting operator
   (+ bitmap index) in the staging area;
2. **task 1 — tracking**: follow a particle subset across steps by
   label via binary search on the sorted buckets, vs scanning the raw
   unsorted output;
3. **task 2 — range query**: find particles in a coordinate box via
   the bitmap indexes, vs a full scan;
4. ask the placement advisor which placement the sorting operator
   should use, and how large a staging area this workload needs.

Run:  python examples/particle_tracking.py
"""

import numpy as np

from repro.apps import GTCApplication, GTCConfig, GTC_GROUP
from repro.apps.gtc import COL_LABEL
from repro.core import OperatorProfile, PlacementAdvisor, PreDatA
from repro.machine import JAGUAR_XT5, Machine
from repro.mpi import World
from repro.operators import BitmapIndexOperator, SampleSortOperator
from repro.query import ParticleTracker, RangeQueryEngine, SortedStepStore
from repro.sim import Engine

NPROCS = 16
NSTEPS = 3
CFG = GTCConfig(
    nprocs_logical=NPROCS,
    particles_per_proc=100_000,
    functional_rows=256,
    iterations_per_dump=2,
    ndumps=NSTEPS,
    compute_seconds_per_iteration=5.0,
)


def main() -> None:
    eng = Engine()
    machine = Machine(eng, NPROCS, 1, spec=JAGUAR_XT5,
                      fs_interference=False)
    world = World(eng, machine.network, list(range(NPROCS)),
                  node_lookup=machine.node)
    sort_op = SampleSortOperator("electrons", COL_LABEL, name="sort")
    index_op = BitmapIndexOperator("electrons", column=0, bins=64)
    predata = PreDatA(eng, machine, GTC_GROUP, [sort_op, index_op],
                      ncompute_procs=NPROCS, nsteps=NSTEPS,
                      volume_scale=CFG.volume_scale)
    predata.start()
    app = GTCApplication(machine, world, predata.transport, CFG,
                         scheduler=predata.scheduler)
    app.spawn()
    eng.run()

    # ---- collect the staging area's sorted buckets per step
    sorted_stores, raw_stores = [], []
    for step in range(NSTEPS):
        buckets = [predata.service.result("sort", step, r)
                   for r in range(predata.nstaging_procs)]
        sorted_stores.append(SortedStepStore(buckets, COL_LABEL))
        raw = [app.make_step(r, step).values["electrons"]
               for r in range(NPROCS)]
        raw_stores.append(SortedStepStore(raw, COL_LABEL, sorted_=False))

    # ---- task 1: track a particle subset across all steps
    nlabels = 40
    labels = np.linspace(
        0, NPROCS * (CFG.functional_rows // 2) - 1, nlabels
    ).round()
    fast = ParticleTracker(sorted_stores).track(labels)
    slow = ParticleTracker(raw_stores).track(labels)
    print(f"Tracked {nlabels} particles across {NSTEPS} steps:")
    print(f"  sorted output : {fast.rows_examined:>9,} row-ops")
    print(f"  raw output    : {slow.rows_examined:>9,} row-ops "
          f"({slow.rows_examined / fast.rows_examined:.0f}x more work)")
    for label in labels[::13]:
        np.testing.assert_allclose(
            fast.positions(label), slow.positions(label)
        )
    print("  trajectories identical through both paths\n")

    # ---- task 2: coordinate range query via the bitmap indexes
    parts = sorted_stores[-1].buckets
    engine = RangeQueryEngine(parts, indexed_columns=[0, 1], bins=64)
    ranges = {0: (-0.3, 0.3), 1: (-0.3, 0.3)}
    report = engine.query(ranges)
    brute = engine.brute_force(ranges)
    assert report.rows.shape == brute.shape
    print(f"Range query x,y in [-0.3, 0.3]^2 on "
          f"{report.total_rows:,} particles:")
    print(f"  hits {len(report.rows)} "
          f"(selectivity {report.selectivity * 100:.1f} %), "
          f"checked only {report.rows_checked:,} candidate rows "
          f"({report.scan_avoided_fraction * 100:.0f} % of scan avoided)")
    print(f"  compressed index size: {engine.index_nbytes / 1024:.1f} KB\n")

    # ---- placement advice for this workload
    adv = PlacementAdvisor(
        machine, nprocs=2048, bytes_per_proc=132e6,  # production volume
        io_interval=120.0, staging_procs=64, fetch_rate_cap=0.2e9,
    )
    sort_profile = OperatorProfile(membytes_factor=100.0,
                                   shuffle_fraction=1.0)
    best_time = adv.recommend(sort_profile, "simulation_time")
    best_lat = adv.recommend(sort_profile, "latency")
    size = adv.size_staging_area(sort_profile)
    print("Placement advisor for the sorting operator at 2048 procs:")
    print(f"  minimise simulation time -> {best_time.placement} "
          f"(visible {best_time.visible_seconds:.3f} s)")
    print(f"  minimise result latency  -> {best_lat.placement} "
          f"(latency {best_lat.latency_seconds:.2f} s)")
    print(f"  staging area sized to {size} processes "
          f"(paper provisioned 64)")


if __name__ == "__main__":
    main()
