#!/usr/bin/env python
"""Adaptive operator placement under changing conditions (§VII).

The paper's future work: "dynamically adapting system configuration
and operation placement to cope with changing resource availability or
performance characteristics."  Here the same GTC-like workload runs
for 8 dumps under a *latency budget* (results must arrive within 20 s
of the dump — say, for the online monitor downstream):

- dumps start in the Staging placement (simulation-friendliest);
- midway, the staging area degrades — the fetch path slows sharply
  (resource contention from a co-located service);
- the staging pipeline now misses the latency budget; after two missed
  dumps the :class:`~repro.core.AdaptivePlacement` controller demotes
  the operator to In-Compute-Node, where it meets the budget again;
- skipped staging rounds are announced so the staging service stays in
  lockstep.

Run:  python examples/adaptive_placement.py
"""

import numpy as np

from repro.adios import GroupDef, OutputStep, VarDef, VarKind
from repro.core import (
    AdaptivePlacement,
    InComputeNodeRunner,
    PlacementBudget,
    PreDatA,
)
from repro.machine import Machine, TESTING_TINY
from repro.mpi import World
from repro.operators import HistogramOperator
from repro.sim import Engine

NPROCS = 8
ROWS = 200
NSTEPS = 8
DEGRADE_AT = 3  # staging slows from this dump on
BUDGET = PlacementBudget(max_visible_seconds=1.0, max_latency_seconds=20.0)

GROUP = GroupDef(
    "particles",
    (VarDef("particles", "float64", VarKind.LOCAL_ARRAY, ndim=2),),
)


def main() -> None:
    eng = Engine()
    machine = Machine(eng, NPROCS, 1, spec=TESTING_TINY,
                      fs_interference=False)
    world = World(eng, machine.network, list(range(NPROCS)),
                  node_lookup=machine.node)
    predata = PreDatA(
        eng, machine, GROUP,
        [HistogramOperator("particles", column=0, bins=64, name="hist")],
        ncompute_procs=NPROCS, nsteps=NSTEPS, volume_scale=2000.0,
        fetch_rate_cap=5e9,
    )
    runner = InComputeNodeRunner(
        machine, [HistogramOperator("particles", column=0, bins=64,
                                    name="hist")]
    )
    controller = AdaptivePlacement(BUDGET, initial="staging", patience=2)
    predata.start()

    def degrade(env):
        """Co-located service steals the fetch path mid-run."""
        # wait until dump DEGRADE_AT approaches, then throttle fetches
        yield env.timeout(DEGRADE_AT * 30.0 - 1.0)
        predata.client.fetch_rate_cap = 0.02e9  # 250x slower

    placements = {}

    def app(comm):
        for step in range(NSTEPS):
            yield from comm.sleep(30.0)  # compute phase
            rng = np.random.default_rng(100 * step + comm.rank)
            out = OutputStep(group=GROUP, step=step, rank=comm.rank,
                             values={"particles": rng.normal(size=(ROWS, 8))},
                             volume_scale=2000.0)
            decision = (controller.decide(step) if comm.rank == 0
                        else None)
            choice = controller.current if comm.rank else decision.placement
            placements.setdefault(step, choice)
            if placements[step] == "staging":
                visible = yield from predata.transport.write_step(comm, out)
            else:
                t0 = comm.env.now
                yield from runner.run_step(comm, out)
                visible = comm.env.now - t0
                yield from predata.client.skip_step(comm, step)
            if comm.rank == 0:
                # wait for this dump's results then report the outcome
                yield from comm.sleep(0.5)
                if placements[step] == "staging":
                    # poll until the staging report for `step` exists
                    while step not in predata.service.rank_reports or len(
                        predata.service.rank_reports[step]
                    ) < predata.nstaging_procs:
                        yield from comm.sleep(0.5)
                    latency = predata.service.step_report(step).latency
                else:
                    latency = visible
                controller.report(step, visible_seconds=visible,
                                  latency_seconds=latency)

    world.spawn(app)
    eng.process(degrade(eng), name="degrader")
    eng.run()

    print(f"{'dump':>4}  {'placement':<10} {'visible':>9}  "
          f"{'latency':>9}  budget")
    for d in controller.history:
        status = ("VIOLATED" if d.violated else "ok") if (
            d.violated is not None) else "-"
        print(f"{d.step:>4}  {d.placement:<10} "
              f"{d.visible_seconds:>8.3f}s  {d.latency_seconds:>8.2f}s  "
              f"{status}")
    print(f"\ncontroller switched placement {controller.switches} time(s); "
          f"violation rate {controller.violation_rate() * 100:.0f} %")
    assert controller.switches >= 1
    assert controller.history[0].placement == "staging"
    assert controller.history[-1].placement == "incompute"


if __name__ == "__main__":
    main()
