#!/usr/bin/env python
"""Online monitoring and steering of a running simulation (§I, §VI).

The intro's motivating loop: histograms computed in-transit validate
the veracity of the ongoing simulation, and when it "operates
improperly" the user takes early action.  Here a GTC-like simulation
develops a numerical instability at step 2 (particle weights blow up);
the in-transit histogram watch spots the anomaly the moment the
staging pipeline finalizes that step, and a steering flag makes the
simulation abort instead of burning the rest of its allocation.

Run:  python examples/online_monitoring.py
"""

import numpy as np

from repro.adios import GroupDef, OutputStep, VarDef, VarKind
from repro.core import OnlineMonitor, PreDatA, SteeringFlag
from repro.machine import Machine, TESTING_TINY
from repro.mpi import World
from repro.operators import HistogramOperator
from repro.sim import Engine

NPROCS = 8
ROWS = 400
NSTEPS = 6
BAD_STEP = 2  # instability appears here

GROUP = GroupDef(
    "particles",
    (VarDef("particles", "float64", VarKind.LOCAL_ARRAY, ndim=2),),
)


def make_data(rank, step):
    rng = np.random.default_rng(100 * step + rank)
    data = rng.normal(size=(ROWS, 8))
    data[:, 6] = rng.uniform(0, 1, ROWS)  # healthy particle weights
    if step >= BAD_STEP:
        # instability: a growing fraction of weights explode
        bad = rng.random(ROWS) < 0.2 * (step - BAD_STEP + 1)
        data[bad, 6] *= 10 ** (step - BAD_STEP + 2)
    return data


def weights_unhealthy(results):
    """Watch condition: too much probability mass beyond the bulk."""
    res = next((r for r in results if r is not None), None)
    if res is None:
        return None
    counts, edges = res["counts"], res["edges"]
    total = counts.sum()
    # healthy weights live in [0, 1]; find mass above 2.0
    tail = counts[np.searchsorted(edges, 2.0) :].sum()
    if tail > 0.01 * total:
        return (f"{tail / total * 100:.1f} % of particle weights "
                f"exceed 2.0 (max edge {edges[-1]:.1e})")
    return None


def main() -> None:
    eng = Engine()
    machine = Machine(eng, NPROCS, 1, spec=TESTING_TINY,
                      fs_interference=False)
    world = World(eng, machine.network, list(range(NPROCS)),
                  node_lookup=machine.node)
    hist = HistogramOperator("particles", column=6, bins=64)
    predata = PreDatA(eng, machine, GROUP, [hist],
                      ncompute_procs=NPROCS, nsteps=NSTEPS,
                      volume_scale=50.0)
    abort = SteeringFlag()
    monitor = OnlineMonitor(predata.service)
    monitor.watch(hist.name, weights_unhealthy, action=abort.set)
    predata.start()

    steps_run = {}

    def app(comm):
        for step in range(NSTEPS):
            if abort:
                break  # steering: stop burning the allocation
            yield from comm.sleep(3.0)  # compute phase
            out = OutputStep(group=GROUP, step=step, rank=comm.rank,
                             values={"particles": make_data(comm.rank, step)},
                             volume_scale=50.0)
            yield from predata.transport.write_step(comm, out)
            steps_run[comm.rank] = step

    world.spawn(app)
    eng.run()

    print(f"simulation planned {NSTEPS} steps; instability injected at "
          f"step {BAD_STEP}\n")
    for alarm in monitor.alarms:
        print(f"  ALARM @ t={alarm.sim_time:7.2f} s  step {alarm.step}: "
              f"{alarm.message}")
    last_step = max(steps_run.values())
    print(f"\nsteering flag raised by step {abort.reason.step}; "
          f"simulation stopped after step {last_step} "
          f"(saved {NSTEPS - 1 - last_step} steps of wasted compute)")
    assert abort
    assert abort.reason.step >= BAD_STEP
    assert last_step < NSTEPS - 1


if __name__ == "__main__":
    main()
