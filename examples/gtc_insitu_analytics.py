#!/usr/bin/env python
"""GTC in-situ analytics: the paper's §V.B workload end to end.

Runs the GTC skeleton twice at the same (scaled-down) configuration:

1. In-Compute-Node — sorting + histograms execute synchronously on
   the compute ranks, results written with synchronous MPI-IO;
2. Staging — the same operators run in the PreDatA staging area while
   the simulation continues.

Then prints the paper's comparison: visible I/O time, operation time,
total execution time, and verifies the sorted particle output is
identical through both paths.

Run:  python examples/gtc_insitu_analytics.py
"""

import numpy as np

from repro.adios import SyncMPIIO
from repro.apps import GTCApplication, GTCConfig, GTC_GROUP
from repro.apps.gtc import COL_LABEL
from repro.core import InComputeNodeRunner, PreDatA
from repro.machine import JAGUAR_XT5, Machine
from repro.mpi import World
from repro.operators import HistogramOperator, SampleSortOperator
from repro.sim import Engine

NPROCS = 32  # representative ranks; weak-scaled per-process volume
CFG = GTCConfig(
    nprocs_logical=NPROCS,
    particles_per_proc=200_000,
    functional_rows=128,
    iterations_per_dump=3,
    ndumps=2,
    compute_seconds_per_iteration=8.0,
)


def make_operators(filesystem=None):
    return [
        SampleSortOperator("electrons", COL_LABEL, name="sort"),
        HistogramOperator("electrons", column=6, bins=256,
                          name="hist", filesystem=filesystem),
    ]


def run(staged: bool):
    eng = Engine()
    machine = Machine(
        eng, NPROCS, 1 if staged else 0, spec=JAGUAR_XT5,
        fs_interference=False,
    )
    world = World(eng, machine.network, list(range(NPROCS)),
                  name="gtc", node_lookup=machine.node)
    runner = None
    predata = None
    if staged:
        predata = PreDatA(
            eng, machine, GTC_GROUP, make_operators(machine.filesystem),
            ncompute_procs=NPROCS, nsteps=CFG.ndumps,
            volume_scale=CFG.volume_scale,
        )
        predata.start()
        transport = predata.transport
        scheduler = predata.scheduler
    else:
        transport = SyncMPIIO(machine.filesystem, collect_data=False)
        runner = InComputeNodeRunner(machine, make_operators(machine.filesystem))
        scheduler = None
    app = GTCApplication(machine, world, transport, CFG,
                         scheduler=scheduler, runner=runner)
    app.spawn()
    eng.run()
    return app, predata, runner


def main() -> None:
    print(f"GTC skeleton: {NPROCS} procs x "
          f"{CFG.particles_per_proc:,} particles "
          f"({CFG.logical_bytes_per_proc / 1e6:.0f} MB/proc/dump), "
          f"{CFG.ndumps} dumps\n")

    ic_app, _, runner = run(staged=False)
    st_app, predata, _ = run(staged=True)
    im, sm = ic_app.max_metrics(), st_app.max_metrics()

    print("                    In-Compute-Node     Staging")
    print(f"  total time        {im.total:10.2f} s     {sm.total:10.2f} s")
    print(f"  I/O blocking      {im.io_blocking:10.3f} s     "
          f"{sm.io_blocking:10.3f} s")
    print(f"  operations        {im.operations:10.3f} s     "
          f"{'(hidden)':>12}")
    gain = (im.total - sm.total) / im.total * 100
    print(f"  improvement       {gain:29.2f} %\n")

    for step in range(CFG.ndumps):
        rep = predata.service.step_report(step)
        print(f"  staging step {step}: fetch={rep.fetch:.2f} s "
              f"sort+hist={rep.map + rep.shuffle + rep.reduce:.2f} s "
              f"latency={rep.latency:.2f} s")

    # --- verify both placements produced the same sorted particles
    staged_sorted = np.concatenate([
        np.atleast_2d(b) for b in (
            predata.service.result("sort", 0, r)
            for r in range(predata.nstaging_procs)
        ) if len(b)
    ])
    incompute_sorted = np.concatenate([
        np.atleast_2d(b) for b in (
            runner.results["sort"][0][r] for r in range(NPROCS)
        ) if len(b)
    ])
    np.testing.assert_array_equal(
        staged_sorted[:, COL_LABEL], incompute_sorted[:, COL_LABEL]
    )
    assert np.all(np.diff(staged_sorted[:, COL_LABEL]) >= 0)
    print(f"\nBoth placements sorted {staged_sorted.shape[0]} particles "
          "identically (labels globally ordered).")


if __name__ == "__main__":
    main()
