"""Perf-regression harness tests (``@pytest.mark.perf``).

Two layers:

- always-on structural tests drive :mod:`repro.perf.bench` at smoke
  size — record shape, guard keys, sidecar round-trip, and the
  ``compare`` guard logic itself (it must both catch regressions and
  ignore host-speed noise);
- the committed baselines are validated as data: well-formed JSON, the
  acceptance-floor kernels pinned at >= 3x;
- ``--perf-baseline [DIR|default]`` unlocks the timed full-size run
  that diffs live guards against the committed ``BENCH_*.json``
  (skipped otherwise — tier-1 stays fast and host-independent).
"""

from __future__ import annotations

import json

import pytest

from repro.perf import REGISTRY, bench

pytestmark = pytest.mark.perf

SMOKE_N = 20_000


# ---------------------------------------------------------------------
# record shape (smoke-sized, fast, deterministic structure)
# ---------------------------------------------------------------------

def test_bench_kernels_record_shape():
    record = bench.bench_kernels(n=SMOKE_N, repeat=1)
    assert record["bench"] == "kernels"
    assert record["n"] == SMOKE_N
    assert set(record["kernels"]) == set(REGISTRY.names())
    for name, row in record["kernels"].items():
        assert row["naive_seconds"] > 0 and row["vectorized_seconds"] > 0
        assert record["guards"][f"speedup:{name}"] == row["speedup"]


def test_bench_ffs_record_shape():
    record = bench.bench_ffs(nelems=SMOKE_N, repeat=1)
    assert record["bench"] == "ffs"
    assert record["payload_bytes"] > 0
    assert record["guards"]["no_growth_after_warmup"] == 1.0
    assert record["scratch_grows_after_warmup"] == 0


def test_bench_engine_record_shape():
    record = bench.bench_engine(
        nbacklog=200, nworkers=8, nhops=20, nwaiters=16, ncycles=3, repeat=1
    )
    assert record["bench"] == "engine"
    assert record["burst_events"] == 200 + 8 * 20
    assert set(record["guards"]) == {
        "ratio:calendar_vs_heap",
        "ratio:batched_vs_legacy",
    }
    assert all(v > 0 for v in record["guards"].values())


def test_write_record_sidecar_round_trips(tmp_path):
    record = {"bench": "kernels", "guards": {"speedup:x": 2.0}}
    path = bench.write_record("kernels", record, tmp_path / "out")
    assert path.name == "BENCH_kernels.json"
    assert json.loads(path.read_text()) == record


# ---------------------------------------------------------------------
# the guard logic itself
# ---------------------------------------------------------------------

def test_compare_catches_a_regression():
    base = {"guards": {"speedup:histogram1d": 10.0}}
    bad = {"guards": {"speedup:histogram1d": 7.9}}  # > 20 % below
    ok = {"guards": {"speedup:histogram1d": 8.1}}  # within tolerance
    assert bench.compare(bad, base) != []
    assert bench.compare(ok, base) == []


def test_compare_flags_missing_guards():
    base = {"guards": {"speedup:histogram1d": 10.0}}
    problems = bench.compare({"guards": {}}, base)
    assert problems and "missing" in problems[0]


def test_compare_only_enforces_baseline_guards():
    """New guards in the current run must not fail an older baseline,
    and absolute seconds are never compared."""
    base = {"guards": {"speedup:a": 2.0}, "encode_seconds": 1e-9}
    cur = {"guards": {"speedup:a": 2.0, "speedup:b": 0.1}, "encode_seconds": 99.0}
    assert bench.compare(cur, base) == []


# ---------------------------------------------------------------------
# committed baselines as data
# ---------------------------------------------------------------------

def test_bench_query_record_shape():
    from repro.serve.bench import bench_query

    record = bench_query(loads=(50.0,), duration=0.25)
    assert record["bench"] == "query"
    assert len(record["points"]) == 1
    assert record["guards"]["served:load50"] > 0.0
    assert all(v >= 0 for v in record["guards"].values())


@pytest.mark.parametrize("name", ["kernels", "ffs", "engine", "query"])
def test_committed_baseline_is_well_formed(name):
    path = bench.default_baseline_dir() / f"BENCH_{name}.json"
    baseline = json.loads(path.read_text())
    assert baseline["bench"] == name
    assert baseline["guards"], f"{path} has no guards to enforce"
    assert all(v > 0 for v in baseline["guards"].values())


def test_committed_kernel_baseline_meets_acceptance_floor():
    """ISSUE 5 acceptance: histogram / 2-D histogram / bitmap encode
    hold >= 3x over naive at 1M elements in the committed record."""
    path = bench.default_baseline_dir() / "BENCH_kernels.json"
    baseline = json.loads(path.read_text())
    assert baseline["n"] >= 1_000_000
    for name in bench.HOT_KERNELS:
        assert baseline["kernels"][name]["speedup"] >= 3.0
        assert baseline["guards"][f"speedup:{name}"] >= 3.0


# ---------------------------------------------------------------------
# the timed full-size guard (opt-in: --perf-baseline)
# ---------------------------------------------------------------------

@pytest.mark.parametrize("name", ["kernels", "ffs", "engine", "query"])
def test_full_size_guards_match_baseline(perf_baseline_dir, name):
    base_path = perf_baseline_dir / f"BENCH_{name}.json"
    if not base_path.exists():
        pytest.skip(f"no baseline at {base_path}")

    def run_query():
        from repro.serve.bench import bench_query

        return bench_query()

    runner = {
        "kernels": bench.bench_kernels,
        "ffs": bench.bench_ffs,
        "engine": bench.bench_engine,
        "query": run_query,
    }[name]
    record = runner()
    problems = bench.compare(record, json.loads(base_path.read_text()))
    assert problems == [], "\n".join(problems)
